//! The LAQy query executor: runs approximable queries through the lazy
//! sampling flow of Figure 7.
//!
//! 1. Derive the logical sampler's [`SampleDescriptor`] from the query.
//! 2. Ask the store for the reuse classification (**Algorithm 1**).
//! 3. Full reuse → estimate straight from the stored sample (tightening to
//!    the query predicate); partial reuse → push the Δ predicate down the
//!    plan, build only the Δ sample, merge (**Algorithms 2–3**), estimate;
//!    no reuse → full online sampling, which is then absorbed by the store
//!    for future queries.
//!
//! Two sampler placements from the evaluation are supported: pushed down
//! to the fact scan (query template Q1) and above a star join (Q2) — both
//! fall out of the same pipeline because the engine's group-by hosts the
//! reservoir aggregation either way.

use std::time::{Duration, Instant};

use laqy_engine::ops::{group_by, BoundCol, GroupTable, Inputs};
use laqy_engine::parallel::{parallel_fold, DEFAULT_MORSEL_ROWS};
use laqy_engine::plan::PreparedJoins;
use laqy_engine::{
    execute_exact_counted, scan_count_pruned, AggInput, Catalog, EngineError, GroupKey, Predicate,
    PruneCounts, QueryPlan, QueryResult,
};
use laqy_sampling::Lehmer64;

use crate::budget::{
    apply_degradation, blended_degradation, CancelToken, Degradation, DegradeReason,
};
use crate::descriptor::{Predicates, SampleDescriptor};
use crate::estimate::{
    estimate, EstimateError, EstimateOptions, ExactMass, ExactSlot, GroupEstimate,
};
use crate::interval::{Interval, IntervalSet};
use crate::lazy::{plan_lazy, plan_lazy_capped, LazyPlan};
use crate::sampler_ops::{
    group_table_into_sample, ReservoirAgg, ReservoirAggFactory, SampleSchema, SampleTuple, SlotKind,
};
use crate::stats::{ExecStats, ReuseClass};
use crate::store::{union_single_column, SampleStore};
use crate::support::{check_support, SupportPolicy, SupportReport};
use laqy_sampling::{merge_stratified, merge_stratified_k, Reservoir, StratifiedSampler};

/// Errors from the LAQy execution layer.
#[derive(Debug)]
pub enum LaqyError {
    /// Engine-level failure (unknown table/column, type mismatch, ...).
    Engine(EngineError),
    /// Estimation failure (payload/schema mismatch).
    Estimate(EstimateError),
    /// Query shape not supported by the approximation layer.
    Unsupported(String),
    /// A worker panicked inside one morsel of this query's scan; the
    /// panic was isolated (pool and concurrent queries unaffected) and
    /// the query failed with the captured payload.
    WorkerPanic(String),
    /// A `laqy_faults` point injected a failure into this query
    /// (`--cfg laqy_faults` chaos builds only).
    Injected(String),
}

impl std::fmt::Display for LaqyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaqyError::Engine(e) => write!(f, "engine error: {e}"),
            LaqyError::Estimate(e) => write!(f, "estimate error: {e}"),
            LaqyError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            LaqyError::WorkerPanic(m) => write!(f, "worker panic (isolated): {m}"),
            LaqyError::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for LaqyError {}

impl From<EngineError> for LaqyError {
    fn from(e: EngineError) -> Self {
        LaqyError::Engine(e)
    }
}

impl From<EstimateError> for LaqyError {
    fn from(e: EstimateError) -> Self {
        LaqyError::Estimate(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, LaqyError>;

/// An approximable query: a star-schema aggregation plan plus the explored
/// range predicate the lazy sampler relaxes over.
#[derive(Debug, Clone)]
pub struct ApproxQuery {
    /// The aggregation plan. `plan.predicate` holds only the *fixed*
    /// fact-side predicates (part of the sampler's input identity); the
    /// explored range below is added on top.
    pub plan: QueryPlan,
    /// Fact column the exploration varies over (the paper's `lo_intkey`).
    pub range_column: String,
    /// This query's range on `range_column` (inclusive).
    pub range: Interval,
    /// Per-stratum reservoir capacity.
    pub k: usize,
}

/// Output of an approximate execution.
#[derive(Debug, Clone)]
pub struct ApproxResult {
    /// Per-group estimates (keys are raw i64 parts; decode via
    /// [`LaqyExecutor::decode_keys`]).
    pub groups: Vec<GroupEstimate>,
    /// Timing/cardinality breakdown.
    pub stats: ExecStats,
    /// Post-tightening support report.
    pub support: SupportReport,
}

/// How aggressively stored samples are reused — the axis the paper's
/// contribution moves along (Figure 2's design space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReuseMode {
    /// LAQy with coverage planning: full reuse, multi-sample coverage
    /// (k-way Δ + merge) reuse, or online.
    #[default]
    Lazy,
    /// The paper's original single-sample Algorithm 1: at most one stored
    /// sample per query (coverage planning capped at one). Ablation
    /// baseline for the fragmentation experiment.
    SingleSample,
    /// Taster-style all-or-none caching: a stored sample is used only when
    /// it fully subsumes the query; otherwise full online sampling (the
    /// "strict sample matching" baseline of §2, Issue #1).
    FullMatchOnly,
}

/// The executor. Owns RNG state and configuration; catalog and sample
/// store are passed per call so sessions control sharing.
pub struct LaqyExecutor {
    threads: usize,
    policy: SupportPolicy,
    mode: ReuseMode,
    rng: Lehmer64,
    seed_counter: u64,
    budget: CancelToken,
}

impl LaqyExecutor {
    /// Create an executor with `threads` workers and a support policy.
    pub fn new(threads: usize, policy: SupportPolicy, seed: u64) -> Self {
        Self {
            threads,
            policy,
            mode: ReuseMode::Lazy,
            rng: Lehmer64::new(seed),
            seed_counter: seed,
            budget: CancelToken::unbounded(),
        }
    }

    /// Set the reuse mode (ablation: disable partial reuse).
    pub fn with_mode(mut self, mode: ReuseMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attach a started budget token: every sampling pipeline this
    /// executor runs checks it per morsel and finalizes a degraded
    /// answer on expiry (see [`crate::budget`]).
    pub fn set_budget_token(&mut self, token: CancelToken) {
        self.budget = token;
    }

    /// The budget token currently attached to this executor.
    pub(crate) fn budget(&self) -> &CancelToken {
        &self.budget
    }

    /// The active reuse mode.
    pub fn mode(&self) -> ReuseMode {
        self.mode
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The support policy in force.
    pub fn policy(&self) -> &SupportPolicy {
        &self.policy
    }

    /// The merge RNG (the service's write path drives merges itself).
    pub(crate) fn rng_mut(&mut self) -> &mut Lehmer64 {
        &mut self.rng
    }

    fn next_seed(&mut self) -> u64 {
        self.seed_counter = self.seed_counter.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.seed_counter
    }

    /// Derive the logical sampler descriptor for a query (Figure 7 step 1:
    /// the optimizer has placed the sampler; this records its identity).
    pub fn descriptor(&self, catalog: &Catalog, query: &ApproxQuery) -> Result<SampleDescriptor> {
        let (_, schema) = self.payload_schema(catalog, query)?;
        let qcs: Vec<String> = query
            .plan
            .group_by
            .iter()
            .map(|c| match &c.table {
                Some(t) => format!("{t}.{}", c.column),
                None => c.column.clone(),
            })
            .collect();
        let qvs: Vec<String> = schema
            .column_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        Ok(SampleDescriptor::new(
            input_identity(&query.plan),
            qcs,
            qvs,
            Predicates::on(query.range_column.clone(), IntervalSet::of(query.range)),
            query.k,
        ))
    }

    /// Payload columns the sample must carry: every aggregate input plus
    /// the explored range column (for tightening).
    pub(crate) fn payload_schema(
        &self,
        catalog: &Catalog,
        query: &ApproxQuery,
    ) -> Result<(Vec<String>, SampleSchema)> {
        let mut cols: Vec<String> = Vec::new();
        for a in &query.plan.aggs {
            let names: Vec<&str> = match &a.input {
                AggInput::Col(c) => vec![c.as_str()],
                AggInput::Mul(x, y) => vec![x.as_str(), y.as_str()],
                AggInput::None => vec![],
            };
            for n in names {
                if !cols.iter().any(|c| c == n) {
                    cols.push(n.to_string());
                }
            }
        }
        if !cols.iter().any(|c| c == &query.range_column) {
            cols.push(query.range_column.clone());
        }
        let mut schema_cols = Vec::with_capacity(cols.len());
        for c in &cols {
            let (_, table) = resolve_by_name(catalog, &query.plan, c)?;
            let kind = match table.column(c)?.data_type() {
                laqy_engine::DataType::Float64 => SlotKind::Float,
                _ => SlotKind::Int,
            };
            schema_cols.push((c.clone(), kind));
        }
        Ok((cols, SampleSchema::new(schema_cols)))
    }

    /// Run a query through the lazy sampling flow (the LAQy path in
    /// Figures 12–15).
    pub fn run_lazy(
        &mut self,
        catalog: &Catalog,
        store: &mut SampleStore,
        query: &ApproxQuery,
    ) -> Result<ApproxResult> {
        let t_start = Instant::now();
        let descriptor = self.descriptor(catalog, query)?;
        // The pinned epoch's row watermark: stored samples drawn below it
        // carry an un-absorbed append tail the plan must Δ-scan.
        let watermark = catalog.table(&query.plan.fact)?.row_watermark();
        let mut lazy = match self.mode {
            ReuseMode::SingleSample => plan_lazy_capped(store, &descriptor, 1, watermark),
            _ => plan_lazy(store, &descriptor, watermark),
        };
        if self.mode == ReuseMode::FullMatchOnly {
            // All-or-none matching: partial overlap is not good enough.
            if let LazyPlan::CoverageReuse { .. } = lazy {
                lazy = LazyPlan::Online;
            }
        }
        let effective = lazy.uncovered_fraction(&descriptor);
        let tighten = Predicates::on(query.range_column.clone(), IntervalSet::of(query.range));

        let result = match lazy {
            LazyPlan::FullReuse { id } => {
                let (mut groups, mut support, est_time) =
                    self.estimate_stored(store, id, query, &tighten)?;
                let mut stats = ExecStats {
                    estimate: est_time,
                    effective_selectivity: 0.0,
                    reuse: Some(ReuseClass::Full),
                    ..Default::default()
                };
                if self.policy.conservative && !support.fully_supported() {
                    // §5.2.3 conservative fallback: re-sample online, with
                    // the filter pushed down, only the under-supported
                    // strata — validating whether low support reflects the
                    // data or a sampling artifact.
                    if !self.refine_support(
                        catalog,
                        query,
                        &mut groups,
                        &mut support,
                        &mut stats,
                    )? {
                        return self.run_online_and_absorb(catalog, store, query, t_start);
                    }
                }
                stats.total = t_start.elapsed();
                ApproxResult {
                    groups,
                    stats,
                    support,
                }
            }
            LazyPlan::CoverageReuse {
                samples,
                fragments,
                tails,
            } => {
                let (_, schema) = self.payload_schema(catalog, query)?;
                // One zone-map-pruned Δ-scan per residual fragment, each
                // internally fanned through the worker pool.
                let mut stats = ExecStats::default();
                let mut fragment_samples = Vec::with_capacity(fragments.len());
                let mut fragment_boundaries = Vec::with_capacity(fragments.len());
                let mut exact_mass = ExactMass::new();
                let mut fragment_coverage = 0.0f64;
                let mut fragments_skipped = 0u64;
                for frag in &fragments {
                    // An expired budget skips remaining fragments outright
                    // (their regions contribute nothing; the CI widening
                    // below accounts for the hole).
                    if self.budget.expired() {
                        fragments_skipped += 1;
                        continue;
                    }
                    let ranges = frag
                        .get(&query.range_column)
                        .cloned()
                        .unwrap_or_else(|| IntervalSet::of(query.range));
                    let extra = fragment_extra_predicate(frag, &query.range_column);
                    let run =
                        self.sample_pipeline_hybrid(catalog, query, &ranges, &extra, true, 0)?;
                    fragment_coverage += run.stats.degraded.map_or(1.0, |d| d.coverage);
                    stats.accumulate(&run.stats);
                    exact_mass.merge(&run.exact);
                    fragment_boundaries.push(run.boundary);
                    fragment_samples.push(run.sample);
                }
                // Δ-scan the append tails of stale selected samples: the
                // same pipeline, restricted to the sample's full predicate
                // box with the row floor pushed down to its watermark. The
                // tail sample is merged in below and absorbed back into
                // its source sample (advancing the watermark).
                let mut tail_samples = Vec::with_capacity(tails.len());
                let mut tails_skipped = 0u64;
                for tail in &tails {
                    if self.budget.expired() {
                        tails_skipped += 1;
                        continue;
                    }
                    let ranges = tail
                        .predicates
                        .get(&query.range_column)
                        .cloned()
                        .unwrap_or_else(|| IntervalSet::of(query.range));
                    let extra = fragment_extra_predicate(&tail.predicates, &query.range_column);
                    let run = self.sample_pipeline_hybrid(
                        catalog,
                        query,
                        &ranges,
                        &extra,
                        false,
                        tail.from_row as usize,
                    )?;
                    fragment_coverage += run.stats.degraded.map_or(1.0, |d| d.coverage);
                    stats.accumulate(&run.stats);
                    tail_samples.push(run.sample);
                }
                let degradation = blended_degradation(
                    stats.degraded.take(),
                    fragment_coverage,
                    fragments.len() + tails.len(),
                    fragments_skipped + tails_skipped,
                    effective,
                );
                stats.degraded = degradation;
                stats.fragments_scanned =
                    (fragments.len() + tails.len()) as u64 - fragments_skipped - tails_skipped;
                stats.fragments_reused = samples.len() as u64;
                // Clone the selected stored samples BEFORE mutating the
                // store: absorption below may merge a fragment into one of
                // them.
                let mut inputs = Vec::with_capacity(samples.len() + fragments.len());
                let mut parts: Vec<Predicates> = Vec::with_capacity(samples.len());
                for &id in &samples {
                    let stored = store
                        .get(id)
                        .ok_or_else(|| LaqyError::Unsupported("stored sample vanished".into()))?;
                    inputs.push(stored.sample.clone());
                    parts.push(stored.descriptor.predicates.clone());
                }
                // When lane mass was harvested, estimation uses a second
                // merge over the *boundary* fragment samples (covered rows
                // excluded), so the exact mass can be blended in without
                // double counting; absorption always uses the full merge.
                let mut est_inputs = (!exact_mass.is_empty()).then(|| inputs.clone());
                inputs.extend(fragment_samples.iter().cloned());
                inputs.extend(tail_samples.iter().cloned());
                if let Some(ei) = est_inputs.as_mut() {
                    for (b, full) in fragment_boundaries.iter().zip(&fragment_samples) {
                        ei.push(b.clone().unwrap_or_else(|| full.clone()));
                    }
                    // Tail scans never harvest lanes, so the full tail
                    // sample is its own boundary.
                    ei.extend(tail_samples.iter().cloned());
                }
                let t_merge = Instant::now();
                let merged = merge_stratified_k(inputs, &mut self.rng);
                let merged_est = est_inputs.map(|ei| merge_stratified_k(ei, &mut self.rng));
                stats.merge = t_merge.elapsed();
                // Sample-as-you-query absorption. If the merged region is
                // itself a predicate box (all constituents vary along one
                // column), consolidate: the merged sample replaces its
                // parts, exactly the old single-sample Δ-merge end state.
                // Otherwise absorb each fragment box individually and keep
                // the stored samples untouched (the union region is not
                // expressible as one descriptor). Degraded fragments are
                // never absorbed: their descriptors would overclaim
                // coverage for regions the scan never reached.
                if stats.degraded.is_none() {
                    let constituents: Vec<&Predicates> =
                        parts.iter().chain(fragments.iter()).collect();
                    // Tail absorption first: merge each tail sample back
                    // into its source sample and advance its watermark to
                    // the pinned epoch's — the sample now fully represents
                    // its predicate box again. Consolidation is skipped
                    // when tails exist: the union replacement would drop
                    // the per-sample watermark bookkeeping mid-catch-up.
                    if tails.is_empty() {
                        if let Some(union_preds) = union_single_column(&constituents) {
                            for &id in &samples {
                                store.remove(id);
                            }
                            let mut union_desc = descriptor.clone();
                            union_desc.predicates = union_preds;
                            store.absorb(
                                union_desc,
                                schema.clone(),
                                merged.clone(),
                                watermark,
                                &mut self.rng,
                            );
                        } else {
                            for (frag, s) in fragments.iter().zip(fragment_samples) {
                                let mut frag_desc = descriptor.clone();
                                frag_desc.predicates = frag.clone();
                                store.absorb(
                                    frag_desc,
                                    schema.clone(),
                                    s,
                                    watermark,
                                    &mut self.rng,
                                );
                            }
                        }
                    } else {
                        for (tail, s) in tails.iter().zip(tail_samples) {
                            store.absorb_tail(tail.id, s, tail.from_row, watermark, &mut self.rng);
                        }
                        for (frag, s) in fragments.iter().zip(fragment_samples) {
                            let mut frag_desc = descriptor.clone();
                            frag_desc.predicates = frag.clone();
                            store.absorb(frag_desc, schema.clone(), s, watermark, &mut self.rng);
                        }
                    }
                }
                let t_est = Instant::now();
                let opts = EstimateOptions {
                    tighten: Some(&tighten),
                    exact: (!exact_mass.is_empty()).then_some(&exact_mass),
                    ..Default::default()
                };
                let mut groups = estimate(
                    merged_est.as_ref().unwrap_or(&merged),
                    &schema,
                    &query.plan.aggs,
                    &opts,
                )?;
                if let Some(deg) = &stats.degraded {
                    apply_degradation(&mut groups, &query.plan.aggs, deg);
                }
                let mut support = support_from_groups(&groups, &self.policy);
                stats.estimate = t_est.elapsed();
                stats.effective_selectivity = effective;
                stats.reuse = Some(ReuseClass::Partial);
                if self.policy.conservative
                    && stats.degraded.is_none()
                    && !support.fully_supported()
                    && !self.refine_support(
                        catalog,
                        query,
                        &mut groups,
                        &mut support,
                        &mut stats,
                    )?
                {
                    return self.run_online_and_absorb(catalog, store, query, t_start);
                }
                stats.total = t_start.elapsed();
                ApproxResult {
                    groups,
                    stats,
                    support,
                }
            }
            LazyPlan::Online => {
                return self.run_online_and_absorb(catalog, store, query, t_start);
            }
        };
        Ok(result)
    }

    /// Workload-oblivious online sampling (the "Online Sampling" baseline):
    /// sample the full query range, estimate, discard.
    pub fn run_online(&mut self, catalog: &Catalog, query: &ApproxQuery) -> Result<ApproxResult> {
        let t_start = Instant::now();
        let ranges = IntervalSet::of(query.range);
        let (sample, mut stats) =
            self.sample_pipeline(catalog, query, &ranges, &Predicate::True)?;
        let (_, schema) = self.payload_schema(catalog, query)?;
        let t_est = Instant::now();
        let mut groups = estimate(
            &sample,
            &schema,
            &query.plan.aggs,
            &EstimateOptions::default(),
        )?;
        if let Some(deg) = &stats.degraded {
            apply_degradation(&mut groups, &query.plan.aggs, deg);
        }
        let support = check_support(&sample, &schema, None, &self.policy)?;
        stats.estimate = t_est.elapsed();
        stats.effective_selectivity = 1.0;
        stats.reuse = Some(ReuseClass::Online);
        stats.total = t_start.elapsed();
        Ok(ApproxResult {
            groups,
            stats,
            support,
        })
    }

    fn run_online_and_absorb(
        &mut self,
        catalog: &Catalog,
        store: &mut SampleStore,
        query: &ApproxQuery,
        t_start: Instant,
    ) -> Result<ApproxResult> {
        let descriptor = self.descriptor(catalog, query)?;
        let (_, schema) = self.payload_schema(catalog, query)?;
        let watermark = catalog.table(&query.plan.fact)?.row_watermark();
        let ranges = IntervalSet::of(query.range);
        let run =
            self.sample_pipeline_hybrid(catalog, query, &ranges, &Predicate::True, true, 0)?;
        let mut stats = run.stats;
        let t_est = Instant::now();
        // Hybrid estimation: sampled boundary mass plus exact lane mass
        // (when harvested); the stored sample always covers the full
        // region.
        let opts = EstimateOptions {
            exact: (!run.exact.is_empty()).then_some(&run.exact),
            ..Default::default()
        };
        let est_sample = run.boundary.as_ref().unwrap_or(&run.sample);
        let mut groups = estimate(est_sample, &schema, &query.plan.aggs, &opts)?;
        if let Some(deg) = &stats.degraded {
            apply_degradation(&mut groups, &query.plan.aggs, deg);
        }
        let support = check_support(&run.sample, &schema, None, &self.policy)?;
        stats.estimate = t_est.elapsed();
        // Capture the sample for future reuse (sample-as-you-query: the
        // sample was needed anyway, so storing it costs only space) —
        // unless the budget cut the scan short: a degraded sample's
        // descriptor would claim coverage the scan never delivered.
        if stats.degraded.is_none() {
            store.absorb(descriptor, schema, run.sample, watermark, &mut self.rng);
        }
        stats.effective_selectivity = 1.0;
        stats.reuse = Some(ReuseClass::Online);
        stats.total = t_start.elapsed();
        Ok(ApproxResult {
            groups,
            stats,
            support,
        })
    }

    /// Exact execution of the same query (the "GroupBy"/exact baseline).
    pub fn run_exact(
        &self,
        catalog: &Catalog,
        query: &ApproxQuery,
    ) -> Result<(QueryResult, ExecStats)> {
        let t = Instant::now();
        let mut plan = query.plan.clone();
        plan.predicate = plan.predicate.and(range_predicate(
            &query.range_column,
            &IntervalSet::of(query.range),
        ));
        let (result, prune) = execute_exact_counted(catalog, &plan, self.threads)?;
        let stats = ExecStats {
            total: t.elapsed(),
            effective_selectivity: 1.0,
            morsels_skipped: prune.skipped,
            morsels_fast_pathed: prune.fast_pathed,
            morsels_scanned: prune.scanned,
            reuse: Some(ReuseClass::Exact),
            ..Default::default()
        };
        Ok((result, stats))
    }

    /// Pure filtered scan over the query's predicate — the
    /// memory-bandwidth floor series in Figures 12–15.
    pub fn scan_floor(&self, catalog: &Catalog, query: &ApproxQuery) -> Result<ExecStats> {
        let t = Instant::now();
        let pred = query.plan.predicate.clone().and(range_predicate(
            &query.range_column,
            &IntervalSet::of(query.range),
        ));
        let (rows, prune) = scan_count_pruned(catalog, &query.plan.fact, &pred, self.threads)?;
        Ok(ExecStats {
            total: t.elapsed(),
            scan: t.elapsed(),
            scanned_rows: rows as u64,
            effective_selectivity: 1.0,
            morsels_skipped: prune.skipped,
            morsels_fast_pathed: prune.fast_pathed,
            morsels_scanned: prune.scanned,
            ..Default::default()
        })
    }

    /// Maximum number of under-supported strata the per-stratum fallback
    /// re-samples; beyond this a full online query is cheaper.
    const MAX_FALLBACK_STRATA: usize = 128;

    /// §5.2.3 per-stratum conservative fallback: re-sample exactly the
    /// under-supported/empty strata (filter pushed down to the query range
    /// AND the stratum keys) and splice exact-fidelity estimates for those
    /// groups into the result. Returns `false` when the fallback does not
    /// apply (dimension-table group keys, or too many bad strata) and the
    /// caller should fall back to a full online query instead.
    pub(crate) fn refine_support(
        &mut self,
        catalog: &Catalog,
        query: &ApproxQuery,
        groups: &mut Vec<GroupEstimate>,
        support: &mut SupportReport,
        stats: &mut ExecStats,
    ) -> Result<bool> {
        // The stratum filter must be expressible on the fact table.
        if query.plan.group_by.iter().any(|c| c.table.is_some()) {
            return Ok(false);
        }
        let bad: Vec<GroupKey> = support
            .under_supported
            .iter()
            .chain(support.empty.iter())
            .copied()
            .collect();
        if bad.is_empty() {
            return Ok(true);
        }
        if bad.len() > Self::MAX_FALLBACK_STRATA {
            return Ok(false);
        }
        // OR over per-stratum key equalities.
        let stratum_pred = Predicate::Or(
            bad.iter()
                .map(|key| {
                    Predicate::And(
                        query
                            .plan
                            .group_by
                            .iter()
                            .zip(key.parts())
                            .map(|(c, &v)| Predicate::EqInt {
                                column: c.column.clone(),
                                value: v,
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        let ranges = IntervalSet::of(query.range);
        let (fresh, fresh_stats) = self.sample_pipeline(catalog, query, &ranges, &stratum_pred)?;
        if fresh_stats.degraded.is_some() {
            // The probe itself was cut short by the budget: an empty or
            // partial probe must not be read as "stratum confirmed empty".
            return Ok(false);
        }
        stats.scan += fresh_stats.scan;
        stats.processing += fresh_stats.processing;
        stats.scanned_rows += fresh_stats.scanned_rows;
        stats.sampled_input_rows += fresh_stats.sampled_input_rows;
        stats.morsels_skipped += fresh_stats.morsels_skipped;
        stats.morsels_fast_pathed += fresh_stats.morsels_fast_pathed;
        stats.morsels_scanned += fresh_stats.morsels_scanned;

        let (_, schema) = self.payload_schema(catalog, query)?;
        let t_est = Instant::now();
        let fresh_groups = estimate(
            &fresh,
            &schema,
            &query.plan.aggs,
            &EstimateOptions::default(),
        )?;
        stats.estimate += t_est.elapsed();

        // Splice: replace the bad strata's estimates with the validated
        // online ones. Strata absent from the fresh sample are genuinely
        // empty under this predicate — the probe confirmed the data
        // distribution, so they are no longer "suspect" (§5.2.3).
        let bad_keys: Vec<Vec<i64>> = bad.iter().map(|k| k.parts().to_vec()).collect();
        groups.retain(|g| !bad_keys.contains(&g.key));
        for g in fresh_groups {
            if bad_keys.contains(&g.key) {
                groups.push(g);
            }
        }
        groups.sort_by(|a, b| a.key.cmp(&b.key));
        support.supported += bad.len();
        support.under_supported.clear();
        support.empty.clear();
        Ok(true)
    }

    /// Estimate from a stored sample with tightening + support check.
    pub(crate) fn estimate_stored(
        &self,
        store: &SampleStore,
        id: crate::store::SampleId,
        query: &ApproxQuery,
        tighten: &Predicates,
    ) -> Result<(Vec<GroupEstimate>, SupportReport, Duration)> {
        let t = Instant::now();
        let stored = store
            .get(id)
            .ok_or_else(|| LaqyError::Unsupported("stored sample vanished".into()))?;
        let opts = EstimateOptions {
            tighten: Some(tighten),
            ..Default::default()
        };
        let groups = estimate(&stored.sample, &stored.schema, &query.plan.aggs, &opts)?;
        // Estimation already counted the tightened support per stratum
        // (strata and output groups coincide: QCS = GROUP BY); derive the
        // report from it instead of re-filtering the sample.
        let support = support_from_groups(&groups, &self.policy);
        Ok((groups, support, t.elapsed()))
    }

    /// Build a stratified sample of the query's pipeline restricted to
    /// `ranges` on the range column — the Δ (or full online) sampler with
    /// the predicate pushed down (Figure 7 step 3). Plain (non-hybrid)
    /// entry point: lane coverage is not harvested.
    pub(crate) fn sample_pipeline(
        &mut self,
        catalog: &Catalog,
        query: &ApproxQuery,
        ranges: &IntervalSet,
        extra: &Predicate,
    ) -> Result<(StratifiedSampler<GroupKey, SampleTuple>, ExecStats)> {
        let run = self.sample_pipeline_hybrid(catalog, query, ranges, extra, false, 0)?;
        Ok((run.sample, run.stats))
    }

    /// [`Self::sample_pipeline`] with optional hybrid lane harvesting: when
    /// `hybrid` is set and the plan is eligible, predicate-covered,
    /// group-constant block spans are excluded from the scan; their
    /// aggregates are read exactly from the table's pre-aggregate lanes and
    /// their sample strata are drawn directly (a uniform k-subset with the
    /// span's row count as weight — exactly reservoir sampling's end state,
    /// so the merged full-region sample stays valid for absorption).
    ///
    /// `row_floor` restricts the scan to fact rows at or past the floor —
    /// the append-tail Δ-scan (rows below the floor are already represented
    /// by a stored sample's reservoirs). A non-zero floor disables lane
    /// harvesting: lane spans aggregate whole blocks from row 0, so their
    /// mass would double-count the already-sampled prefix.
    pub(crate) fn sample_pipeline_hybrid(
        &mut self,
        catalog: &Catalog,
        query: &ApproxQuery,
        ranges: &IntervalSet,
        extra: &Predicate,
        hybrid: bool,
        row_floor: usize,
    ) -> Result<PipelineRun> {
        let k = self.policy.effective_k(query.k);
        let (payload_cols, schema) = self.payload_schema(catalog, query)?;
        let fact = catalog.table(&query.plan.fact)?;
        let full_pred = query
            .plan
            .predicate
            .clone()
            .and(range_predicate(&query.range_column, ranges))
            .and(extra.clone());
        // Compile the predicate and flatten it into batch kernels once;
        // every morsel and residual fragment reuses this (validation
        // happens here too — the scans themselves are infallible).
        let prepared = laqy_engine::ops::PreparedScan::new(fact, &full_pred)?;
        let joins = PreparedJoins::build(catalog, &query.plan)?;

        // Hybrid lane pre-pass: find maximal block spans where the
        // predicate provably holds everywhere and every group column is
        // lane-constant. Their mass is exact (zero variance) and their
        // rows never reach the scan or the sampler.
        let mut covered_blocks: Vec<bool> = Vec::new();
        let mut exact = ExactMass::new();
        // Per-group covered row ranges, for the direct stratum draw.
        let mut covered_rows: Vec<(Vec<i64>, Vec<std::ops::Range<usize>>, u64)> = Vec::new();
        let mut lane_spans = 0u64;
        if hybrid && row_floor == 0 && hybrid_eligible(query) {
            if let Some(syn) = fact.synopsis() {
                let compiled = prepared.compiled();
                let group_cols: Vec<&str> = query
                    .plan
                    .group_by
                    .iter()
                    .map(|c| c.column.as_str())
                    .collect();
                for span in syn.covered_spans(compiled, &group_cols) {
                    if span.rows.is_empty() {
                        continue;
                    }
                    let mut slots = Vec::with_capacity(payload_cols.len());
                    for c in &payload_cols {
                        match syn.lane_sum(c, span.blocks.clone()) {
                            Some(a) => slots.push(ExactSlot {
                                sum: a.sum,
                                min: a.min,
                                max: a.max,
                            }),
                            None => break,
                        }
                    }
                    if slots.len() != payload_cols.len() {
                        continue;
                    }
                    if covered_blocks.is_empty() {
                        covered_blocks = vec![false; syn.num_blocks()];
                    }
                    for b in span.blocks.clone() {
                        covered_blocks[b] = true;
                    }
                    let rows = span.rows.len() as u64;
                    exact.add(&span.key, rows, slots);
                    match covered_rows.iter_mut().find(|(key, _, _)| *key == span.key) {
                        Some((_, spans, total)) => {
                            spans.push(span.rows.clone());
                            *total += rows;
                        }
                        None => {
                            covered_rows.push((span.key.clone(), vec![span.rows.clone()], rows))
                        }
                    }
                    lane_spans += 1;
                }
            }
        }
        let covered_mask: &[bool] = &covered_blocks;
        let covered_seed = self.next_seed();
        let factory = ReservoirAggFactory::new(k, &schema, self.next_seed());
        let payload_inputs: Vec<AggInput> = payload_cols
            .iter()
            .map(|c| AggInput::Col(c.clone()))
            .collect();

        struct Partial {
            table: GroupTable<ReservoirAgg>,
            scan_ns: u64,
            sample_ns: u64,
            scanned: u64,
            /// Rows this worker's scan excluded because their blocks are
            /// lane-covered (answered exactly, never read).
            lane_rows: u64,
            sampled_input: u64,
            /// Rows of morsels this worker fully processed (the numerator
            /// of the degraded answer's coverage fraction).
            covered: u64,
            prune: PruneCounts,
            /// Set when the budget expired and this worker stopped
            /// admitting morsels; the fold finalizes a degraded answer.
            degraded: Option<DegradeReason>,
            /// First failure this worker hit; poisons its further
            /// morsels and is re-raised after the fold.
            error: Option<LaqyError>,
        }

        // The plan was validated above, so per-morsel failures are
        // next-to-impossible — but a pool worker must not panic, so any
        // residual error folds into the partial and surfaces as a
        // `Result` after the scan.
        let process = |acc: &mut Partial, range: std::ops::Range<usize>| -> Result<()> {
            let t0 = Instant::now();
            let lane_before = acc.lane_rows;
            // Vectorized pruned scan through the pre-built kernels; the
            // selection vector is kept because reservoir insertion needs
            // row ids (the sanctioned mask→selection decode).
            let sel = prepared.scan_pruned_masked(
                range.clone(),
                &mut acc.prune,
                covered_mask,
                &mut acc.lane_rows,
            );
            acc.scanned += range.len() as u64 - (acc.lane_rows - lane_before);
            if query.plan.joins.is_empty() {
                acc.scan_ns += t0.elapsed().as_nanos() as u64;
                if sel.is_empty() {
                    return Ok(());
                }
                let t1 = Instant::now();
                let mut keys = Vec::with_capacity(query.plan.group_by.len());
                for c in &query.plan.group_by {
                    keys.push(BoundCol::new(fact.column(&c.column)?, Some(&sel)));
                }
                let inputs = Inputs::bind(&payload_inputs, |name| {
                    Ok(BoundCol::new(fact.column(name)?, Some(&sel)))
                })?;
                let partial = group_by(&keys, &inputs, sel.len(), &factory);
                acc.sampled_input += sel.len() as u64;
                acc.table.merge(partial);
                acc.sample_ns += t1.elapsed().as_nanos() as u64;
            } else {
                let out = laqy_engine::ops::star_probe(fact, &sel, &joins.probes())?;
                acc.scan_ns += t0.elapsed().as_nanos() as u64;
                if out.is_empty() {
                    return Ok(());
                }
                let t1 = Instant::now();
                let mut keys = Vec::with_capacity(query.plan.group_by.len());
                for c in &query.plan.group_by {
                    keys.push(match &c.table {
                        None => BoundCol::new(fact.column(&c.column)?, Some(&out.fact_rows)),
                        Some(t) => {
                            let idx = joins.dim_index(t).ok_or_else(|| {
                                LaqyError::Unsupported(format!(
                                    "group-by table `{t}` is not part of the join plan"
                                ))
                            })?;
                            let dim = catalog.table(t)?;
                            BoundCol::new(dim.column(&c.column)?, Some(&out.dim_rows[idx]))
                        }
                    });
                }
                let inputs = Inputs::bind(&payload_inputs, |name| {
                    let (dim_idx, table) = resolve_by_name(catalog, &query.plan, name)?;
                    let rows = match dim_idx {
                        None => &out.fact_rows,
                        Some(i) => &out.dim_rows[i],
                    };
                    Ok(BoundCol::new(table.column(name)?, Some(rows)))
                })?;
                let partial = group_by(&keys, &inputs, out.len(), &factory);
                acc.sampled_input += out.len() as u64;
                acc.table.merge(partial);
                acc.sample_ns += t1.elapsed().as_nanos() as u64;
            }
            Ok(())
        };

        let token = &self.budget;
        let t_pipeline = Instant::now();
        let n_rows = fact.num_rows();
        let partials = parallel_fold(
            n_rows,
            DEFAULT_MORSEL_ROWS,
            self.threads,
            || Partial {
                table: GroupTable::new(),
                scan_ns: 0,
                sample_ns: 0,
                scanned: 0,
                lane_rows: 0,
                sampled_input: 0,
                covered: 0,
                prune: PruneCounts::default(),
                degraded: None,
                error: None,
            },
            |acc, range| {
                if acc.error.is_some() || acc.degraded.is_some() {
                    return;
                }
                // Clamp the morsel to the row floor: morsels entirely below
                // it are already represented by the stored sample this tail
                // scan extends.
                let range = range.start.max(row_floor)..range.end;
                if range.start >= range.end {
                    return;
                }
                // Cooperative cancellation, once per morsel: on budget
                // expiry this worker stops scanning and the fold
                // finalizes whatever the reservoirs hold.
                if let Some(reason) = token.admit(range.len() as u64) {
                    acc.degraded = Some(reason);
                    return;
                }
                let rows = range.len() as u64;
                // Per-morsel panic isolation: the fault point and the
                // scan both run inside it, so an injected (or genuine)
                // worker panic fails this one query as a typed error —
                // never the pool or a concurrent query.
                let outcome = laqy_engine::parallel::isolate_unwind(|| {
                    laqy_faults::point("pool.morsel")
                        .map_err(|e| LaqyError::Injected(e.to_string()))?;
                    process(acc, range)
                });
                match outcome {
                    Ok(Ok(())) => acc.covered += rows,
                    Ok(Err(e)) => acc.error = Some(e),
                    Err(panic_msg) => acc.error = Some(LaqyError::WorkerPanic(panic_msg)),
                }
            },
        );
        let pipeline_wall = t_pipeline.elapsed();

        let mut merged = GroupTable::new();
        let (mut scan_ns, mut sample_ns, mut scanned, mut sampled_input) = (0u64, 0u64, 0u64, 0u64);
        let mut covered = 0u64;
        let mut lane_rows = 0u64;
        let mut degraded: Option<DegradeReason> = None;
        let mut prune = PruneCounts::default();
        for p in partials {
            if let Some(e) = p.error {
                return Err(e);
            }
            merged.merge(p.table);
            scan_ns += p.scan_ns;
            sample_ns += p.sample_ns;
            scanned += p.scanned;
            lane_rows += p.lane_rows;
            sampled_input += p.sampled_input;
            covered += p.covered;
            degraded = degraded.or(p.degraded);
            prune.accumulate(&p.prune);
        }
        let boundary_sample = group_table_into_sample(merged, k);

        // Fold the covered strata back into the stored sample: a uniform
        // k-subset of the span's rows with the span's row count as weight
        // is distributed exactly like a reservoir pass over those rows, so
        // `merge(boundary, covered)` is statistically a full-region sample.
        let (sample, boundary) = if exact.is_empty() {
            (boundary_sample, None)
        } else {
            let mut bound_cols = Vec::with_capacity(payload_cols.len());
            for (slot, c) in payload_cols.iter().enumerate() {
                bound_cols.push((fact.column(c)?, schema.kind(slot)));
            }
            let mut covered_sampler: StratifiedSampler<GroupKey, SampleTuple> =
                StratifiedSampler::with_strata_hint(k, covered_rows.len());
            let mut draw_rng = Lehmer64::new(covered_seed);
            for (key, spans, total) in &covered_rows {
                let take = k.min(*total as usize);
                let mut items = Vec::with_capacity(take);
                for idx in floyd_k_subset(*total, take, &mut draw_rng) {
                    let row = row_at(spans, idx);
                    let mut vals = Vec::with_capacity(bound_cols.len());
                    for (col, kind) in &bound_cols {
                        vals.push(match kind {
                            SlotKind::Int => col.i64_at(row),
                            SlotKind::Float => col.f64_at(row).to_bits() as i64,
                        });
                    }
                    items.push(SampleTuple::from_slice(&vals));
                }
                covered_sampler
                    .insert_stratum(GroupKey::new(key), Reservoir::from_parts(k, items, *total));
            }
            if degraded.is_some() {
                // A cut-short scan cannot blend cleanly: estimate from the
                // full merged sample instead (covered strata are proper
                // weighted strata, so the degraded-answer path stays
                // valid) and drop the exact mass.
                exact = ExactMass::new();
                (
                    merge_stratified(boundary_sample, covered_sampler, &mut self.rng),
                    None,
                )
            } else {
                let full =
                    merge_stratified(boundary_sample.clone(), covered_sampler, &mut self.rng);
                (full, Some(boundary_sample))
            }
        };

        // The per-thread phase timers measure CPU time; scale them onto the
        // wall-clock pipeline time so the breakdown sums to what a user
        // observes (Figure 11's stacked bars).
        let cpu_total = (scan_ns + sample_ns).max(1);
        let wall = pipeline_wall.as_secs_f64();
        let stats = ExecStats {
            scan: Duration::from_secs_f64(wall * scan_ns as f64 / cpu_total as f64),
            processing: Duration::from_secs_f64(wall * sample_ns as f64 / cpu_total as f64),
            scanned_rows: scanned,
            sampled_input_rows: sampled_input,
            morsels_skipped: prune.skipped,
            morsels_fast_pathed: prune.fast_pathed,
            morsels_scanned: prune.scanned,
            lane_covered_rows: lane_rows,
            lane_spans,
            degraded: degraded.map(|reason| {
                Degradation::at_coverage(
                    reason,
                    covered as f64 / n_rows.saturating_sub(row_floor).max(1) as f64,
                )
            }),
            ..Default::default()
        };
        Ok(PipelineRun {
            sample,
            boundary,
            exact,
            stats,
        })
    }

    /// Decode raw group-key parts into display values using the plan's key
    /// columns (dictionary codes become strings).
    pub fn decode_keys(
        &self,
        catalog: &Catalog,
        query: &ApproxQuery,
        groups: &[GroupEstimate],
    ) -> Result<Vec<Vec<laqy_engine::Value>>> {
        let cols: Vec<&laqy_engine::Column> = query
            .plan
            .group_by
            .iter()
            .map(|c| {
                let table = match &c.table {
                    None => catalog.table(&query.plan.fact)?,
                    Some(t) => catalog.table(t)?,
                };
                table.column(&c.column)
            })
            .collect::<laqy_engine::Result<_>>()?;
        Ok(groups
            .iter()
            .map(|g| {
                g.key
                    .iter()
                    .zip(cols.iter())
                    .map(|(&part, col)| col.decode_key(part))
                    .collect()
            })
            .collect())
    }
}

/// Outcome of one sampling pipeline run.
pub(crate) struct PipelineRun {
    /// Stratified sample over the whole scanned region, lane-covered
    /// strata included — statistically equivalent to a plain reservoir
    /// pass, so it is what the store absorbs.
    pub sample: StratifiedSampler<GroupKey, SampleTuple>,
    /// Boundary-only sample (covered rows excluded) for estimation;
    /// `None` when no lane mass was harvested (estimate from `sample`).
    pub boundary: Option<StratifiedSampler<GroupKey, SampleTuple>>,
    /// Exact covered mass to blend into estimation alongside `boundary`.
    pub exact: ExactMass,
    /// Timing/cardinality breakdown.
    pub stats: ExecStats,
}

/// Whether a plan can take the hybrid lane path: lanes live on the fact
/// table only and hold per-column sums, so joins, dimension-side group
/// keys, and product-input aggregates are out.
fn hybrid_eligible(query: &ApproxQuery) -> bool {
    query.plan.joins.is_empty()
        && query.plan.group_by.iter().all(|c| c.table.is_none())
        && query
            .plan
            .aggs
            .iter()
            .all(|a| !matches!(a.input, AggInput::Mul(..)))
}

/// Floyd's algorithm: `take` distinct indices drawn uniformly from
/// `0..n`. O(take²) membership checks — `take` is a reservoir capacity,
/// so small.
fn floyd_k_subset(n: u64, take: usize, rng: &mut Lehmer64) -> Vec<u64> {
    let mut chosen: Vec<u64> = Vec::with_capacity(take);
    for j in n.saturating_sub(take as u64)..n {
        let t = rng.next_below(j + 1);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

/// Map a flat index into a list of disjoint row ranges.
fn row_at(spans: &[std::ops::Range<usize>], idx: u64) -> usize {
    let mut rem = idx as usize;
    for r in spans {
        if rem < r.len() {
            return r.start + rem;
        }
        rem -= r.len();
    }
    // Unreachable when idx < total rows; clamp defensively.
    spans.last().map(|r| r.end.saturating_sub(1)).unwrap_or(0)
}

/// Build a [`SupportReport`] from per-group estimates whose `support`
/// fields carry the tightened matching counts (valid when output groups
/// coincide with strata, i.e. no group projection).
pub(crate) fn support_from_groups(
    groups: &[GroupEstimate],
    policy: &SupportPolicy,
) -> SupportReport {
    let mut report = SupportReport {
        supported: 0,
        under_supported: Vec::new(),
        empty: Vec::new(),
    };
    for g in groups {
        let matching = g.values.first().map(|v| v.support).unwrap_or(0);
        let key = GroupKey::new(&g.key);
        if matching == 0 {
            report.empty.push(key);
        } else if matching < policy.min_rows_per_stratum {
            report.under_supported.push(key);
        } else {
            report.supported += 1;
        }
    }
    report.under_supported.sort();
    report.empty.sort();
    report
}

/// Canonical identity of the sampler input: fact, fixed predicates, and
/// join subtree (Figure 7's "Query Input").
pub fn input_identity(plan: &QueryPlan) -> String {
    let mut id = format!("{}[{:?}]", plan.fact, plan.predicate);
    for j in &plan.joins {
        id.push_str(&format!(
            "⋈{}({}={})[{:?}]",
            j.dim_table, j.fact_key, j.dim_key, j.predicate
        ));
    }
    id
}

/// Engine predicate for a coverage fragment's constraints on every column
/// *except* the range column (which is pushed down separately as the scan
/// range). `True` for single-column fragments.
pub(crate) fn fragment_extra_predicate(frag: &Predicates, range_column: &str) -> Predicate {
    let mut parts: Vec<Predicate> = frag
        .columns()
        .filter(|c| *c != range_column)
        .filter_map(|c| frag.get(c).map(|set| range_predicate(c, set)))
        .collect();
    match parts.pop() {
        None => Predicate::True,
        Some(single) if parts.is_empty() => single,
        Some(last) => {
            parts.push(last);
            Predicate::And(parts)
        }
    }
}

/// Engine predicate matching an [`IntervalSet`] on one column.
pub fn range_predicate(column: &str, ranges: &IntervalSet) -> Predicate {
    let mut parts: Vec<Predicate> = ranges
        .intervals()
        .iter()
        .map(|iv| Predicate::between(column, iv.lo, iv.hi))
        .collect();
    match parts.pop() {
        None => Predicate::False,
        Some(single) if parts.is_empty() => single,
        Some(last) => {
            parts.push(last);
            Predicate::Or(parts)
        }
    }
}

/// Resolve an unqualified column name against the plan's fact table, then
/// joined dimensions (join order), mirroring the engine's resolution.
fn resolve_by_name<'a>(
    catalog: &'a Catalog,
    plan: &QueryPlan,
    name: &str,
) -> laqy_engine::Result<(Option<usize>, &'a laqy_engine::Table)> {
    let fact = catalog.table(&plan.fact)?;
    if fact.has_column(name) {
        return Ok((None, fact));
    }
    for (i, j) in plan.joins.iter().enumerate() {
        let dim = catalog.table(&j.dim_table)?;
        if dim.has_column(name) {
            return Ok((Some(i), dim));
        }
    }
    Err(EngineError::UnknownColumn {
        table: plan.fact.clone(),
        column: name.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::AggEstimate;
    use laqy_engine::{AggSpec, ColRef, Column, Table};

    fn mini_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                "t",
                vec![
                    ("key".into(), Column::Int64((0..100).collect())),
                    ("g".into(), Column::Int64((0..100).map(|i| i % 4).collect())),
                    ("v".into(), Column::Int64((0..100).collect())),
                ],
            )
            .unwrap(),
        );
        cat
    }

    fn mini_query(lo: i64, hi: i64) -> ApproxQuery {
        ApproxQuery {
            plan: QueryPlan {
                fact: "t".into(),
                predicate: Predicate::True,
                joins: vec![],
                group_by: vec![ColRef::fact("g")],
                aggs: vec![AggSpec::sum("v")],
            },
            range_column: "key".into(),
            range: Interval::new(lo, hi),
            k: 16,
        }
    }

    #[test]
    fn range_predicate_shapes() {
        assert_eq!(
            range_predicate("x", &IntervalSet::empty()),
            Predicate::False
        );
        assert_eq!(
            range_predicate("x", &IntervalSet::of(Interval::new(1, 5))),
            Predicate::between("x", 1, 5)
        );
        let two = IntervalSet::from_intervals(vec![Interval::new(0, 1), Interval::new(5, 9)]);
        match range_predicate("x", &two) {
            Predicate::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn input_identity_distinguishes_plans() {
        let q = mini_query(0, 10);
        let id1 = input_identity(&q.plan);
        let mut plan2 = q.plan.clone();
        plan2.predicate = Predicate::between("g", 0, 1);
        assert_ne!(id1, input_identity(&plan2));
        let mut plan3 = q.plan.clone();
        plan3.joins.push(laqy_engine::JoinSpec {
            dim_table: "d".into(),
            dim_key: "k".into(),
            fact_key: "g".into(),
            predicate: Predicate::True,
        });
        assert_ne!(id1, input_identity(&plan3));
    }

    #[test]
    fn descriptor_derivation() {
        let cat = mini_catalog();
        let exec = LaqyExecutor::new(1, SupportPolicy::default(), 1);
        let d = exec.descriptor(&cat, &mini_query(0, 49)).unwrap();
        assert_eq!(d.qcs, vec!["g".to_string()]);
        // Payload: agg input v + range column key, sorted.
        assert_eq!(d.qvs, vec!["key".to_string(), "v".to_string()]);
        assert_eq!(d.k, 16);
        assert_eq!(
            d.predicates.get("key").unwrap(),
            &IntervalSet::of(Interval::new(0, 49))
        );
    }

    #[test]
    fn support_from_groups_classifies() {
        let policy = SupportPolicy {
            min_rows_per_stratum: 5,
            ..Default::default()
        };
        let mk = |key: i64, support: usize| GroupEstimate {
            key: vec![key],
            values: vec![AggEstimate {
                value: 0.0,
                ci_half_width: 0.0,
                support,
            }],
        };
        let report = support_from_groups(&[mk(0, 10), mk(1, 2), mk(2, 0)], &policy);
        assert_eq!(report.supported, 1);
        assert_eq!(report.under_supported, vec![GroupKey::new(&[1])]);
        assert_eq!(report.empty, vec![GroupKey::new(&[2])]);
    }

    #[test]
    fn unknown_table_is_engine_error() {
        let cat = Catalog::new();
        let mut exec = LaqyExecutor::new(1, SupportPolicy::default(), 1);
        let mut store = SampleStore::new();
        let err = exec
            .run_lazy(&cat, &mut store, &mini_query(0, 10))
            .unwrap_err();
        assert!(matches!(err, LaqyError::Engine(_)));
    }

    #[test]
    fn executor_mode_roundtrip() {
        let exec =
            LaqyExecutor::new(2, SupportPolicy::default(), 1).with_mode(ReuseMode::FullMatchOnly);
        assert_eq!(exec.mode(), ReuseMode::FullMatchOnly);
        assert_eq!(exec.threads(), 2);
    }
}
