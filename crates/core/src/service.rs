//! The concurrent, shared-store LAQy service.
//!
//! [`LaqyService`] is a cheaply cloneable (`Arc`-based), `Send + Sync`
//! handle wrapping one catalog and one concurrency-safe [`SampleStore`],
//! so many client threads can run approximate queries against a single
//! shared sample store — the multi-tenant AQP-middleware deployment model
//! (VerdictDB-style service, PilotDB-style concurrent ad-hoc workloads).
//! Sample *reuse* (the paper's central asset) compounds across clients:
//! one tenant's Δ-merge widens coverage for everyone.
//!
//! Concurrency design:
//!
//! - **Sharded store**: the sample store is a [`ShardedStore`] — N
//!   independent `SampleStore`s, each behind its own named
//!   `laqy_sync::RwLock`, routed by descriptor fingerprint. Queries with
//!   different fingerprints never contend; all reuse/merge candidates
//!   for one query share its fingerprint and therefore its shard, so the
//!   whole plan→scan→merge→absorb flow is single-shard.
//! - **Read path** (classification + full-reuse estimation) runs under
//!   the home shard's *read* guard. LRU touches are relaxed atomic
//!   stores ([`SampleStore::get`]), so readers never take the write lock.
//! - **Write path** (absorb / Δ-merge / eviction) takes the home shard's
//!   write lock only around the in-memory merge — never around the
//!   sampling scan, which is the expensive part and runs lock-free.
//! - **Per-fragment in-flight dedup registry**: coverage plans claim one
//!   registry slot *per residual fragment* with non-blocking try-claims.
//!   When two clients' plans share fragments, each fragment is scanned by
//!   exactly one of them: a client that could not claim every fragment
//!   scans and absorbs the fragments it did claim, releases its claims,
//!   waits guard-free for the others, and re-plans (typically upgrading
//!   to full or pure-merge reuse). Claims are never held while waiting,
//!   so overlapping claim sets cannot deadlock. Online misses dedup the
//!   same way on a whole-query key.
//! - **Optimistic revalidation**: a coverage merge is validated under the
//!   write lock (every selected sample still present with the exact
//!   coverage it was planned against). If another client's merge or an
//!   eviction invalidated the plan, the fragment samples are absorbed
//!   individually — the scan work is kept, never double-counted — and
//!   the query retries, degrading to online sampling after a bounded
//!   number of attempts.
//!
//! Lock ordering: registry mutexes, shard locks, and the catalog lock
//! are never held while waiting on an in-flight entry; a query path
//! holds at most one shard lock and one registry mutex at a time, never
//! nested; and whole-store operations (snapshot, clear, restore) lock
//! shards in ascending index order. Each shard lock carries its own
//! static class name, so the `laqy_sync` lock-order detector enforces
//! the canonical order instead of skipping same-name edges.
//!
//! Streaming ingest: [`LaqyService::ingest`] appends a batch of rows to
//! a registered table. Each query attempt pins one table epoch by
//! cloning the catalog once up front, so a query concurrent with appends
//! reads a frozen set of rows — never a torn mix of old and new. When a
//! write-ahead log is enabled ([`LaqyService::enable_wal`]), the batch
//! is durably logged and fsynced *before* the new table version is
//! published or any stored sample absorbs the appended rows, so the
//! sample store can never run ahead of what recovery can replay. The
//! whole ingest flow serializes on the `laqy.wal` mutex; it acquires the
//! catalog and shard locks strictly after it (wal → catalog → shards),
//! which keeps the lock graph acyclic.

use std::collections::HashMap;
use std::sync::Arc;

use laqy_sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use laqy_engine::{Catalog, Column, Predicate, QueryResult, Table, Value};
use laqy_sync::classes;
use laqy_sync::{Condvar, Mutex, RwLock, RwLockReadGuard};

use crate::budget::{apply_degradation, blended_degradation, CancelToken, QueryBudget};
use crate::descriptor::{Predicates, SampleDescriptor};
use crate::executor::{
    fragment_extra_predicate, support_from_groups, ApproxQuery, ApproxResult, LaqyError,
    LaqyExecutor, Result, ReuseMode,
};
use crate::interval::IntervalSet;
use crate::lazy::{plan_lazy, plan_lazy_capped, LazyPlan};
use crate::session::SessionConfig;
use crate::stats::{ExecStats, ReuseClass, ServiceStats};
use crate::store::{
    union_single_column, SampleId, SampleStore, ShardedStore, TailFragment, STORE_SHARDS,
};
use crate::wal::{WalAppender, WalRecord};
use laqy_sampling::{merge_stratified_k, Lehmer64};

// One static lock-class name per in-flight registry shard, from the
// canonical registry (`laqy_sync::classes`), mirroring the store's
// per-shard lock names: distinct names keep the lock-order detector's
// edges meaningful, and the static analyzer reads the same registry.
const INFLIGHT_LOCK_NAMES: [&str; STORE_SHARDS] = laqy_sync::classes::INFLIGHT_REGISTRY_NAMES;

/// Attempts before a query stops chasing invalidated reuse plans and
/// forces online sampling. Each retry means another client changed the
/// store meanwhile, so contention this deep is already pathological.
const MAX_PLAN_RETRIES: u32 = 16;

/// One in-flight sampling operation; waiters block on `cv` until the
/// owner completes (successfully or not) and then re-plan.
struct Inflight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Inflight {
    fn new() -> Self {
        Self {
            done: Mutex::named(classes::INFLIGHT_DONE, false),
            cv: Condvar::named(classes::INFLIGHT_CV),
        }
    }
}

/// Monotonic service-wide counters (all relaxed; they are telemetry, not
/// synchronization).
#[derive(Default)]
struct Counters {
    queries: AtomicU64,
    full_hits: AtomicU64,
    partial_merges: AtomicU64,
    online_runs: AtomicU64,
    delta_scans: AtomicU64,
    online_scans: AtomicU64,
    merges_deduped: AtomicU64,
    online_deduped: AtomicU64,
    merge_retries: AtomicU64,
    support_fallbacks: AtomicU64,
    lock_wait_nanos: AtomicU64,
    morsels_skipped: AtomicU64,
    morsels_fast_pathed: AtomicU64,
    morsels_scanned: AtomicU64,
    lane_covered_rows: AtomicU64,
    fragments_reused: AtomicU64,
    fragments_scanned: AtomicU64,
    fragments_deduped: AtomicU64,
    degraded_answers: AtomicU64,
    faults_injected: AtomicU64,
    snapshots_recovered: AtomicU64,
    ingest_batches: AtomicU64,
    ingest_rows: AtomicU64,
    absorbed_samples: AtomicU64,
    absorbed_rows: AtomicU64,
    wal_appends: AtomicU64,
    wal_replays: AtomicU64,
}

struct ServiceInner {
    catalog: RwLock<Catalog>,
    store: ShardedStore,
    /// In-flight dedup registry, sharded like the store (one mutex per
    /// registry shard, keys routed by [`ShardedStore::registry_shard`]).
    /// A query's fragment keys embed the fragment predicates, so one
    /// coverage plan's claims spread across registry shards instead of
    /// serializing on one mutex.
    inflight: Vec<Mutex<HashMap<String, Arc<Inflight>>>>,
    counters: Counters,
    threads: usize,
    policy: crate::support::SupportPolicy,
    mode: ReuseMode,
    seed: AtomicU64,
    /// Fault-injection hook (nanoseconds; 0 = off): owners of an
    /// in-flight sampling operation sleep this long before scanning,
    /// widening the race window so tests can deterministically exercise
    /// the dedup/piggyback path.
    sampling_hold_nanos: AtomicU64,
    /// Write-ahead log appender (`None` until
    /// [`LaqyService::enable_wal`]). Doubles as the ingest serialization
    /// point: every ingest holds this mutex across log-append, catalog
    /// publish, and sample absorption, so batches apply in WAL order.
    wal: Mutex<Option<WalAppender>>,
}

/// A shared, thread-safe LAQy query service.
///
/// Clone the handle freely — all clones operate on the same catalog,
/// sample store, and counters. See the crate-level example.
pub struct LaqyService {
    inner: Arc<ServiceInner>,
}

impl Clone for LaqyService {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Outcome of one plan-and-execute attempt.
enum Attempt {
    Done(Box<ApproxResult>),
    /// The store changed under us (eviction, competing merge, or an
    /// in-flight wait completed): re-plan from scratch.
    Retry,
}

impl LaqyService {
    /// Create a service with default configuration.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_config(catalog, SessionConfig::default())
    }

    /// Create a service with explicit configuration.
    pub fn with_config(catalog: Catalog, config: SessionConfig) -> Self {
        let store = ShardedStore::new(config.store_shards, config.store_budget_bytes);
        let registry_shards = store.num_shards();
        Self {
            inner: Arc::new(ServiceInner {
                catalog: RwLock::named(classes::CATALOG, catalog),
                store,
                inflight: (0..registry_shards)
                    .map(|i| Mutex::named(INFLIGHT_LOCK_NAMES[i], HashMap::new()))
                    .collect(),
                counters: Counters::default(),
                threads: config.threads,
                policy: config.policy,
                mode: config.reuse_mode,
                seed: AtomicU64::new(config.seed),
                sampling_hold_nanos: AtomicU64::new(0),
                wal: Mutex::named(classes::WAL, None),
            }),
        }
    }

    /// Register (or replace) a table. Waits for in-progress queries'
    /// catalog reads to drain. Samples built from a replaced table keep
    /// their old contents until evicted or cleared (same caveat as the
    /// single-owner session).
    pub fn register_table(&self, table: Table) {
        self.inner.catalog.write().register(table);
    }

    /// Shared read access to the catalog.
    pub fn catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        self.timed(|i| i.catalog.read())
    }

    /// A coherent owned snapshot of the sample store (inspection / tests
    /// / persistence). Sample ids are preserved; shards are locked in
    /// canonical ascending order while the snapshot is cut.
    pub fn store(&self) -> SampleStore {
        self.timed(|i| i.store.snapshot())
    }

    /// Snapshot of the per-service counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            queries: c.queries.load(Ordering::Relaxed),
            full_hits: c.full_hits.load(Ordering::Relaxed),
            partial_merges: c.partial_merges.load(Ordering::Relaxed),
            online_runs: c.online_runs.load(Ordering::Relaxed),
            delta_scans: c.delta_scans.load(Ordering::Relaxed),
            online_scans: c.online_scans.load(Ordering::Relaxed),
            merges_deduped: c.merges_deduped.load(Ordering::Relaxed),
            online_deduped: c.online_deduped.load(Ordering::Relaxed),
            merge_retries: c.merge_retries.load(Ordering::Relaxed),
            support_fallbacks: c.support_fallbacks.load(Ordering::Relaxed),
            lock_wait_nanos: c.lock_wait_nanos.load(Ordering::Relaxed),
            morsels_skipped: c.morsels_skipped.load(Ordering::Relaxed),
            morsels_fast_pathed: c.morsels_fast_pathed.load(Ordering::Relaxed),
            morsels_scanned: c.morsels_scanned.load(Ordering::Relaxed),
            lane_covered_rows: c.lane_covered_rows.load(Ordering::Relaxed),
            fragments_reused: c.fragments_reused.load(Ordering::Relaxed),
            fragments_scanned: c.fragments_scanned.load(Ordering::Relaxed),
            fragments_deduped: c.fragments_deduped.load(Ordering::Relaxed),
            degraded_answers: c.degraded_answers.load(Ordering::Relaxed),
            faults_injected: c.faults_injected.load(Ordering::Relaxed),
            snapshots_recovered: c.snapshots_recovered.load(Ordering::Relaxed),
            ingest_batches: c.ingest_batches.load(Ordering::Relaxed),
            ingest_rows: c.ingest_rows.load(Ordering::Relaxed),
            absorbed_samples: c.absorbed_samples.load(Ordering::Relaxed),
            absorbed_rows: c.absorbed_rows.load(Ordering::Relaxed),
            wal_appends: c.wal_appends.load(Ordering::Relaxed),
            wal_replays: c.wal_replays.load(Ordering::Relaxed),
        }
    }

    /// Clear all materialized samples (cold-start experiments).
    pub fn clear_samples(&self) {
        self.timed(|i| i.store.clear());
    }

    /// Serialize the sample store (offline-sample persistence).
    pub fn export_samples(&self) -> Vec<u8> {
        crate::persist::save_store(&self.store())
    }

    /// Replace the sample store from a snapshot produced by
    /// [`LaqyService::export_samples`].
    pub fn import_samples(&self, bytes: &[u8]) -> Result<()> {
        let loaded =
            crate::persist::load_store(bytes).map_err(|e| LaqyError::Unsupported(e.to_string()))?;
        self.timed(|i| i.store.replace_from(loaded));
        Ok(())
    }

    /// Write an atomic, generation-numbered snapshot of the sample store
    /// into `dir` (crash-safe: tmp + fsync + rename + directory fsync;
    /// see [`crate::persist::save_snapshot`]). Returns the generation
    /// written.
    pub fn save_snapshot(
        &self,
        dir: &std::path::Path,
    ) -> std::result::Result<u64, crate::persist::PersistError> {
        // wal → shards, the canonical ingest order: holding the WAL mutex
        // across the store snapshot pins the snapshot to a WAL position —
        // no ingest can slip between the store cut and the checkpoint.
        let mut wal = self.timed(|i| i.wal.lock());
        let store = self.store();
        // laqy-lint: allow(guard-blocking-op) -- intentional: the snapshot write is pinned to a frozen WAL position; releasing `laqy.wal` before the fsync would let ingest move the log past the cut.
        let generation = crate::persist::save_snapshot(&store, dir)?;
        if let Some(w) = wal.as_mut() {
            let watermarks: Vec<(String, u64)> = {
                let catalog = self.catalog();
                catalog
                    .table_names()
                    .iter()
                    .filter_map(|n| {
                        catalog
                            .table(n)
                            .ok()
                            .map(|t| (n.to_string(), t.row_watermark()))
                    })
                    .collect()
            };
            // laqy-lint: allow(guard-blocking-op) -- the checkpoint record must be ordered against concurrent ingest appends; `laqy.wal` provides exactly that order.
            let append = w.append(&WalRecord::Checkpoint {
                generation,
                watermarks,
            });
            if let Err(e) = append {
                // Same discipline as `ingest`: a failed append may have
                // torn the segment tail, and appending past it would make
                // every later record unreachable at replay. Disable the
                // WAL until `enable_wal` re-opens (and truncates) it. The
                // snapshot itself is already durable.
                *wal = None;
                return Err(e);
            }
            self.inner
                .counters
                .wal_appends
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(generation)
    }

    /// Replace the sample store from the newest loadable snapshot
    /// generation in `dir`, falling back past corrupt or truncated tails
    /// (see [`crate::persist::recover_snapshot`]). Advances the
    /// `snapshots_recovered` counter when recovery had to discard a
    /// newer, damaged generation.
    pub fn recover_from_dir(
        &self,
        dir: &std::path::Path,
    ) -> std::result::Result<crate::persist::RecoveryReport, crate::persist::PersistError> {
        let (loaded, report) = crate::persist::recover_snapshot(dir)?;
        self.timed(|i| i.store.replace_from(loaded));
        if report.fell_back() {
            self.inner
                .counters
                .snapshots_recovered
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    /// Append a batch of rows to registered table `table`, returning the
    /// new row watermark. The batch must carry exactly the table's
    /// columns (matched by name, any order) with equal lengths.
    ///
    /// Ordering guarantees, all under the `laqy.wal` mutex (ingests are
    /// serialized; queries are not — they keep reading their pinned
    /// epoch):
    ///
    /// 1. the next table version is *built* first (pure validation — a
    ///    malformed batch changes nothing);
    /// 2. with a WAL enabled, the batch is appended and fsynced — if the
    ///    log write fails, the batch is not published and the WAL is
    ///    disabled until [`LaqyService::enable_wal`] re-opens (and
    ///    truncates) it, so a torn segment tail can never be appended
    ///    past;
    /// 3. the new version is published in the catalog (appends never
    ///    mutate the version concurrent readers pinned);
    /// 4. stored samples absorb the appended rows via incremental
    ///    reservoir maintenance ([`SampleStore::absorb_appended`]), shard
    ///    by shard in ascending lock order.
    pub fn ingest(&self, table: &str, batch: Vec<(String, Column)>) -> Result<u64> {
        let rows = batch.first().map(|(_, c)| c.len()).unwrap_or(0) as u64;
        let mut wal = self.timed(|i| i.wal.lock());
        let (new_table, base_rows) = {
            let catalog = self.catalog();
            let current = catalog.table(table)?;
            (current.append_batch(&batch)?, current.num_rows() as u64)
        };
        if let Some(w) = wal.as_mut() {
            // laqy-lint: allow(guard-blocking-op) -- durable-before-publish: the append+fsync under `laqy.wal` is the ingest serialization point (see the ordering contract in the doc comment).
            let append = w.append(&WalRecord::Batch {
                table: table.to_string(),
                base_rows,
                columns: batch,
            });
            if let Err(e) = append {
                *wal = None;
                return Err(LaqyError::Unsupported(format!(
                    "wal append failed (wal disabled): {e}"
                )));
            }
            self.inner
                .counters
                .wal_appends
                .fetch_add(1, Ordering::Relaxed);
        }
        let published = self.timed(|i| i.catalog.write()).register(new_table);
        self.absorb_published(&published);
        let c = &self.inner.counters;
        c.ingest_batches.fetch_add(1, Ordering::Relaxed);
        c.ingest_rows.fetch_add(rows, Ordering::Relaxed);
        Ok(published.row_watermark())
    }

    /// Enable the ingest write-ahead log rooted at `dir`. Any intact
    /// records already in the log are replayed first — batches apply
    /// idempotently (a batch whose table already holds more than its
    /// `base_rows` is skipped) and stored samples catch up — then the
    /// appender opens at the end of the last intact record, truncating a
    /// torn tail. Subsequent [`LaqyService::ingest`] calls are durable:
    /// the batch is logged and fsynced before it is published.
    pub fn enable_wal(
        &self,
        dir: &std::path::Path,
    ) -> std::result::Result<crate::wal::WalReplayReport, crate::persist::PersistError> {
        let mut wal = self.timed(|i| i.wal.lock());
        let (records, replay) = crate::wal::replay(dir)?;
        if !records.is_empty() {
            self.inner
                .counters
                .wal_replays
                .fetch_add(records.len() as u64, Ordering::Relaxed);
            self.apply_wal_batches(&records)?;
            for t in self.pinned_tables() {
                self.absorb_published(&t);
            }
        }
        // laqy-lint: allow(guard-blocking-op) -- torn-tail truncation and appender open must be atomic with respect to ingest; `laqy.wal` is held across the open by design.
        *wal = Some(WalAppender::open_at(dir, replay.end)?);
        Ok(replay)
    }

    /// Crash recovery to one consistent `(snapshot generation, WAL
    /// position)` point: restore the sample store from the newest
    /// loadable snapshot in `snapshot_dir`, replay the WAL in `wal_dir`
    /// on top of the registered tables (idempotently; a torn tail is
    /// discarded and truncated), drop any stored sample whose watermark
    /// runs past the recovered tables (it would reference rows the log
    /// never made durable), catch the survivors up to the recovered
    /// watermarks, and leave the WAL enabled for further ingest.
    pub fn recover_with_wal(
        &self,
        snapshot_dir: &std::path::Path,
        wal_dir: &std::path::Path,
    ) -> std::result::Result<crate::persist::RecoveryReport, crate::persist::PersistError> {
        let mut wal = self.timed(|i| i.wal.lock());
        let (loaded, mut report) = crate::persist::recover_snapshot(snapshot_dir)?;
        self.timed(|i| i.store.replace_from(loaded));
        if report.fell_back() {
            self.inner
                .counters
                .snapshots_recovered
                .fetch_add(1, Ordering::Relaxed);
        }
        let (records, replay) = crate::wal::replay(wal_dir)?;
        report.wal_records = replay.records;
        report.wal_torn_tail = replay.torn_tail;
        self.inner
            .counters
            .wal_replays
            .fetch_add(replay.records, Ordering::Relaxed);
        self.apply_wal_batches(&records)?;
        // The snapshot may postdate the last durable batch (its samples
        // were cut from a table state whose rows never hit the log):
        // drop samples past each recovered watermark, then absorb the
        // rest forward. Either way the store lands exactly at the
        // recovered `(generation, WAL position)` point.
        for t in self.pinned_tables() {
            let w = t.row_watermark();
            for shard in 0..self.inner.store.num_shards() {
                self.timed(|i| i.store.write_shard(shard))
                    .drop_beyond(t.name(), w);
            }
            self.absorb_published(&t);
        }
        // laqy-lint: allow(guard-blocking-op) -- recovery must hold `laqy.wal` from replay through appender open: an ingest slipping in between would append at a position the replay never saw.
        *wal = Some(WalAppender::open_at(wal_dir, replay.end)?);
        Ok(report)
    }

    /// Apply replayed WAL batches to the catalog in log order. A batch
    /// is applied only when its table holds exactly `base_rows` rows;
    /// fewer is a gap (corrupt log), more means the batch is already
    /// reflected (idempotent replay over a newer snapshot).
    fn apply_wal_batches(
        &self,
        records: &[WalRecord],
    ) -> std::result::Result<(), crate::persist::PersistError> {
        use crate::persist::PersistError;
        for rec in records {
            let WalRecord::Batch {
                table,
                base_rows,
                columns,
            } = rec
            else {
                continue;
            };
            let current = {
                let catalog = self.catalog();
                let t = catalog.table(table).map_err(|e| {
                    PersistError::Corrupt(format!("wal batch for unknown table: {e}"))
                })?;
                Arc::clone(t)
            };
            let have = current.num_rows() as u64;
            if have > *base_rows {
                continue;
            }
            if have < *base_rows {
                return Err(PersistError::Corrupt(format!(
                    "wal gap: table `{table}` holds {have} rows, batch expects {base_rows}"
                )));
            }
            let next = current.append_batch(columns).map_err(|e| {
                PersistError::Corrupt(format!("wal batch failed to apply to `{table}`: {e}"))
            })?;
            self.timed(|i| i.catalog.write()).register(next);
        }
        Ok(())
    }

    /// Snapshot the catalog's current table versions (cheap `Arc`
    /// clones) so maintenance loops can run without holding the catalog
    /// lock.
    fn pinned_tables(&self) -> Vec<Arc<Table>> {
        let catalog = self.catalog();
        catalog
            .table_names()
            .iter()
            .filter_map(|n| catalog.table(n).ok().map(Arc::clone))
            .collect()
    }

    /// Offer a newly published table version's appended rows to every
    /// shard's stored samples (ascending shard order), folding the
    /// absorb telemetry into the service counters.
    fn absorb_published(&self, table: &Table) {
        let seed = self
            .inner
            .seed
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let mut rng = Lehmer64::new(seed);
        let mut report = crate::store::AbsorbReport::default();
        for shard in 0..self.inner.store.num_shards() {
            let shard_report = self
                .timed(|i| i.store.write_shard(shard))
                .absorb_appended(table, &mut rng);
            report.merge(&shard_report);
        }
        let c = &self.inner.counters;
        c.absorbed_samples
            .fetch_add(report.samples_absorbed, Ordering::Relaxed);
        c.absorbed_rows
            .fetch_add(report.rows_absorbed, Ordering::Relaxed);
    }

    /// Fault-injection hook: make in-flight sampling owners pause before
    /// the scan, widening the window in which concurrent identical
    /// queries dedup against them. `None` disables. Intended for stress
    /// tests and demos; leave unset in production use.
    pub fn set_sampling_hold(&self, hold: Option<Duration>) {
        let nanos = hold.map(|d| d.as_nanos() as u64).unwrap_or(0);
        self.inner
            .sampling_hold_nanos
            .store(nanos, Ordering::Relaxed);
    }

    /// Run a query through the lazy sampling flow against the shared
    /// store, with no resource limits.
    pub fn run(&self, query: &ApproxQuery) -> Result<ApproxResult> {
        self.run_with_budget(query, QueryBudget::unbounded())
    }

    /// Run a query under a [`QueryBudget`]. When the budget expires
    /// mid-scan, the answer is finalized from the partial sample with
    /// extrapolated values and widened confidence intervals — the
    /// degradation record rides in `result.stats.degraded` and the
    /// service's `degraded_answers` counter advances.
    pub fn run_with_budget(
        &self,
        query: &ApproxQuery,
        budget: QueryBudget,
    ) -> Result<ApproxResult> {
        let t_start = Instant::now();
        self.inner.counters.queries.fetch_add(1, Ordering::Relaxed);
        let token = budget.start();
        let mut attempts = 0u32;
        let result = loop {
            attempts += 1;
            match self.try_run(query, &token, t_start, attempts > MAX_PLAN_RETRIES) {
                Ok(Attempt::Done(result)) => break result,
                Ok(Attempt::Retry) => continue,
                Err(e) => {
                    if matches!(e, LaqyError::Injected(_) | LaqyError::WorkerPanic(_)) {
                        self.inner
                            .counters
                            .faults_injected
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            }
        };
        self.note_prune(&result.stats);
        if result.stats.degraded.is_some() {
            self.inner
                .counters
                .degraded_answers
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(*result)
    }

    /// Run with workload-oblivious online sampling (baseline): samples
    /// the full range, stores nothing, touches no shared state beyond a
    /// catalog read.
    pub fn run_online_oblivious(&self, query: &ApproxQuery) -> Result<ApproxResult> {
        let mut executor = self.executor();
        let catalog = self.catalog();
        executor.run_online(&catalog, query)
    }

    /// Run exactly (baseline). Returns engine results plus stats.
    pub fn run_exact(&self, query: &ApproxQuery) -> Result<(QueryResult, ExecStats)> {
        let executor = self.executor();
        let catalog = self.catalog();
        executor.run_exact(&catalog, query)
    }

    /// Pure filtered scan timing (floor).
    pub fn scan_floor(&self, query: &ApproxQuery) -> Result<ExecStats> {
        let executor = self.executor();
        let catalog = self.catalog();
        executor.scan_floor(&catalog, query)
    }

    /// Decode estimate group keys into display values.
    pub fn decode_keys(
        &self,
        query: &ApproxQuery,
        result: &ApproxResult,
    ) -> Result<Vec<Vec<Value>>> {
        let executor = self.executor();
        let catalog = self.catalog();
        executor.decode_keys(&catalog, query, &result.groups)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Acquire a lock via `f`, charging the wait to the contention
    /// counter.
    fn timed<'a, G>(&'a self, f: impl FnOnce(&'a ServiceInner) -> G) -> G {
        let t = Instant::now();
        let guard = f(&self.inner);
        self.inner
            .counters
            .lock_wait_nanos
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        guard
    }

    /// Fold one finished query's zone-map verdict counters into the
    /// service totals.
    fn note_prune(&self, stats: &ExecStats) {
        let c = &self.inner.counters;
        c.morsels_skipped
            .fetch_add(stats.morsels_skipped, Ordering::Relaxed);
        c.morsels_fast_pathed
            .fetch_add(stats.morsels_fast_pathed, Ordering::Relaxed);
        c.morsels_scanned
            .fetch_add(stats.morsels_scanned, Ordering::Relaxed);
        c.lane_covered_rows
            .fetch_add(stats.lane_covered_rows, Ordering::Relaxed);
    }

    /// A fresh per-query executor. Seeds advance through a service-wide
    /// atomic so concurrent queries draw distinct, reproducible streams.
    fn executor(&self) -> LaqyExecutor {
        let seed = self
            .inner
            .seed
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        LaqyExecutor::new(self.inner.threads, self.inner.policy, seed).with_mode(self.inner.mode)
    }

    fn hold_for_test(&self) {
        let nanos = self.inner.sampling_hold_nanos.load(Ordering::Relaxed);
        if nanos > 0 {
            std::thread::sleep(Duration::from_nanos(nanos));
        }
    }

    /// One optimistic plan-and-execute attempt.
    fn try_run(
        &self,
        query: &ApproxQuery,
        token: &CancelToken,
        t_start: Instant,
        force_online: bool,
    ) -> Result<Attempt> {
        let mut executor = self.executor();
        executor.set_budget_token(token.clone());
        // Pin one epoch for the whole attempt: every scan below runs
        // against this clone's frozen table versions (cheap `Arc`
        // clones), so a concurrent ingest can never tear this query
        // across epochs.
        let pinned: Catalog = self.catalog().clone();
        let descriptor = executor.descriptor(&pinned, query)?;
        let watermark = pinned.table(&query.plan.fact)?.row_watermark();
        let tighten = Predicates::on(query.range_column.clone(), IntervalSet::of(query.range));

        let (mut plan, snapshot) = if force_online {
            (LazyPlan::Online, Vec::new())
        } else {
            // Every reuse candidate shares the descriptor's fingerprint,
            // so planning only ever needs the home shard's read guard.
            let home = self.inner.store.shard_for(&descriptor);
            let store = self.timed(|i| i.store.read_shard(home));
            let plan = match self.inner.mode {
                ReuseMode::SingleSample => plan_lazy_capped(&store, &descriptor, 1, watermark),
                _ => plan_lazy(&store, &descriptor, watermark),
            };
            // Snapshot the selected samples' coverage *and* watermarks
            // under the same read guard the plan was made under:
            // run_coverage revalidates the store against this exact
            // snapshot before merging, so a concurrent absorb (which
            // moves a watermark) invalidates the plan instead of
            // double-counting tail rows.
            let snapshot = if let LazyPlan::CoverageReuse { samples, .. } = &plan {
                // Every planned sample is present under this same read
                // guard; if one were somehow missing the snapshot comes
                // up short, revalidation fails, and the attempt re-plans
                // instead of panicking on a hot path.
                samples
                    .iter()
                    .filter_map(|id| {
                        store
                            .peek(*id)
                            .map(|s| (s.descriptor.predicates.clone(), s.watermark))
                    })
                    .collect()
            } else {
                Vec::new()
            };
            (plan, snapshot)
        };
        if self.inner.mode == ReuseMode::FullMatchOnly {
            if let LazyPlan::CoverageReuse { .. } = plan {
                plan = LazyPlan::Online;
            }
        }
        let effective = plan.uncovered_fraction(&descriptor);

        match plan {
            LazyPlan::FullReuse { id } => {
                let pre = ExecStats {
                    effective_selectivity: 0.0,
                    reuse: Some(ReuseClass::Full),
                    ..Default::default()
                };
                match self.estimate_reused(
                    &mut executor,
                    id,
                    query,
                    &pinned,
                    &tighten,
                    pre,
                    t_start,
                )? {
                    Some(result) => {
                        self.inner
                            .counters
                            .full_hits
                            .fetch_add(1, Ordering::Relaxed);
                        Ok(Attempt::Done(Box::new(result)))
                    }
                    None => Ok(Attempt::Retry),
                }
            }
            LazyPlan::CoverageReuse {
                samples,
                fragments,
                tails,
            } => self.run_coverage(
                &mut executor,
                query,
                &descriptor,
                &pinned,
                watermark,
                samples,
                snapshot,
                fragments,
                tails,
                effective,
                &tighten,
                t_start,
            ),
            LazyPlan::Online => {
                self.run_online_absorbing(&mut executor, query, &descriptor, &pinned, t_start)
            }
        }
    }

    /// Coverage execution: one Δ-scan per residual fragment and per
    /// stale-sample append tail (each deduplicated against concurrent
    /// clients), a k-way merge with the selected stored samples, then
    /// estimation — with optimistic revalidation under the write lock.
    #[allow(clippy::too_many_arguments)]
    fn run_coverage(
        &self,
        executor: &mut LaqyExecutor,
        query: &ApproxQuery,
        descriptor: &SampleDescriptor,
        pinned: &Catalog,
        watermark: u64,
        samples: Vec<SampleId>,
        snapshot: Vec<(Predicates, u64)>,
        fragments: Vec<Predicates>,
        tails: Vec<TailFragment>,
        effective: f64,
        tighten: &Predicates,
        t_start: Instant,
    ) -> Result<Attempt> {
        let c = &self.inner.counters;
        let home = self.inner.store.shard_for(descriptor);
        // Non-blocking try-claim of every fragment and tail. Claims are
        // never held while waiting, so two clients with overlapping claim
        // sets cannot deadlock on each other. Keys hash to different
        // registry shards, so concurrent plans spanning many fragments
        // spread their claims instead of serializing on one mutex.
        let mut owned: Vec<(usize, InflightGuard<'_>)> = Vec::new();
        let mut owned_tails: Vec<(usize, InflightGuard<'_>)> = Vec::new();
        let mut busy: Vec<Arc<Inflight>> = Vec::new();
        for (i, frag) in fragments.iter().enumerate() {
            let key = format!("F|{}|{:?}", descriptor.fingerprint(), frag);
            match self.try_begin_inflight(&key) {
                Claim::Owner(guard) => owned.push((i, guard)),
                Claim::Busy(entry) => busy.push(entry),
            }
        }
        for (i, tail) in tails.iter().enumerate() {
            let key = format!(
                "T|{}|{:?}|{}",
                descriptor.fingerprint(),
                tail.id,
                tail.from_row
            );
            match self.try_begin_inflight(&key) {
                Claim::Owner(guard) => owned_tails.push((i, guard)),
                Claim::Busy(entry) => busy.push(entry),
            }
        }
        if !owned.is_empty() || !owned_tails.is_empty() {
            self.hold_for_test();
        }

        // Scan the fragments and tails we own — lock-free, the expensive
        // part — against the pinned epoch. The bool marks a *clean*
        // (full-coverage) sample: only those may be absorbed into the
        // shared store, since a degraded sample would overclaim coverage.
        let mut stats = ExecStats::default();
        // Per owned fragment: index, full-region sample (absorbable),
        // clean flag, and the boundary sample for hybrid estimation.
        let mut scanned: Vec<(usize, _, bool, Option<_>)> = Vec::with_capacity(owned.len());
        // Per owned tail: index, tail Δ sample, clean flag. Tail scans
        // push the sample's own predicates down with the row floor at
        // `from_row`, so they only visit the appended rows.
        let mut tail_scanned: Vec<(usize, _, bool)> = Vec::with_capacity(owned_tails.len());
        let mut exact_mass = crate::estimate::ExactMass::new();
        let mut fragment_coverage = 0.0f64;
        let mut fragments_skipped = 0u64;
        let schema = {
            let (_, schema) = executor.payload_schema(pinned, query)?;
            for (i, _) in &owned {
                if executor.budget().expired() {
                    // Budget already gone: skip the fragment outright; the
                    // blended degradation below accounts for the hole.
                    fragments_skipped += 1;
                    continue;
                }
                let frag = &fragments[*i];
                let ranges = frag
                    .get(&query.range_column)
                    .cloned()
                    .unwrap_or_else(|| IntervalSet::of(query.range));
                let extra = fragment_extra_predicate(frag, &query.range_column);
                let run =
                    executor.sample_pipeline_hybrid(pinned, query, &ranges, &extra, true, 0)?;
                fragment_coverage += run.stats.degraded.map_or(1.0, |d| d.coverage);
                let clean = run.stats.degraded.is_none();
                stats.accumulate(&run.stats);
                exact_mass.merge(&run.exact);
                scanned.push((*i, run.sample, clean, run.boundary));
            }
            for (i, _) in &owned_tails {
                if executor.budget().expired() {
                    fragments_skipped += 1;
                    continue;
                }
                let tail = &tails[*i];
                let ranges = tail
                    .predicates
                    .get(&query.range_column)
                    .cloned()
                    .unwrap_or_else(|| IntervalSet::of(query.range));
                let extra = fragment_extra_predicate(&tail.predicates, &query.range_column);
                // No lane harvest (`hybrid = false`): lanes span whole
                // blocks from row 0 and would double-count below the
                // floor.
                let run = executor.sample_pipeline_hybrid(
                    pinned,
                    query,
                    &ranges,
                    &extra,
                    false,
                    tail.from_row as usize,
                )?;
                fragment_coverage += run.stats.degraded.map_or(1.0, |d| d.coverage);
                let clean = run.stats.degraded.is_none();
                stats.accumulate(&run.stats);
                tail_scanned.push((*i, run.sample, clean));
            }
            schema
        };
        c.delta_scans.fetch_add(
            (scanned.len() + tail_scanned.len()) as u64,
            Ordering::Relaxed,
        );
        c.fragments_scanned.fetch_add(
            (scanned.len() + tail_scanned.len()) as u64,
            Ordering::Relaxed,
        );
        stats.fragments_scanned = (scanned.len() + tail_scanned.len()) as u64;

        if !busy.is_empty() {
            // Concurrent clients are scanning the rest of our fragments.
            // Keep our own scan work — each fragment sample is a valid
            // sample of its box — then release our claims, wait
            // guard-free for the others, and re-plan (normally upgrading
            // to full or pure-merge reuse).
            if scanned.iter().any(|(_, _, clean, _)| *clean)
                || tail_scanned.iter().any(|(_, _, clean)| *clean)
            {
                let mut store = self.timed(|i| i.store.write_shard(home));
                for (i, s, clean, _) in scanned {
                    if !clean {
                        continue;
                    }
                    let mut frag_desc = descriptor.clone();
                    frag_desc.predicates = fragments[i].clone();
                    store.absorb(frag_desc, schema.clone(), s, watermark, executor.rng_mut());
                }
                for (i, s, clean) in tail_scanned {
                    if !clean {
                        continue;
                    }
                    // Safe even against a concurrent absorber: the
                    // from_row guard rejects a replayed or overlapping
                    // tail instead of double-counting it.
                    let tail = &tails[i];
                    store.absorb_tail(tail.id, s, tail.from_row, watermark, executor.rng_mut());
                }
            }
            c.fragments_deduped
                .fetch_add(busy.len() as u64, Ordering::Relaxed);
            c.merges_deduped.fetch_add(1, Ordering::Relaxed);
            drop(owned);
            for entry in busy {
                Self::wait_inflight(&entry);
            }
            return Ok(Attempt::Retry);
        }

        // All fragments and tails are ours: fold the per-scan coverage
        // into one query-level degradation record (None when every scan
        // ran to completion).
        let degradation = blended_degradation(
            stats.degraded.take(),
            fragment_coverage,
            fragments.len() + tails.len(),
            fragments_skipped,
            effective,
        );
        stats.degraded = degradation;

        // Merge under the write lock, after revalidating that every
        // selected sample still has exactly the coverage *and* the
        // watermark the plan was made against (a competing merge,
        // eviction, or tail absorb would otherwise double-count rows or
        // lose the sample entirely).
        let t_merge = Instant::now();
        let merged = {
            let mut store = self.timed(|i| i.store.write_shard(home));
            // Revalidate and collect inputs in one pass: any sample that
            // vanished, changed coverage, or moved its watermark
            // invalidates the whole plan.
            let mut inputs = Vec::with_capacity(samples.len() + scanned.len() + tail_scanned.len());
            let mut valid = samples.len() == snapshot.len();
            if valid {
                for (id, snap) in samples.iter().zip(&snapshot) {
                    match store.peek(*id) {
                        Some(s) if s.descriptor.predicates == snap.0 && s.watermark == snap.1 => {
                            inputs.push(s.sample.clone())
                        }
                        _ => {
                            valid = false;
                            break;
                        }
                    }
                }
            }
            if valid {
                // Hybrid estimation needs a second merge over boundary
                // samples (covered rows excluded) so the exact lane mass
                // is not double counted; the full merge is what answers
                // degraded queries and feeds absorption. Tail scans never
                // harvest lanes, so the full tail sample is its own
                // boundary.
                let mut est_inputs = (!exact_mass.is_empty()).then(|| inputs.clone());
                inputs.extend(scanned.iter().map(|(_, s, _, _)| s.clone()));
                inputs.extend(tail_scanned.iter().map(|(_, s, _)| s.clone()));
                if let Some(ei) = est_inputs.as_mut() {
                    for (_, s, _, boundary) in &scanned {
                        ei.push(boundary.clone().unwrap_or_else(|| s.clone()));
                    }
                    ei.extend(tail_scanned.iter().map(|(_, s, _)| s.clone()));
                }
                let merged = merge_stratified_k(inputs, executor.rng_mut());
                let merged_est = est_inputs.map(|ei| merge_stratified_k(ei, executor.rng_mut()));
                if stats.degraded.is_none() {
                    // Sample-as-you-query absorption. With no tails in
                    // play: consolidate when the union region is itself a
                    // predicate box, else absorb the fragments
                    // individually (mirrors the single-owner executor's
                    // coverage arm). With tails: catch each stale sample
                    // up via its tail Δ first — union replacement would
                    // throw away per-sample watermark bookkeeping mid
                    // catch-up. Every scan is clean here — a degraded one
                    // would have set `stats.degraded`.
                    let constituents: Vec<&Predicates> = snapshot
                        .iter()
                        .map(|(p, _)| p)
                        .chain(fragments.iter())
                        .collect();
                    if tails.is_empty() {
                        if let Some(union_preds) = union_single_column(&constituents) {
                            for &id in &samples {
                                store.remove(id);
                            }
                            let mut union_desc = descriptor.clone();
                            union_desc.predicates = union_preds;
                            store.absorb(
                                union_desc,
                                schema.clone(),
                                merged.clone(),
                                watermark,
                                executor.rng_mut(),
                            );
                        } else {
                            for (i, s, _, _) in scanned {
                                let mut frag_desc = descriptor.clone();
                                frag_desc.predicates = fragments[i].clone();
                                store.absorb(
                                    frag_desc,
                                    schema.clone(),
                                    s,
                                    watermark,
                                    executor.rng_mut(),
                                );
                            }
                        }
                    } else {
                        for (i, s, _) in tail_scanned {
                            let tail = &tails[i];
                            store.absorb_tail(
                                tail.id,
                                s,
                                tail.from_row,
                                watermark,
                                executor.rng_mut(),
                            );
                        }
                        for (i, s, _, _) in scanned {
                            let mut frag_desc = descriptor.clone();
                            frag_desc.predicates = fragments[i].clone();
                            store.absorb(
                                frag_desc,
                                schema.clone(),
                                s,
                                watermark,
                                executor.rng_mut(),
                            );
                        }
                    }
                } else {
                    // Degraded query: the merged sample answers it, but
                    // only clean samples may enter the store — and never
                    // a consolidated union, which would claim coverage
                    // the budget cut short.
                    for (i, s, clean, _) in scanned {
                        if !clean {
                            continue;
                        }
                        let mut frag_desc = descriptor.clone();
                        frag_desc.predicates = fragments[i].clone();
                        store.absorb(frag_desc, schema.clone(), s, watermark, executor.rng_mut());
                    }
                    for (i, s, clean) in tail_scanned {
                        if !clean {
                            continue;
                        }
                        let tail = &tails[i];
                        store.absorb_tail(tail.id, s, tail.from_row, watermark, executor.rng_mut());
                    }
                }
                Some((merged, merged_est))
            } else {
                // Stale plan: keep the (clean) scan work anyway, then
                // re-plan. Tail absorbs stay safe against whatever
                // invalidated the plan — the from_row guard rejects a
                // tail whose sample moved on.
                for (i, s, clean, _) in scanned {
                    if !clean {
                        continue;
                    }
                    let mut frag_desc = descriptor.clone();
                    frag_desc.predicates = fragments[i].clone();
                    store.absorb(frag_desc, schema.clone(), s, watermark, executor.rng_mut());
                }
                for (i, s, clean) in tail_scanned {
                    if !clean {
                        continue;
                    }
                    let tail = &tails[i];
                    store.absorb_tail(tail.id, s, tail.from_row, watermark, executor.rng_mut());
                }
                None
            }
        };
        stats.merge = t_merge.elapsed();
        let Some((merged, merged_est)) = merged else {
            c.merge_retries.fetch_add(1, Ordering::Relaxed);
            return Ok(Attempt::Retry);
        };

        let t_est = Instant::now();
        let opts = crate::estimate::EstimateOptions {
            tighten: Some(tighten),
            exact: (!exact_mass.is_empty()).then_some(&exact_mass),
            ..Default::default()
        };
        let mut groups = crate::estimate::estimate(
            merged_est.as_ref().unwrap_or(&merged),
            &schema,
            &query.plan.aggs,
            &opts,
        )?;
        if let Some(deg) = &stats.degraded {
            apply_degradation(&mut groups, &query.plan.aggs, deg);
        }
        let mut support = support_from_groups(&groups, &self.inner.policy);
        stats.estimate += t_est.elapsed();
        stats.effective_selectivity = effective;
        stats.fragments_reused = samples.len() as u64;
        stats.reuse = Some(ReuseClass::Partial);
        c.fragments_reused
            .fetch_add(samples.len() as u64, Ordering::Relaxed);

        if self.inner.policy.conservative && stats.degraded.is_none() && !support.fully_supported()
        {
            let refined =
                executor.refine_support(pinned, query, &mut groups, &mut support, &mut stats)?;
            if !refined {
                c.support_fallbacks.fetch_add(1, Ordering::Relaxed);
                return self.run_online_absorbing(executor, query, descriptor, pinned, t_start);
            }
        }
        stats.total = t_start.elapsed();
        c.partial_merges.fetch_add(1, Ordering::Relaxed);
        Ok(Attempt::Done(Box::new(ApproxResult {
            groups,
            stats,
            support,
        })))
    }

    /// Estimate a query from stored sample `id` (full or freshly merged
    /// partial reuse), applying the conservative support fallback.
    /// Returns `None` when the sample vanished and the caller must
    /// re-plan.
    #[allow(clippy::too_many_arguments)]
    fn estimate_reused(
        &self,
        executor: &mut LaqyExecutor,
        id: SampleId,
        query: &ApproxQuery,
        pinned: &Catalog,
        tighten: &Predicates,
        mut stats: ExecStats,
        t_start: Instant,
    ) -> Result<Option<ApproxResult>> {
        let estimated = {
            let store = self.timed(|i| i.store.read_shard(i.store.shard_for_id(id)));
            if store.peek(id).is_none() {
                None
            } else {
                Some(executor.estimate_stored(&store, id, query, tighten)?)
            }
        };
        let Some((mut groups, mut support, est_time)) = estimated else {
            return Ok(None);
        };
        stats.estimate += est_time;
        if self.inner.policy.conservative && !support.fully_supported() {
            let refined =
                executor.refine_support(pinned, query, &mut groups, &mut support, &mut stats)?;
            if !refined {
                // Low support not recoverable per-stratum: validate with a
                // full online run, as the single-owner path does.
                self.inner
                    .counters
                    .support_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
                let descriptor = executor.descriptor(pinned, query)?;
                return match self.run_online_absorbing(
                    executor,
                    query,
                    &descriptor,
                    pinned,
                    t_start,
                )? {
                    Attempt::Done(result) => Ok(Some(*result)),
                    Attempt::Retry => Ok(None),
                };
            }
        }
        stats.total = t_start.elapsed();
        Ok(Some(ApproxResult {
            groups,
            stats,
            support,
        }))
    }

    /// Full online sampling + absorb into the shared store, deduplicating
    /// identical concurrent misses.
    fn run_online_absorbing(
        &self,
        executor: &mut LaqyExecutor,
        query: &ApproxQuery,
        descriptor: &crate::descriptor::SampleDescriptor,
        pinned: &Catalog,
        t_start: Instant,
    ) -> Result<Attempt> {
        let key = format!("O|{}|{:?}", descriptor.fingerprint(), descriptor.predicates);
        let Some(_guard) = self.begin_inflight(&key) else {
            self.inner
                .counters
                .online_deduped
                .fetch_add(1, Ordering::Relaxed);
            return Ok(Attempt::Retry);
        };
        self.hold_for_test();

        let ranges = IntervalSet::of(query.range);
        let (sample, mut stats, schema, groups, support) = {
            let run = executor.sample_pipeline_hybrid(
                pinned,
                query,
                &ranges,
                &Predicate::True,
                true,
                0,
            )?;
            let (_, schema) = executor.payload_schema(pinned, query)?;
            let t_est = Instant::now();
            // Hybrid estimation: boundary sample plus exact lane mass
            // when harvested; the full-region sample is what the store
            // absorbs and what the support check inspects.
            let opts = crate::estimate::EstimateOptions {
                exact: (!run.exact.is_empty()).then_some(&run.exact),
                ..Default::default()
            };
            let est_sample = run.boundary.as_ref().unwrap_or(&run.sample);
            let mut groups =
                crate::estimate::estimate(est_sample, &schema, &query.plan.aggs, &opts)?;
            if let Some(deg) = &run.stats.degraded {
                apply_degradation(&mut groups, &query.plan.aggs, deg);
            }
            let support =
                crate::support::check_support(&run.sample, &schema, None, &self.inner.policy)?;
            let mut stats = run.stats;
            stats.estimate = t_est.elapsed();
            (run.sample, stats, schema, groups, support)
        };
        self.inner
            .counters
            .online_scans
            .fetch_add(1, Ordering::Relaxed);

        // A degraded sample never enters the shared store: its descriptor
        // would claim coverage the budget cut short, poisoning every
        // future reuse decision.
        if stats.degraded.is_none() {
            let watermark = pinned
                .table(&query.plan.fact)
                .map(|t| t.row_watermark())
                .unwrap_or(0);
            let home = self.inner.store.shard_for(descriptor);
            let mut store = self.timed(|i| i.store.write_shard(home));
            store.absorb(
                descriptor.clone(),
                schema,
                sample,
                watermark,
                executor.rng_mut(),
            );
        }
        self.inner
            .counters
            .online_runs
            .fetch_add(1, Ordering::Relaxed);

        stats.effective_selectivity = 1.0;
        stats.reuse = Some(ReuseClass::Online);
        stats.total = t_start.elapsed();
        Ok(Attempt::Done(Box::new(ApproxResult {
            groups,
            stats,
            support,
        })))
    }

    /// Claim the in-flight sampling slot for `key` without blocking.
    ///
    /// Returns [`Claim::Owner`] with a guard (releases waiters on drop,
    /// including on error paths) if this thread now owns the slot, or
    /// [`Claim::Busy`] with the entry to wait on later — after dropping
    /// any claims of our own, so overlapping claim sets never deadlock.
    fn try_begin_inflight(&self, key: &str) -> Claim<'_> {
        let shard = self.inner.store.registry_shard(key);
        let mut registry = self.inner.inflight[shard].lock();
        match registry.get(key) {
            Some(entry) => Claim::Busy(Arc::clone(entry)),
            None => {
                registry.insert(key.to_string(), Arc::new(Inflight::new()));
                Claim::Owner(InflightGuard {
                    inner: &self.inner,
                    shard,
                    key: key.to_string(),
                })
            }
        }
    }

    /// Block until a concurrent owner's in-flight operation completes.
    /// Must be called guard-free: no registry, store, or catalog lock and
    /// no in-flight claims held.
    fn wait_inflight(entry: &Inflight) {
        let mut done = entry.done.lock();
        while !*done {
            entry.cv.wait(&mut done);
        }
    }

    /// Claim or wait on the in-flight sampling slot for `key`.
    ///
    /// Returns `Some(guard)` if this thread is now the owner, or `None`
    /// after having waited for a concurrent owner to finish. No store,
    /// catalog, or registry lock is held while waiting.
    fn begin_inflight(&self, key: &str) -> Option<InflightGuard<'_>> {
        match self.try_begin_inflight(key) {
            Claim::Owner(guard) => Some(guard),
            Claim::Busy(entry) => {
                Self::wait_inflight(&entry);
                None
            }
        }
    }
}

/// Outcome of a non-blocking in-flight claim
/// ([`LaqyService::try_begin_inflight`]).
enum Claim<'a> {
    /// This thread owns the slot; the guard releases waiters on drop.
    Owner(InflightGuard<'a>),
    /// Another client owns the slot. Wait on the entry with
    /// [`LaqyService::wait_inflight`] — only after releasing claims of
    /// your own.
    Busy(Arc<Inflight>),
}

/// Releases an in-flight slot on drop, waking all waiters — also on
/// panic or error unwinding, so waiters can never hang on a dead owner.
struct InflightGuard<'a> {
    inner: &'a ServiceInner,
    shard: usize,
    key: String,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let entry = self.inner.inflight[self.shard].lock().remove(&self.key);
        if let Some(entry) = entry {
            *entry.done.lock() = true;
            entry.cv.notify_all();
        }
    }
}

#[allow(dead_code)]
fn _assert_service_is_shareable() {
    fn check<T: Send + Sync + Clone>() {}
    check::<LaqyService>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use laqy_engine::{AggSpec, ColRef, Column, QueryPlan};

    use crate::interval::Interval;

    fn catalog(n: i64) -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                "t",
                vec![
                    ("key".into(), Column::Int64((0..n).collect())),
                    ("g".into(), Column::Int64((0..n).map(|i| i % 4).collect())),
                    ("v".into(), Column::Int64((0..n).map(|i| i % 100).collect())),
                ],
            )
            .unwrap(),
        );
        cat
    }

    fn query(lo: i64, hi: i64) -> ApproxQuery {
        ApproxQuery {
            plan: QueryPlan {
                fact: "t".into(),
                predicate: Predicate::True,
                joins: vec![],
                group_by: vec![ColRef::fact("g")],
                aggs: vec![AggSpec::sum("v"), AggSpec::count()],
            },
            range_column: "key".into(),
            range: Interval::new(lo, hi),
            k: 64,
        }
    }

    #[test]
    fn reuse_arms_and_counters_line_up() {
        let service = LaqyService::with_config(
            catalog(4000),
            SessionConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let a = service.run(&query(0, 1999)).unwrap();
        assert_eq!(a.stats.reuse, Some(ReuseClass::Online));
        let b = service.run(&query(500, 1500)).unwrap();
        assert_eq!(b.stats.reuse, Some(ReuseClass::Full));
        let c = service.run(&query(0, 2999)).unwrap();
        assert_eq!(c.stats.reuse, Some(ReuseClass::Partial));
        let stats = service.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.online_runs, 1);
        assert_eq!(stats.full_hits, 1);
        assert_eq!(stats.partial_merges, 1);
        assert_eq!(stats.delta_scans, 1);
        assert_eq!(stats.merges_deduped, 0);
    }

    #[test]
    fn clones_share_the_store() {
        let service = LaqyService::with_config(
            catalog(2000),
            SessionConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let other = service.clone();
        service.run(&query(0, 999)).unwrap();
        assert_eq!(other.store().len(), 1);
        let r = other.run(&query(100, 800)).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
    }

    #[test]
    fn oblivious_runs_do_not_touch_the_store() {
        let service = LaqyService::with_config(
            catalog(2000),
            SessionConfig {
                threads: 1,
                ..Default::default()
            },
        );
        service.run_online_oblivious(&query(0, 999)).unwrap();
        assert!(service.store().is_empty());
        assert_eq!(service.stats().online_runs, 0);
    }

    /// Column batch continuing `catalog(n)`'s value patterns for rows
    /// `[from, from + rows)`.
    fn batch(from: i64, rows: i64) -> Vec<(String, Column)> {
        vec![
            ("key".into(), Column::Int64((from..from + rows).collect())),
            (
                "g".into(),
                Column::Int64((from..from + rows).map(|i| i % 4).collect()),
            ),
            (
                "v".into(),
                Column::Int64((from..from + rows).map(|i| i % 100).collect()),
            ),
        ]
    }

    #[test]
    fn ingest_publishes_next_epoch_and_absorbs_stored_samples() {
        let service = LaqyService::with_config(
            catalog(2000),
            SessionConfig {
                threads: 1,
                ..Default::default()
            },
        );
        // Warm the store with a range reaching past the current rows, so
        // appended keys land inside the sample's own population.
        service.run(&query(0, 2499)).unwrap();
        let before = service.store();
        let (_, s) = before.iter().next().unwrap();
        assert_eq!(s.watermark, 2000);

        let old_epoch = service.catalog().table("t").unwrap().epoch();
        assert_eq!(service.ingest("t", batch(2000, 500)).unwrap(), 2500);
        {
            let catalog = service.catalog();
            let t = catalog.table("t").unwrap();
            assert_eq!(t.num_rows(), 2500);
            assert_eq!(t.epoch(), old_epoch + 1);
        }
        // The stored sample absorbed the appended rows in place — no
        // eviction, watermark caught up to the new epoch.
        let after = service.store();
        let (_, s) = after.iter().next().unwrap();
        assert_eq!(s.watermark, 2500);
        let stats = service.stats();
        assert_eq!(stats.ingest_batches, 1);
        assert_eq!(stats.ingest_rows, 500);
        assert_eq!(stats.absorbed_samples, 1);
        assert_eq!(stats.absorbed_rows, 500);
        assert_eq!(stats.wal_appends, 0); // WAL not enabled

        // The caught-up sample still answers queries over its original
        // region as a plain full hit.
        let r = service.run(&query(500, 1500)).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
    }

    #[test]
    fn ingest_rejects_malformed_batches_without_publishing() {
        let service = LaqyService::new(catalog(100));
        let bad = vec![("key".into(), Column::Int64(vec![1, 2, 3]))];
        assert!(service.ingest("t", bad).is_err());
        assert!(service.ingest("missing", batch(0, 4)).is_err());
        assert_eq!(service.catalog().table("t").unwrap().num_rows(), 100);
        assert_eq!(service.stats().ingest_batches, 0);
    }

    #[test]
    fn wal_recovery_replays_ingest_to_a_consistent_point() {
        let dir = std::env::temp_dir().join(format!("laqy_svc_wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal_dir = dir.join("wal");
        let snap_dir = dir.join("snap");
        std::fs::create_dir_all(&wal_dir).unwrap();
        std::fs::create_dir_all(&snap_dir).unwrap();

        let service = LaqyService::with_config(
            catalog(2000),
            SessionConfig {
                threads: 1,
                ..Default::default()
            },
        );
        service.enable_wal(&wal_dir).unwrap();
        service.run(&query(0, 1999)).unwrap();
        service.ingest("t", batch(2000, 300)).unwrap();
        service.save_snapshot(&snap_dir).unwrap();
        service.ingest("t", batch(2300, 200)).unwrap();
        let surviving = service.store();

        // "Crash": a fresh service holding only the pre-ingest base
        // catalog recovers from snapshot + WAL.
        let recovered = LaqyService::with_config(
            catalog(2000),
            SessionConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let report = recovered.recover_with_wal(&snap_dir, &wal_dir).unwrap();
        assert!(report.wal_records >= 2);
        assert!(!report.wal_torn_tail);
        assert_eq!(recovered.catalog().table("t").unwrap().num_rows(), 2500);
        // The recovered store landed on the recovered watermark: samples
        // caught up to row 2500, same as the surviving service.
        let store = recovered.store();
        let (_, r) = store.iter().next().unwrap();
        let (_, s) = surviving.iter().next().unwrap();
        assert_eq!(r.watermark, 2500);
        assert_eq!(r.watermark, s.watermark);
        assert!(recovered.stats().wal_replays >= 2);
        // And the recovered WAL stays usable for further durable ingest.
        recovered.ingest("t", batch(2500, 100)).unwrap();
        assert_eq!(recovered.catalog().table("t").unwrap().num_rows(), 2600);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inflight_guard_releases_on_drop() {
        let service = LaqyService::new(catalog(100));
        {
            let guard = service.begin_inflight("k");
            assert!(guard.is_some());
        }
        // Slot free again: claiming succeeds instead of waiting.
        assert!(service.begin_inflight("k").is_some());
    }
}
