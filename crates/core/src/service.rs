//! The concurrent, shared-store LAQy service.
//!
//! [`LaqyService`] is a cheaply cloneable (`Arc`-based), `Send + Sync`
//! handle wrapping one catalog and one concurrency-safe [`SampleStore`],
//! so many client threads can run approximate queries against a single
//! shared sample store — the multi-tenant AQP-middleware deployment model
//! (VerdictDB-style service, PilotDB-style concurrent ad-hoc workloads).
//! Sample *reuse* (the paper's central asset) compounds across clients:
//! one tenant's Δ-merge widens coverage for everyone.
//!
//! Concurrency design:
//!
//! - **Read path** (classification + full-reuse estimation) runs under a
//!   `parking_lot::RwLock` *read* guard. LRU touches are relaxed atomic
//!   stores ([`SampleStore::get`]), so readers never take the write lock.
//! - **Write path** (absorb / Δ-merge / eviction) takes the write lock
//!   only around the in-memory merge — never around the sampling scan,
//!   which is the expensive part and runs lock-free.
//! - **In-flight dedup registry**: when two clients concurrently miss on
//!   the same uncovered interval of the same sample (or the same fully
//!   uncovered query), only the first performs the Δ/online sampling
//!   scan; the rest wait on a condvar and then re-classify, typically
//!   upgrading to full reuse. This bounds the sampling work per uncovered
//!   region at one scan regardless of client count.
//! - **Optimistic revalidation**: a Δ-merge is validated under the write
//!   lock (sample still present, coverage still disjoint from the Δ).
//!   If another client's merge or an eviction invalidated it, the Δ
//!   sample is discarded — never double-counted — and the query retries,
//!   degrading to online sampling after a bounded number of attempts.
//!
//! Lock ordering: the registry mutex, the store lock, and the catalog
//! lock are never held while waiting on an in-flight entry, and the
//! store write lock never nests inside a catalog or registry acquisition
//! made by the same operation, so the service is deadlock-free by
//! construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use laqy_engine::{Catalog, Predicate, QueryResult, Table, Value};
use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard};

use crate::descriptor::Predicates;
use crate::executor::{ApproxQuery, ApproxResult, LaqyError, LaqyExecutor, Result, ReuseMode};
use crate::interval::IntervalSet;
use crate::lazy::{plan_lazy, LazyPlan};
use crate::session::SessionConfig;
use crate::stats::{ExecStats, ReuseClass, ServiceStats};
use crate::store::{SampleId, SampleStore};

/// Attempts before a query stops chasing invalidated reuse plans and
/// forces online sampling. Each retry means another client changed the
/// store meanwhile, so contention this deep is already pathological.
const MAX_PLAN_RETRIES: u32 = 16;

/// One in-flight sampling operation; waiters block on `cv` until the
/// owner completes (successfully or not) and then re-plan.
struct Inflight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Inflight {
    fn new() -> Self {
        Self {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }
}

/// Monotonic service-wide counters (all relaxed; they are telemetry, not
/// synchronization).
#[derive(Default)]
struct Counters {
    queries: AtomicU64,
    full_hits: AtomicU64,
    partial_merges: AtomicU64,
    online_runs: AtomicU64,
    delta_scans: AtomicU64,
    online_scans: AtomicU64,
    merges_deduped: AtomicU64,
    online_deduped: AtomicU64,
    merge_retries: AtomicU64,
    support_fallbacks: AtomicU64,
    lock_wait_nanos: AtomicU64,
    morsels_skipped: AtomicU64,
    morsels_fast_pathed: AtomicU64,
    morsels_scanned: AtomicU64,
}

struct ServiceInner {
    catalog: RwLock<Catalog>,
    store: RwLock<SampleStore>,
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    counters: Counters,
    threads: usize,
    policy: crate::support::SupportPolicy,
    mode: ReuseMode,
    seed: AtomicU64,
    /// Fault-injection hook (nanoseconds; 0 = off): owners of an
    /// in-flight sampling operation sleep this long before scanning,
    /// widening the race window so tests can deterministically exercise
    /// the dedup/piggyback path.
    sampling_hold_nanos: AtomicU64,
}

/// A shared, thread-safe LAQy query service.
///
/// Clone the handle freely — all clones operate on the same catalog,
/// sample store, and counters. See the crate-level example.
pub struct LaqyService {
    inner: Arc<ServiceInner>,
}

impl Clone for LaqyService {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Outcome of one plan-and-execute attempt.
enum Attempt {
    Done(Box<ApproxResult>),
    /// The store changed under us (eviction, competing merge, or an
    /// in-flight wait completed): re-plan from scratch.
    Retry,
}

impl LaqyService {
    /// Create a service with default configuration.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_config(catalog, SessionConfig::default())
    }

    /// Create a service with explicit configuration.
    pub fn with_config(catalog: Catalog, config: SessionConfig) -> Self {
        let store = match config.store_budget_bytes {
            Some(b) => SampleStore::with_budget(b),
            None => SampleStore::new(),
        };
        Self {
            inner: Arc::new(ServiceInner {
                catalog: RwLock::new(catalog),
                store: RwLock::new(store),
                inflight: Mutex::new(HashMap::new()),
                counters: Counters::default(),
                threads: config.threads,
                policy: config.policy,
                mode: config.reuse_mode,
                seed: AtomicU64::new(config.seed),
                sampling_hold_nanos: AtomicU64::new(0),
            }),
        }
    }

    /// Register (or replace) a table. Waits for in-progress queries'
    /// catalog reads to drain. Samples built from a replaced table keep
    /// their old contents until evicted or cleared (same caveat as the
    /// single-owner session).
    pub fn register_table(&self, table: Table) {
        self.inner.catalog.write().register(table);
    }

    /// Shared read access to the catalog.
    pub fn catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        self.timed(|i| i.catalog.read())
    }

    /// Shared read access to the sample store (inspection / tests).
    pub fn store(&self) -> RwLockReadGuard<'_, SampleStore> {
        self.timed(|i| i.store.read())
    }

    /// Snapshot of the per-service counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            queries: c.queries.load(Ordering::Relaxed),
            full_hits: c.full_hits.load(Ordering::Relaxed),
            partial_merges: c.partial_merges.load(Ordering::Relaxed),
            online_runs: c.online_runs.load(Ordering::Relaxed),
            delta_scans: c.delta_scans.load(Ordering::Relaxed),
            online_scans: c.online_scans.load(Ordering::Relaxed),
            merges_deduped: c.merges_deduped.load(Ordering::Relaxed),
            online_deduped: c.online_deduped.load(Ordering::Relaxed),
            merge_retries: c.merge_retries.load(Ordering::Relaxed),
            support_fallbacks: c.support_fallbacks.load(Ordering::Relaxed),
            lock_wait_nanos: c.lock_wait_nanos.load(Ordering::Relaxed),
            morsels_skipped: c.morsels_skipped.load(Ordering::Relaxed),
            morsels_fast_pathed: c.morsels_fast_pathed.load(Ordering::Relaxed),
            morsels_scanned: c.morsels_scanned.load(Ordering::Relaxed),
        }
    }

    /// Clear all materialized samples (cold-start experiments).
    pub fn clear_samples(&self) {
        self.timed(|i| i.store.write()).clear();
    }

    /// Serialize the sample store (offline-sample persistence).
    pub fn export_samples(&self) -> Vec<u8> {
        crate::persist::save_store(&self.store())
    }

    /// Replace the sample store from a snapshot produced by
    /// [`LaqyService::export_samples`].
    pub fn import_samples(&self, bytes: &[u8]) -> Result<()> {
        let loaded =
            crate::persist::load_store(bytes).map_err(|e| LaqyError::Unsupported(e.to_string()))?;
        *self.timed(|i| i.store.write()) = loaded;
        Ok(())
    }

    /// Fault-injection hook: make in-flight sampling owners pause before
    /// the scan, widening the window in which concurrent identical
    /// queries dedup against them. `None` disables. Intended for stress
    /// tests and demos; leave unset in production use.
    pub fn set_sampling_hold(&self, hold: Option<Duration>) {
        let nanos = hold.map(|d| d.as_nanos() as u64).unwrap_or(0);
        self.inner
            .sampling_hold_nanos
            .store(nanos, Ordering::Relaxed);
    }

    /// Run a query through the lazy sampling flow against the shared
    /// store.
    pub fn run(&self, query: &ApproxQuery) -> Result<ApproxResult> {
        let t_start = Instant::now();
        self.inner.counters.queries.fetch_add(1, Ordering::Relaxed);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.try_run(query, t_start, attempts > MAX_PLAN_RETRIES)? {
                Attempt::Done(result) => {
                    self.note_prune(&result.stats);
                    return Ok(*result);
                }
                Attempt::Retry => continue,
            }
        }
    }

    /// Run with workload-oblivious online sampling (baseline): samples
    /// the full range, stores nothing, touches no shared state beyond a
    /// catalog read.
    pub fn run_online_oblivious(&self, query: &ApproxQuery) -> Result<ApproxResult> {
        let mut executor = self.executor();
        let catalog = self.catalog();
        executor.run_online(&catalog, query)
    }

    /// Run exactly (baseline). Returns engine results plus stats.
    pub fn run_exact(&self, query: &ApproxQuery) -> Result<(QueryResult, ExecStats)> {
        let executor = self.executor();
        let catalog = self.catalog();
        executor.run_exact(&catalog, query)
    }

    /// Pure filtered scan timing (floor).
    pub fn scan_floor(&self, query: &ApproxQuery) -> Result<ExecStats> {
        let executor = self.executor();
        let catalog = self.catalog();
        executor.scan_floor(&catalog, query)
    }

    /// Decode estimate group keys into display values.
    pub fn decode_keys(
        &self,
        query: &ApproxQuery,
        result: &ApproxResult,
    ) -> Result<Vec<Vec<Value>>> {
        let executor = self.executor();
        let catalog = self.catalog();
        executor.decode_keys(&catalog, query, &result.groups)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Acquire a lock via `f`, charging the wait to the contention
    /// counter.
    fn timed<'a, G>(&'a self, f: impl FnOnce(&'a ServiceInner) -> G) -> G {
        let t = Instant::now();
        let guard = f(&self.inner);
        self.inner
            .counters
            .lock_wait_nanos
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        guard
    }

    /// Fold one finished query's zone-map verdict counters into the
    /// service totals.
    fn note_prune(&self, stats: &ExecStats) {
        let c = &self.inner.counters;
        c.morsels_skipped
            .fetch_add(stats.morsels_skipped, Ordering::Relaxed);
        c.morsels_fast_pathed
            .fetch_add(stats.morsels_fast_pathed, Ordering::Relaxed);
        c.morsels_scanned
            .fetch_add(stats.morsels_scanned, Ordering::Relaxed);
    }

    /// A fresh per-query executor. Seeds advance through a service-wide
    /// atomic so concurrent queries draw distinct, reproducible streams.
    fn executor(&self) -> LaqyExecutor {
        let seed = self
            .inner
            .seed
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        LaqyExecutor::new(self.inner.threads, self.inner.policy, seed).with_mode(self.inner.mode)
    }

    fn hold_for_test(&self) {
        let nanos = self.inner.sampling_hold_nanos.load(Ordering::Relaxed);
        if nanos > 0 {
            std::thread::sleep(Duration::from_nanos(nanos));
        }
    }

    /// One optimistic plan-and-execute attempt.
    fn try_run(
        &self,
        query: &ApproxQuery,
        t_start: Instant,
        force_online: bool,
    ) -> Result<Attempt> {
        let mut executor = self.executor();
        let descriptor = {
            let catalog = self.catalog();
            executor.descriptor(&catalog, query)?
        };
        let tighten = Predicates::on(query.range_column.clone(), IntervalSet::of(query.range));

        let mut plan = if force_online {
            LazyPlan::Online
        } else {
            let store = self.store();
            plan_lazy(&store, &descriptor)
        };
        if self.inner.mode == ReuseMode::FullMatchOnly {
            if let LazyPlan::PartialReuse { .. } = plan {
                plan = LazyPlan::Online;
            }
        }
        let effective = plan.uncovered_fraction(&descriptor);

        match plan {
            LazyPlan::FullReuse { id } => {
                let pre = ExecStats {
                    effective_selectivity: 0.0,
                    reuse: Some(ReuseClass::Full),
                    ..Default::default()
                };
                match self.estimate_reused(&mut executor, id, query, &tighten, pre, t_start)? {
                    Some(result) => {
                        self.inner
                            .counters
                            .full_hits
                            .fetch_add(1, Ordering::Relaxed);
                        Ok(Attempt::Done(Box::new(result)))
                    }
                    None => Ok(Attempt::Retry),
                }
            }
            LazyPlan::PartialReuse { id, delta, varying } => self.run_partial(
                &mut executor,
                query,
                id,
                delta,
                varying,
                effective,
                &tighten,
                t_start,
            ),
            LazyPlan::Online => {
                self.run_online_absorbing(&mut executor, query, &descriptor, t_start)
            }
        }
    }

    /// Δ-sample, merge, estimate — with in-flight dedup and optimistic
    /// revalidation under the write lock.
    #[allow(clippy::too_many_arguments)]
    fn run_partial(
        &self,
        executor: &mut LaqyExecutor,
        query: &ApproxQuery,
        id: SampleId,
        delta: Predicates,
        varying: String,
        effective: f64,
        tighten: &Predicates,
        t_start: Instant,
    ) -> Result<Attempt> {
        let delta_set = delta
            .get(&varying)
            .cloned()
            .unwrap_or_else(IntervalSet::empty);
        let key = format!("Δ|{:?}|{varying}|{delta_set:?}", id);
        let Some(_guard) = self.begin_inflight(&key) else {
            // Another client is sampling this exact uncovered interval:
            // we waited for it, so re-plan (normally upgrading to full
            // reuse) instead of scanning the same Δ again.
            self.inner
                .counters
                .merges_deduped
                .fetch_add(1, Ordering::Relaxed);
            return Ok(Attempt::Retry);
        };
        self.hold_for_test();

        let (delta_sample, mut stats) = {
            let catalog = self.catalog();
            executor.sample_pipeline(&catalog, query, &delta_set, &Predicate::True)?
        };
        self.inner
            .counters
            .delta_scans
            .fetch_add(1, Ordering::Relaxed);

        let t_merge = Instant::now();
        let merged = {
            let mut store = self.timed(|i| i.store.write());
            // Revalidate before merging: the sample may have been evicted,
            // or a competing merge may have grown its coverage into our Δ
            // (merging then would double-count those rows).
            let still_valid = store.peek(id).is_some_and(|stored| {
                stored
                    .descriptor
                    .predicates
                    .get(&varying)
                    .map(|coverage| !coverage.overlaps(&delta_set))
                    .unwrap_or(true)
            });
            if still_valid {
                store.merge_delta(id, delta_sample, &delta, &varying, executor.rng_mut())
            } else {
                false
            }
        };
        stats.merge = t_merge.elapsed();
        if !merged {
            self.inner
                .counters
                .merge_retries
                .fetch_add(1, Ordering::Relaxed);
            return Ok(Attempt::Retry);
        }

        stats.effective_selectivity = effective;
        stats.reuse = Some(ReuseClass::Partial);
        match self.estimate_reused(executor, id, query, tighten, stats, t_start)? {
            Some(result) => {
                self.inner
                    .counters
                    .partial_merges
                    .fetch_add(1, Ordering::Relaxed);
                Ok(Attempt::Done(Box::new(result)))
            }
            None => Ok(Attempt::Retry),
        }
    }

    /// Estimate a query from stored sample `id` (full or freshly merged
    /// partial reuse), applying the conservative support fallback.
    /// Returns `None` when the sample vanished and the caller must
    /// re-plan.
    fn estimate_reused(
        &self,
        executor: &mut LaqyExecutor,
        id: SampleId,
        query: &ApproxQuery,
        tighten: &Predicates,
        mut stats: ExecStats,
        t_start: Instant,
    ) -> Result<Option<ApproxResult>> {
        let estimated = {
            let store = self.store();
            if store.peek(id).is_none() {
                None
            } else {
                Some(executor.estimate_stored(&store, id, query, tighten)?)
            }
        };
        let Some((mut groups, mut support, est_time)) = estimated else {
            return Ok(None);
        };
        stats.estimate += est_time;
        if self.inner.policy.conservative && !support.fully_supported() {
            let refined = {
                let catalog = self.catalog();
                executor.refine_support(&catalog, query, &mut groups, &mut support, &mut stats)?
            };
            if !refined {
                // Low support not recoverable per-stratum: validate with a
                // full online run, as the single-owner path does.
                self.inner
                    .counters
                    .support_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
                let descriptor = {
                    let catalog = self.catalog();
                    executor.descriptor(&catalog, query)?
                };
                return match self.run_online_absorbing(executor, query, &descriptor, t_start)? {
                    Attempt::Done(result) => Ok(Some(*result)),
                    Attempt::Retry => Ok(None),
                };
            }
        }
        stats.total = t_start.elapsed();
        Ok(Some(ApproxResult {
            groups,
            stats,
            support,
        }))
    }

    /// Full online sampling + absorb into the shared store, deduplicating
    /// identical concurrent misses.
    fn run_online_absorbing(
        &self,
        executor: &mut LaqyExecutor,
        query: &ApproxQuery,
        descriptor: &crate::descriptor::SampleDescriptor,
        t_start: Instant,
    ) -> Result<Attempt> {
        let key = format!("O|{}|{:?}", descriptor.fingerprint(), descriptor.predicates);
        let Some(_guard) = self.begin_inflight(&key) else {
            self.inner
                .counters
                .online_deduped
                .fetch_add(1, Ordering::Relaxed);
            return Ok(Attempt::Retry);
        };
        self.hold_for_test();

        let ranges = IntervalSet::of(query.range);
        let (sample, mut stats, schema, groups, support) = {
            let catalog = self.catalog();
            let (sample, stats) =
                executor.sample_pipeline(&catalog, query, &ranges, &Predicate::True)?;
            let (_, schema) = executor.payload_schema(&catalog, query)?;
            let t_est = Instant::now();
            let groups = crate::estimate::estimate(
                &sample,
                &schema,
                &query.plan.aggs,
                &crate::estimate::EstimateOptions::default(),
            )?;
            let support =
                crate::support::check_support(&sample, &schema, None, &self.inner.policy)?;
            let mut stats = stats;
            stats.estimate = t_est.elapsed();
            (sample, stats, schema, groups, support)
        };
        self.inner
            .counters
            .online_scans
            .fetch_add(1, Ordering::Relaxed);

        {
            let mut store = self.timed(|i| i.store.write());
            store.absorb(descriptor.clone(), schema, sample, executor.rng_mut());
        }
        self.inner
            .counters
            .online_runs
            .fetch_add(1, Ordering::Relaxed);

        stats.effective_selectivity = 1.0;
        stats.reuse = Some(ReuseClass::Online);
        stats.total = t_start.elapsed();
        Ok(Attempt::Done(Box::new(ApproxResult {
            groups,
            stats,
            support,
        })))
    }

    /// Claim or wait on the in-flight sampling slot for `key`.
    ///
    /// Returns `Some(guard)` if this thread is now the owner (the guard
    /// releases waiters on drop, including on error paths), or `None`
    /// after having waited for a concurrent owner to finish. No store,
    /// catalog, or registry lock is held while waiting.
    fn begin_inflight(&self, key: &str) -> Option<InflightGuard<'_>> {
        let entry = {
            let mut registry = self.inner.inflight.lock();
            match registry.get(key) {
                Some(entry) => Some(Arc::clone(entry)),
                None => {
                    registry.insert(key.to_string(), Arc::new(Inflight::new()));
                    None
                }
            }
        };
        match entry {
            Some(entry) => {
                let mut done = entry.done.lock();
                while !*done {
                    entry.cv.wait(&mut done);
                }
                None
            }
            None => Some(InflightGuard {
                inner: &self.inner,
                key: key.to_string(),
            }),
        }
    }
}

/// Releases an in-flight slot on drop, waking all waiters — also on
/// panic or error unwinding, so waiters can never hang on a dead owner.
struct InflightGuard<'a> {
    inner: &'a ServiceInner,
    key: String,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let entry = self.inner.inflight.lock().remove(&self.key);
        if let Some(entry) = entry {
            *entry.done.lock() = true;
            entry.cv.notify_all();
        }
    }
}

#[allow(dead_code)]
fn _assert_service_is_shareable() {
    fn check<T: Send + Sync + Clone>() {}
    check::<LaqyService>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use laqy_engine::{AggSpec, ColRef, Column, QueryPlan};

    use crate::interval::Interval;

    fn catalog(n: i64) -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                "t",
                vec![
                    ("key".into(), Column::Int64((0..n).collect())),
                    ("g".into(), Column::Int64((0..n).map(|i| i % 4).collect())),
                    ("v".into(), Column::Int64((0..n).map(|i| i % 100).collect())),
                ],
            )
            .unwrap(),
        );
        cat
    }

    fn query(lo: i64, hi: i64) -> ApproxQuery {
        ApproxQuery {
            plan: QueryPlan {
                fact: "t".into(),
                predicate: Predicate::True,
                joins: vec![],
                group_by: vec![ColRef::fact("g")],
                aggs: vec![AggSpec::sum("v"), AggSpec::count()],
            },
            range_column: "key".into(),
            range: Interval::new(lo, hi),
            k: 64,
        }
    }

    #[test]
    fn reuse_arms_and_counters_line_up() {
        let service = LaqyService::with_config(
            catalog(4000),
            SessionConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let a = service.run(&query(0, 1999)).unwrap();
        assert_eq!(a.stats.reuse, Some(ReuseClass::Online));
        let b = service.run(&query(500, 1500)).unwrap();
        assert_eq!(b.stats.reuse, Some(ReuseClass::Full));
        let c = service.run(&query(0, 2999)).unwrap();
        assert_eq!(c.stats.reuse, Some(ReuseClass::Partial));
        let stats = service.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.online_runs, 1);
        assert_eq!(stats.full_hits, 1);
        assert_eq!(stats.partial_merges, 1);
        assert_eq!(stats.delta_scans, 1);
        assert_eq!(stats.merges_deduped, 0);
    }

    #[test]
    fn clones_share_the_store() {
        let service = LaqyService::with_config(
            catalog(2000),
            SessionConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let other = service.clone();
        service.run(&query(0, 999)).unwrap();
        assert_eq!(other.store().len(), 1);
        let r = other.run(&query(100, 800)).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
    }

    #[test]
    fn oblivious_runs_do_not_touch_the_store() {
        let service = LaqyService::with_config(
            catalog(2000),
            SessionConfig {
                threads: 1,
                ..Default::default()
            },
        );
        service.run_online_oblivious(&query(0, 999)).unwrap();
        assert!(service.store().is_empty());
        assert_eq!(service.stats().online_runs, 0);
    }

    #[test]
    fn inflight_guard_releases_on_drop() {
        let service = LaqyService::new(catalog(100));
        {
            let guard = service.begin_inflight("k");
            assert!(guard.is_some());
        }
        // Slot free again: claiming succeeds instead of waiting.
        assert!(service.begin_inflight("k").is_some());
    }
}
