//! Sampling operators as engine aggregation functions (paper §6.2).
//!
//! "We introduced reservoir sampling as a new aggregation function that
//! produces a bag of items. Stratified sampling is then implemented as a
//! group-by that aggregates the input using the reservoir aggregation
//! function." — this module is exactly that: [`ReservoirAggFactory`]
//! implements the engine's [`AggregatorFactory`], so the engine's hash
//! group-by (keyed by the QCS columns) produces one reservoir per stratum.
//! A keyless group-by (reduction) yields a simple reservoir sample.
//!
//! The produced group-by hash table is converted into a
//! [`StratifiedSampler`] without copying tuple payloads (ownership
//! transfer, §6.3).

use laqy_sync::atomic::{AtomicU64, Ordering};

use laqy_engine::ops::{Aggregator, AggregatorFactory, GroupTable, Inputs};
use laqy_engine::GroupKey;
use laqy_sampling::{Lehmer64, Reservoir, StratifiedSampler};

/// Maximum payload columns carried per sampled tuple.
pub const MAX_SAMPLE_COLS: usize = 8;

/// How a payload slot is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Integer (also dictionary codes).
    Int,
    /// Float, stored as raw bits.
    Float,
}

/// A fixed-width sampled tuple: the QVS payload of one input row. Floats
/// are stored bit-cast so the tuple stays `Copy` and branch-free to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleTuple {
    vals: [i64; MAX_SAMPLE_COLS],
}

impl SampleTuple {
    /// Construct from raw slot values (floats pre-encoded with `to_bits`).
    pub fn new(vals: [i64; MAX_SAMPLE_COLS]) -> Self {
        Self { vals }
    }

    /// Construct from a prefix of slot values; remaining slots are zero.
    pub fn from_slice(prefix: &[i64]) -> Self {
        assert!(prefix.len() <= MAX_SAMPLE_COLS, "too many slots");
        let mut vals = [0i64; MAX_SAMPLE_COLS];
        vals[..prefix.len()].copy_from_slice(prefix);
        Self { vals }
    }

    /// Raw integer slot.
    #[inline]
    pub fn int(&self, slot: usize) -> i64 {
        self.vals[slot]
    }

    /// Float slot (bit-cast back).
    #[inline]
    pub fn float(&self, slot: usize) -> f64 {
        f64::from_bits(self.vals[slot] as u64)
    }

    /// Numeric view of a slot under its declared kind.
    #[inline]
    pub fn numeric(&self, slot: usize, kind: SlotKind) -> f64 {
        match kind {
            SlotKind::Int => self.vals[slot] as f64,
            SlotKind::Float => self.float(slot),
        }
    }
}

/// Schema of sampled tuples: which column occupies which slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleSchema {
    columns: Vec<(String, SlotKind)>,
}

impl SampleSchema {
    /// Build from `(column, kind)` pairs; at most [`MAX_SAMPLE_COLS`].
    pub fn new(columns: Vec<(String, SlotKind)>) -> Self {
        assert!(
            columns.len() <= MAX_SAMPLE_COLS,
            "too many sample payload columns"
        );
        Self { columns }
    }

    /// Slot index of a column.
    pub fn slot(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|(c, _)| c == column)
    }

    /// Kind of a slot.
    pub fn kind(&self, slot: usize) -> SlotKind {
        self.columns[slot].1
    }

    /// Number of payload columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column names in slot order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(c, _)| c.as_str()).collect()
    }
}

/// Per-group reservoir aggregation state. Each group keeps its own inlined
/// RNG so admission draws never contend and stay register-resident, as the
/// paper's generated code does with its Lehmer generator.
pub struct ReservoirAgg {
    reservoir: Reservoir<SampleTuple>,
    rng: Lehmer64,
    kinds: [SlotKind; MAX_SAMPLE_COLS],
    width: usize,
}

impl ReservoirAgg {
    /// The reservoir accumulated so far.
    pub fn reservoir(&self) -> &Reservoir<SampleTuple> {
        &self.reservoir
    }

    /// Take the reservoir out.
    pub fn into_reservoir(self) -> Reservoir<SampleTuple> {
        self.reservoir
    }
}

impl Aggregator for ReservoirAgg {
    #[inline]
    fn update(&mut self, inputs: &Inputs<'_>, i: usize) {
        let mut vals = [0i64; MAX_SAMPLE_COLS];
        for (slot, v) in vals.iter_mut().enumerate().take(self.width) {
            *v = match self.kinds[slot] {
                SlotKind::Int => inputs.i64(slot, i),
                SlotKind::Float => inputs.f64(slot, i).to_bits() as i64,
            };
        }
        self.reservoir.offer(SampleTuple { vals }, &mut self.rng);
    }

    fn merge(&mut self, other: Self) {
        // Exchange-operator path: combine per-thread partial reservoirs of
        // the same stratum (Algorithm 2).
        let merged = laqy_sampling::merge_reservoirs(
            Some(&self.reservoir),
            Some(&other.reservoir),
            &mut self.rng,
        );
        self.reservoir = merged;
    }
}

/// Factory producing [`ReservoirAgg`] states; implements the engine's
/// pluggable aggregate interface, turning its group-by into a stratified
/// sampler.
pub struct ReservoirAggFactory {
    k: usize,
    kinds: [SlotKind; MAX_SAMPLE_COLS],
    width: usize,
    seed: AtomicU64,
}

impl ReservoirAggFactory {
    /// `k`: per-stratum reservoir capacity; `schema`: payload layout;
    /// `seed`: base RNG seed (each created state derives a distinct
    /// stream).
    pub fn new(k: usize, schema: &SampleSchema, seed: u64) -> Self {
        let mut kinds = [SlotKind::Int; MAX_SAMPLE_COLS];
        for (i, (_, kind)) in schema.columns.iter().enumerate() {
            kinds[i] = *kind;
        }
        Self {
            k,
            kinds,
            width: schema.len(),
            seed: AtomicU64::new(seed),
        }
    }
}

impl AggregatorFactory for ReservoirAggFactory {
    type Agg = ReservoirAgg;

    fn create(&self) -> ReservoirAgg {
        let s = self.seed.fetch_add(0x9E37_79B9, Ordering::Relaxed);
        ReservoirAgg {
            reservoir: Reservoir::new(self.k),
            rng: Lehmer64::new(s),
            kinds: self.kinds,
            width: self.width,
        }
    }
}

/// Transfer ownership of a reservoir group-by hash table into a stratified
/// sample (paper §6.3: "we transfer the ownership of the hash-table used
/// by our group-by... This process does not require moving or copying the
/// data" — here the tuple storage moves by pointer inside each
/// `Reservoir`).
pub fn group_table_into_sample(
    table: GroupTable<ReservoirAgg>,
    k: usize,
) -> StratifiedSampler<GroupKey, SampleTuple> {
    let mut out = StratifiedSampler::with_strata_hint(k, table.len());
    for (key, agg) in table.map {
        out.insert_stratum(key, agg.into_reservoir());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use laqy_engine::ops::{group_by, BoundCol};
    use laqy_engine::{AggInput, Column, Table};

    fn schema() -> SampleSchema {
        SampleSchema::new(vec![
            ("v".to_string(), SlotKind::Int),
            ("w".to_string(), SlotKind::Float),
        ])
    }

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                (
                    "g".into(),
                    Column::Int64((0..1000).map(|i| i % 5).collect()),
                ),
                ("v".into(), Column::Int64((0..1000).collect())),
                (
                    "w".into(),
                    Column::Float64((0..1000).map(|i| i as f64 * 0.5).collect()),
                ),
            ],
        )
        .unwrap()
    }

    fn sample_table(k: usize) -> StratifiedSampler<GroupKey, SampleTuple> {
        let t = table();
        let factory = ReservoirAggFactory::new(k, &schema(), 42);
        let key = BoundCol::new(t.column("g").unwrap(), None);
        let inputs = Inputs::bind(
            &[AggInput::Col("v".into()), AggInput::Col("w".into())],
            |name| Ok(BoundCol::new(t.column(name).unwrap(), None)),
        )
        .unwrap();
        let gt = group_by(&[key], &inputs, t.num_rows(), &factory);
        group_table_into_sample(gt, k)
    }

    #[test]
    fn stratified_sampling_via_group_by() {
        let s = sample_table(8);
        assert_eq!(s.num_strata(), 5);
        assert_eq!(s.total_weight(), 1000);
        for g in 0..5 {
            let (items, w) = s.stratum(&GroupKey::new(&[g])).unwrap();
            assert_eq!(w, 200);
            assert_eq!(items.len(), 8);
            for t in items {
                // v % 5 must equal the stratum key; w must be v * 0.5.
                assert_eq!(t.int(0) % 5, g);
                assert_eq!(t.float(1), t.int(0) as f64 * 0.5);
            }
        }
    }

    #[test]
    fn small_k_keeps_reservoirs_at_capacity() {
        let s = sample_table(2);
        assert_eq!(s.total_items(), 10);
    }

    #[test]
    fn large_k_keeps_whole_strata() {
        let s = sample_table(500);
        // Each stratum has only 200 tuples < k ⇒ everything retained.
        assert_eq!(s.total_items(), 1000);
    }

    #[test]
    fn partial_merge_combines_thread_reservoirs() {
        let t = table();
        let factory = ReservoirAggFactory::new(16, &schema(), 7);
        let key = BoundCol::new(t.column("g").unwrap(), None);
        let inputs = Inputs::bind(
            &[AggInput::Col("v".into()), AggInput::Col("w".into())],
            |name| Ok(BoundCol::new(t.column(name).unwrap(), None)),
        )
        .unwrap();
        // Simulate two morsels.
        let rows_a: Vec<u32> = (0..500).collect();
        let rows_b: Vec<u32> = (500..1000).collect();
        let key_a = BoundCol::new(t.column("g").unwrap(), Some(&rows_a));
        let inputs_a = Inputs::bind(
            &[AggInput::Col("v".into()), AggInput::Col("w".into())],
            |name| Ok(BoundCol::new(t.column(name).unwrap(), Some(&rows_a))),
        )
        .unwrap();
        let key_b = BoundCol::new(t.column("g").unwrap(), Some(&rows_b));
        let inputs_b = Inputs::bind(
            &[AggInput::Col("v".into()), AggInput::Col("w".into())],
            |name| Ok(BoundCol::new(t.column(name).unwrap(), Some(&rows_b))),
        )
        .unwrap();
        let mut ga = group_by(&[key_a], &inputs_a, rows_a.len(), &factory);
        let gb = group_by(&[key_b], &inputs_b, rows_b.len(), &factory);
        ga.merge(gb);
        let merged = group_table_into_sample(ga, 16);
        assert_eq!(merged.total_weight(), 1000);
        assert_eq!(merged.num_strata(), 5);

        // Single-pass reference for comparison of weights.
        let gt = group_by(&[key], &inputs, t.num_rows(), &factory);
        let single = group_table_into_sample(gt, 16);
        for g in 0..5 {
            let (_, wm) = merged.stratum(&GroupKey::new(&[g])).unwrap();
            let (_, ws) = single.stratum(&GroupKey::new(&[g])).unwrap();
            assert_eq!(wm, ws);
        }
    }

    #[test]
    fn keyless_group_by_is_simple_reservoir() {
        let t = table();
        let factory = ReservoirAggFactory::new(32, &schema(), 11);
        let inputs = Inputs::bind(
            &[AggInput::Col("v".into()), AggInput::Col("w".into())],
            |name| Ok(BoundCol::new(t.column(name).unwrap(), None)),
        )
        .unwrap();
        let gt = group_by(&[], &inputs, t.num_rows(), &factory);
        assert_eq!(gt.len(), 1);
        let s = group_table_into_sample(gt, 32);
        let (items, w) = s.stratum(&GroupKey::new(&[])).unwrap();
        assert_eq!(w, 1000);
        assert_eq!(items.len(), 32);
    }

    #[test]
    fn schema_slots() {
        let s = schema();
        assert_eq!(s.slot("v"), Some(0));
        assert_eq!(s.slot("w"), Some(1));
        assert_eq!(s.slot("missing"), None);
        assert_eq!(s.kind(1), SlotKind::Float);
        assert_eq!(s.column_names(), vec!["v", "w"]);
    }

    #[test]
    fn tuple_numeric_views() {
        let t = SampleTuple {
            vals: [3, (2.5f64).to_bits() as i64, 0, 0, 0, 0, 0, 0],
        };
        assert_eq!(t.numeric(0, SlotKind::Int), 3.0);
        assert_eq!(t.numeric(1, SlotKind::Float), 2.5);
    }
}
