//! Write-ahead log for streaming ingest.
//!
//! Base tables live only in memory; what survives a crash is the sample
//! store snapshot (see [`crate::persist`]) plus this log. Every ingest
//! batch is appended — and fsynced — *before* it is applied to the
//! in-memory table or absorbed into any stored sample, so a stored
//! sample's row watermark can never run ahead of what the log can
//! reconstruct. Recovery rebuilds the base catalog deterministically,
//! replays the log to the last intact record, and the pair
//! `(snapshot generation, WAL position)` names the consistent point the
//! process restarts from.
//!
//! Record framing (little-endian):
//!
//! ```text
//! u32 payload length | u64 CRC-64 of payload | payload
//! payload: u8 tag
//!   tag 1 Batch:      table | u64 base_rows | columns (typed vectors)
//!   tag 2 Checkpoint: u64 snapshot generation | {table -> u64 watermark}
//! ```
//!
//! The `base_rows` field makes replay idempotent and gap-detecting: a
//! batch applies only when the live table is exactly that long, so
//! replaying a log over an already-caught-up catalog is a no-op and a
//! missing segment fails loudly instead of silently skewing rows.
//!
//! Segments (`wal.seg.<N>`) rotate at [`MAX_WAL_SEGMENT_BYTES`] and are
//! never pruned: appended base rows exist *only* here, so every segment
//! remains part of the recovery path. Torn tails — a crash mid-append —
//! are detected by the length/CRC frame and replay stops cleanly at the
//! last intact record. Fault points (`wal.append.write`,
//! `wal.append.sync`, `wal.rotate.create`, `wal.replay.read`) let chaos
//! builds kill the writer at each stage.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut};
use laqy_engine::Column;

use crate::persist::{read_exact, read_str, read_u32, read_u64, read_u8, write_str, PersistError};

/// File-name prefix for log segments in a WAL directory: `wal.seg.<N>`.
pub const WAL_SEGMENT_PREFIX: &str = "wal.seg.";

/// Rotation threshold: a record that would push a segment past this many
/// bytes opens the next segment first.
pub const MAX_WAL_SEGMENT_BYTES: u64 = 16 * 1024 * 1024;

/// Hard cap on one record's payload; a corrupt length prefix must fail
/// validation, not drive a giant allocation.
pub const MAX_WAL_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes of framing per record (`u32` length + `u64` CRC).
const FRAME_HEADER_BYTES: usize = 12;

/// One durable position in the log: `(segment, byte offset)` of a record
/// boundary. Ordered lexicographically, so later appends compare greater.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct WalPosition {
    /// Segment number (1-based, `wal.seg.<segment>`).
    pub segment: u64,
    /// Byte offset within the segment.
    pub offset: u64,
}

/// One logical record in the log.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// An ingest batch for `table`, valid only when the table holds
    /// exactly `base_rows` rows (idempotence + gap detection).
    Batch {
        /// Target table name.
        table: String,
        /// Row count the table must have for this batch to apply.
        base_rows: u64,
        /// The appended columns, matched to the table schema by name.
        columns: Vec<(String, Column)>,
    },
    /// A snapshot was durably written: generation number plus the row
    /// watermark of every table at that instant. Replay after loading
    /// snapshot generation `g` still applies *all* batches (they are
    /// idempotent); the checkpoint records the consistent pairing for
    /// reporting and invariant checks.
    Checkpoint {
        /// Snapshot generation written by [`crate::persist::save_snapshot`].
        generation: u64,
        /// `(table, row watermark)` at checkpoint time.
        watermarks: Vec<(String, u64)>,
    },
}

/// What [`replay`] found in a WAL directory.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WalReplayReport {
    /// Intact records decoded, in order.
    pub records: u64,
    /// True when a torn tail (half-written final record) was discarded.
    pub torn_tail: bool,
    /// Position one past the last intact record — where the next append
    /// would land after recovery.
    pub end: WalPosition,
}

// ---- CRC-64 (ECMA-182 reflected) ----

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xC96C_5795_D787_0F42
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = u64::MAX;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---- encoding ----

fn encode_column(buf: &mut Vec<u8>, col: &Column) {
    match col {
        Column::Int32(v) => {
            buf.put_u8(0);
            buf.put_u32_le(v.len() as u32);
            for &x in v {
                // The bytes shim has no put_i32_le; the cast is lossless
                // over the wire (decode reads back via from_le_bytes).
                buf.put_u32_le(x as u32);
            }
        }
        Column::Int64(v) => {
            buf.put_u8(1);
            buf.put_u32_le(v.len() as u32);
            for &x in v {
                buf.put_i64_le(x);
            }
        }
        Column::Float64(v) => {
            buf.put_u8(2);
            buf.put_u32_le(v.len() as u32);
            for &x in v {
                buf.put_u64_le(x.to_bits());
            }
        }
        Column::Dict { codes, dict } => {
            buf.put_u8(3);
            buf.put_u32_le(codes.len() as u32);
            for &c in codes {
                buf.put_u32_le(c);
            }
            buf.put_u32_le(dict.len() as u32);
            for s in dict.iter() {
                write_str(buf, s);
            }
        }
    }
}

fn decode_column(buf: &mut &[u8]) -> Result<Column, PersistError> {
    let tag = read_u8(buf)?;
    let n = read_u32(buf)? as usize;
    let width = match tag {
        0 => 4,
        1 | 2 => 8,
        3 => 4,
        other => {
            return Err(PersistError::Corrupt(format!("bad column tag {other}")));
        }
    };
    if n > buf.remaining() / width {
        return Err(PersistError::Corrupt(format!(
            "column length {n} exceeds record size"
        )));
    }
    Ok(match tag {
        0 => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let mut b = [0u8; 4];
                read_exact(buf, &mut b)?;
                v.push(i32::from_le_bytes(b));
            }
            Column::Int32(v)
        }
        1 => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let mut b = [0u8; 8];
                read_exact(buf, &mut b)?;
                v.push(i64::from_le_bytes(b));
            }
            Column::Int64(v)
        }
        2 => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let mut b = [0u8; 8];
                read_exact(buf, &mut b)?;
                v.push(f64::from_bits(u64::from_le_bytes(b)));
            }
            Column::Float64(v)
        }
        _ => {
            let mut codes = Vec::with_capacity(n);
            for _ in 0..n {
                let mut b = [0u8; 4];
                read_exact(buf, &mut b)?;
                codes.push(u32::from_le_bytes(b));
            }
            let dict_len = read_u32(buf)? as usize;
            if dict_len > buf.remaining() / 4 {
                return Err(PersistError::Corrupt(format!(
                    "dictionary length {dict_len} exceeds record size"
                )));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(read_str(buf)?);
            }
            for &c in &codes {
                if c as usize >= dict.len() {
                    return Err(PersistError::Corrupt(format!(
                        "dictionary code {c} out of range"
                    )));
                }
            }
            Column::Dict {
                codes,
                dict: Arc::new(dict),
            }
        }
    })
}

/// Serialize one record's payload (framing added by the appender).
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    match record {
        WalRecord::Batch {
            table,
            base_rows,
            columns,
        } => {
            buf.put_u8(1);
            write_str(&mut buf, table);
            buf.put_u64_le(*base_rows);
            buf.put_u32_le(columns.len() as u32);
            for (name, col) in columns {
                write_str(&mut buf, name);
                encode_column(&mut buf, col);
            }
        }
        WalRecord::Checkpoint {
            generation,
            watermarks,
        } => {
            buf.put_u8(2);
            buf.put_u64_le(*generation);
            buf.put_u32_le(watermarks.len() as u32);
            for (table, w) in watermarks {
                write_str(&mut buf, table);
                buf.put_u64_le(*w);
            }
        }
    }
    buf
}

/// Decode one record's payload. The frame CRC has already vouched for
/// the bytes, so any failure here is real corruption, not a torn tail.
pub fn decode_record(mut payload: &[u8]) -> Result<WalRecord, PersistError> {
    let buf = &mut payload;
    let record = match read_u8(buf)? {
        1 => {
            let table = read_str(buf)?;
            let base_rows = read_u64(buf)?;
            let n = read_u32(buf)? as usize;
            let mut columns = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let name = read_str(buf)?;
                columns.push((name, decode_column(buf)?));
            }
            WalRecord::Batch {
                table,
                base_rows,
                columns,
            }
        }
        2 => {
            let generation = read_u64(buf)?;
            let n = read_u32(buf)? as usize;
            let mut watermarks = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let table = read_str(buf)?;
                watermarks.push((table, read_u64(buf)?));
            }
            WalRecord::Checkpoint {
                generation,
                watermarks,
            }
        }
        other => {
            return Err(PersistError::Corrupt(format!("bad record tag {other}")));
        }
    };
    if buf.has_remaining() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes in record",
            buf.remaining()
        )));
    }
    Ok(record)
}

fn segment_path(dir: &Path, segment: u64) -> PathBuf {
    dir.join(format!("{WAL_SEGMENT_PREFIX}{segment}"))
}

fn segment_of(name: &str) -> Option<u64> {
    name.strip_prefix(WAL_SEGMENT_PREFIX)?.parse().ok()
}

/// All segment numbers present in `dir`, sorted ascending.
fn list_segments(dir: &Path) -> Result<Vec<u64>, PersistError> {
    let mut segs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seg) = entry.file_name().to_str().and_then(segment_of) {
            segs.push(seg);
        }
    }
    segs.sort_unstable();
    Ok(segs)
}

/// The append half of the log: owns the live segment file handle and the
/// running `(segment, offset)` position.
#[derive(Debug)]
pub struct WalAppender {
    dir: PathBuf,
    segment: u64,
    offset: u64,
    file: std::fs::File,
}

impl WalAppender {
    /// Open (or create) the log in `dir`, positioning after the newest
    /// segment's last byte. Call [`replay`] *first* during recovery: a
    /// torn tail at the end of the newest segment is overwritten by the
    /// next append only after replay has measured the intact prefix.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let segment = list_segments(&dir)?.last().copied().unwrap_or(1);
        let path = segment_path(&dir, segment);
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)?;
        let offset = file.metadata()?.len();
        Ok(Self {
            dir,
            segment,
            offset,
            file,
        })
    }

    /// Open the log and truncate the newest segment to `end` — the intact
    /// prefix [`replay`] measured — so a torn tail from a crashed append
    /// can never prefix-corrupt the next record.
    pub fn open_at(dir: impl AsRef<Path>, end: WalPosition) -> Result<Self, PersistError> {
        let mut wal = Self::open(dir)?;
        if end.segment == wal.segment && end.offset < wal.offset {
            wal.file.set_len(end.offset)?;
            wal.offset = end.offset;
        }
        Ok(wal)
    }

    /// Position the *next* append will start at.
    pub fn position(&self) -> WalPosition {
        WalPosition {
            segment: self.segment,
            offset: self.offset,
        }
    }

    /// Append one record, fsync it, and return the position it starts at.
    /// Rotates to a fresh segment first when the record would push the
    /// live one past [`MAX_WAL_SEGMENT_BYTES`]. On an injected
    /// `wal.append.write` fault, half the frame reaches the file — a torn
    /// tail — before the error returns.
    pub fn append(&mut self, record: &WalRecord) -> Result<WalPosition, PersistError> {
        let payload = encode_record(record);
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u64_le(crc64(&payload));
        frame.extend_from_slice(&payload);

        if self.offset > 0 && self.offset + frame.len() as u64 > MAX_WAL_SEGMENT_BYTES {
            laqy_faults::io_point("wal.rotate.create")?;
            let next = self.segment + 1;
            self.file = std::fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(segment_path(&self.dir, next))?;
            self.segment = next;
            self.offset = 0;
        }

        if let Err(e) = laqy_faults::point("wal.append.write") {
            // Simulate a crash mid-append: half the frame lands. Replay
            // detects the torn tail via the length/CRC frame.
            let _ = self.file.write_all(&frame[..frame.len() / 2]);
            let _ = self.file.sync_data();
            self.offset += (frame.len() / 2) as u64;
            return Err(PersistError::Io(e.into()));
        }
        self.file.write_all(&frame)?;
        laqy_faults::io_point("wal.append.sync")?;
        self.file.sync_data()?;
        let at = self.position();
        self.offset += frame.len() as u64;
        Ok(at)
    }
}

/// Replay every intact record in `dir`, in append order. A missing
/// directory replays to nothing; a torn tail stops replay cleanly (and
/// is reported); corruption *behind* an intact CRC is an error.
pub fn replay(dir: impl AsRef<Path>) -> Result<(Vec<WalRecord>, WalReplayReport), PersistError> {
    let dir = dir.as_ref();
    let mut report = WalReplayReport::default();
    let mut records = Vec::new();
    if !dir.exists() {
        return Ok((records, report));
    }
    let segments = list_segments(dir)?;
    for &seg in &segments {
        laqy_faults::io_point("wal.replay.read")?;
        let bytes = std::fs::read(segment_path(dir, seg))?;
        let mut buf: &[u8] = &bytes;
        let mut intact = 0u64;
        loop {
            if !buf.has_remaining() {
                break;
            }
            if buf.remaining() < FRAME_HEADER_BYTES {
                report.torn_tail = true;
                break;
            }
            // Peek the frame without consuming, so a torn tail leaves
            // `intact` pointing at the last full record boundary.
            let mut peek = buf;
            let len = read_u32(&mut peek)? as usize;
            if len > MAX_WAL_RECORD_BYTES as usize || peek.remaining() < len + 8 {
                report.torn_tail = true;
                break;
            }
            let crc = read_u64(&mut peek)?;
            let payload = &peek[..len];
            if crc64(payload) != crc {
                report.torn_tail = true;
                break;
            }
            records.push(decode_record(payload)?);
            buf.advance(FRAME_HEADER_BYTES + len);
            intact += FRAME_HEADER_BYTES as u64 + len as u64;
            report.records += 1;
        }
        report.end = WalPosition {
            segment: seg,
            offset: intact,
        };
        if report.torn_tail {
            // Nothing after a torn record is trustworthy; segments past
            // this one (if any) were created after the corruption point
            // only in impossible histories, so stop here.
            break;
        }
    }
    if segments.is_empty() {
        report.end = WalPosition {
            segment: 1,
            offset: 0,
        };
    }
    Ok((records, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("laqy_wal_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn batch(base: u64, n: i64) -> WalRecord {
        WalRecord::Batch {
            table: "lineorder".into(),
            base_rows: base,
            columns: vec![
                ("k".into(), Column::Int64((0..n).collect())),
                (
                    "v".into(),
                    Column::Float64((0..n).map(|i| i as f64 * 0.5).collect()),
                ),
            ],
        }
    }

    fn assert_columns_eq(a: &Column, b: &Column) {
        match (a, b) {
            (Column::Int64(x), Column::Int64(y)) => assert_eq!(x, y),
            (Column::Int32(x), Column::Int32(y)) => assert_eq!(x, y),
            (Column::Float64(x), Column::Float64(y)) => assert_eq!(x, y),
            (
                Column::Dict {
                    codes: xc,
                    dict: xd,
                },
                Column::Dict {
                    codes: yc,
                    dict: yd,
                },
            ) => {
                assert_eq!(xc, yc);
                assert_eq!(xd, yd);
            }
            other => panic!("column type mismatch: {other:?}"),
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = scratch_dir("roundtrip");
        let mut wal = WalAppender::open(&dir).unwrap();
        assert_eq!(
            wal.position(),
            WalPosition {
                segment: 1,
                offset: 0
            }
        );
        wal.append(&batch(0, 10)).unwrap();
        wal.append(&batch(10, 5)).unwrap();
        wal.append(&WalRecord::Checkpoint {
            generation: 3,
            watermarks: vec![("lineorder".into(), 15)],
        })
        .unwrap();
        let end = wal.position();
        drop(wal);

        let (records, report) = replay(&dir).unwrap();
        assert_eq!(report.records, 3);
        assert!(!report.torn_tail);
        assert_eq!(report.end, end);
        match &records[0] {
            WalRecord::Batch {
                table,
                base_rows,
                columns,
            } => {
                assert_eq!(table, "lineorder");
                assert_eq!(*base_rows, 0);
                assert_columns_eq(&columns[0].1, &Column::Int64((0..10).collect()));
            }
            other => panic!("expected batch, got {other:?}"),
        }
        match &records[2] {
            WalRecord::Checkpoint {
                generation,
                watermarks,
            } => {
                assert_eq!(*generation, 3);
                assert_eq!(watermarks, &[("lineorder".into(), 15)]);
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dict_columns_roundtrip() {
        let rec = WalRecord::Batch {
            table: "part".into(),
            base_rows: 7,
            columns: vec![(
                "p_mfgr".into(),
                Column::Dict {
                    codes: vec![0, 1, 1, 0, 2],
                    dict: Arc::new(vec!["MFGR#1".into(), "MFGR#2".into(), "MFGR#3".into()]),
                },
            )],
        };
        let decoded = decode_record(&encode_record(&rec)).unwrap();
        match (&rec, &decoded) {
            (
                WalRecord::Batch { columns: a, .. },
                WalRecord::Batch {
                    table,
                    base_rows,
                    columns: b,
                },
            ) => {
                assert_eq!(table, "part");
                assert_eq!(*base_rows, 7);
                assert_columns_eq(&a[0].1, &b[0].1);
            }
            other => panic!("mismatch: {other:?}"),
        }
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let dir = scratch_dir("reopen");
        let mut wal = WalAppender::open(&dir).unwrap();
        wal.append(&batch(0, 4)).unwrap();
        let end = wal.position();
        drop(wal);
        let mut wal = WalAppender::open(&dir).unwrap();
        assert_eq!(wal.position(), end);
        wal.append(&batch(4, 4)).unwrap();
        let (records, report) = replay(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert!(!report.torn_tail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_discarded_and_reported() {
        let dir = scratch_dir("torn");
        let mut wal = WalAppender::open(&dir).unwrap();
        wal.append(&batch(0, 8)).unwrap();
        let intact_end = wal.position();
        wal.append(&batch(8, 8)).unwrap();
        drop(wal);
        // Tear the second record: chop bytes off the segment tail.
        let path = segment_path(&dir, 1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let (records, report) = replay(&dir).unwrap();
        assert_eq!(records.len(), 1);
        assert!(report.torn_tail);
        assert_eq!(report.end, intact_end);

        // open_at truncates the tear; the next append lands cleanly.
        let mut wal = WalAppender::open_at(&dir, report.end).unwrap();
        assert_eq!(wal.position(), intact_end);
        wal.append(&batch(8, 3)).unwrap();
        let (records, report) = replay(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert!(!report.torn_tail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_crc_stops_replay() {
        let dir = scratch_dir("crc");
        let mut wal = WalAppender::open(&dir).unwrap();
        wal.append(&batch(0, 8)).unwrap();
        wal.append(&batch(8, 8)).unwrap();
        drop(wal);
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Flipping a payload byte breaks that record's CRC: replay keeps
        // everything before it and reports the rest torn.
        let (records, report) = replay(&dir).unwrap();
        assert!(records.len() < 2);
        assert!(report.torn_tail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_spills_to_new_segments_and_replays_in_order() {
        let dir = scratch_dir("rotate");
        let mut wal = WalAppender::open(&dir).unwrap();
        // Each batch is ~32 KiB; force rotation with a tiny threshold by
        // writing until segment 1 alone cannot hold them. The public
        // threshold is large, so emulate by appending enough data.
        let rows = (MAX_WAL_SEGMENT_BYTES / (2 * 8)) as i64 / 4;
        for i in 0..6u64 {
            wal.append(&batch(i * rows as u64, rows)).unwrap();
        }
        assert!(wal.position().segment > 1, "rotation happened");
        drop(wal);
        let (records, report) = replay(&dir).unwrap();
        assert_eq!(records.len(), 6);
        assert!(!report.torn_tail);
        // Replay preserves append order across segment boundaries.
        for (i, r) in records.iter().enumerate() {
            match r {
                WalRecord::Batch { base_rows, .. } => {
                    assert_eq!(*base_rows, i as u64 * rows as u64);
                }
                other => panic!("expected batch, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_replays_empty() {
        let dir = scratch_dir("absent");
        let (records, report) = replay(&dir).unwrap();
        assert!(records.is_empty());
        assert_eq!(report, WalReplayReport::default());
    }

    #[test]
    fn truncation_never_panics() {
        let dir = scratch_dir("fuzz");
        let mut wal = WalAppender::open(&dir).unwrap();
        wal.append(&batch(0, 6)).unwrap();
        wal.append(&WalRecord::Checkpoint {
            generation: 1,
            watermarks: vec![("t".into(), 6)],
        })
        .unwrap();
        drop(wal);
        let path = segment_path(&dir, 1);
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let _ = replay(&dir); // must not panic
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
