//! Error-bounded approximate queries.
//!
//! LAQy's lineage (BlinkDB) frames AQP as "queries with bounded errors":
//! the user states an error target instead of a reservoir capacity. This
//! module provides that contract on top of the lazy executor: run at the
//! query's `k`, measure the realized confidence intervals, and — since the
//! CLT half-width shrinks as `1/√k` — escalate `k` quadratically until the
//! worst per-group relative error meets the target (or a cap is hit).
//!
//! Escalated runs use a larger reservoir capacity, which is part of the
//! sample's identity, so they build a new sample family; subsequent
//! queries with the same target then reuse *those* samples lazily — the
//! escalation cost is paid once per exploration, not per query.

use crate::executor::{ApproxQuery, ApproxResult, Result};
use crate::session::LaqySession;

/// An error target for bounded-error execution.
#[derive(Debug, Clone, Copy)]
pub struct ErrorTarget {
    /// Maximum acceptable relative 95 % CI half-width (`ci / |value|`),
    /// taken as the worst case over output groups.
    pub max_relative_error: f64,
    /// Which aggregate (position in `plan.aggs`) the target constrains.
    pub agg_position: usize,
    /// Upper bound on the escalated reservoir capacity.
    pub max_k: usize,
}

impl ErrorTarget {
    /// Target the first aggregate with the given relative error and a
    /// 64× escalation headroom.
    pub fn relative(max_relative_error: f64) -> Self {
        Self {
            max_relative_error,
            agg_position: 0,
            max_k: usize::MAX,
        }
    }
}

/// Outcome of a bounded-error execution.
#[derive(Debug)]
pub struct BoundedResult {
    /// The final (accepted or best-effort) result.
    pub result: ApproxResult,
    /// Reservoir capacity that produced it.
    pub k_used: usize,
    /// Worst observed relative CI half-width.
    pub worst_relative_error: f64,
    /// True if the target was met.
    pub met: bool,
    /// Number of executions performed (1 = first try sufficed).
    pub attempts: usize,
}

/// Worst per-group relative error of one aggregate; `None` when no group
/// has a nonzero estimate (nothing to normalize by).
pub fn worst_relative_error(result: &ApproxResult, agg_position: usize) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for g in &result.groups {
        let Some(est) = g.values.get(agg_position) else {
            continue;
        };
        if est.value == 0.0 || est.support == 0 || est.ci_half_width.is_nan() {
            continue;
        }
        let rel = est.ci_half_width / est.value.abs();
        worst = Some(worst.map_or(rel, |w: f64| w.max(rel)));
    }
    worst
}

/// Run a query under an error target, escalating `k` as needed.
pub fn run_bounded(
    session: &mut LaqySession,
    query: &ApproxQuery,
    target: &ErrorTarget,
) -> Result<BoundedResult> {
    const MAX_ATTEMPTS: usize = 4;
    let mut k = query.k.max(1);
    let mut attempts = 0;
    loop {
        attempts += 1;
        let mut q = query.clone();
        q.k = k;
        let result = session.run(&q)?;
        let worst = worst_relative_error(&result, target.agg_position).unwrap_or(0.0);
        let met = worst <= target.max_relative_error;
        if met || attempts >= MAX_ATTEMPTS || k >= target.max_k {
            return Ok(BoundedResult {
                result,
                k_used: k,
                worst_relative_error: worst,
                met,
                attempts,
            });
        }
        // CI ∝ 1/√k ⇒ required k scales with (worst/target)². Apply a
        // safety margin and clamp the per-step growth.
        let ratio = worst / target.max_relative_error;
        let factor = (ratio * ratio * 1.2).clamp(2.0, 64.0);
        k = ((k as f64 * factor).ceil() as usize).min(target.max_k.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::session::SessionConfig;
    use laqy_engine::{AggSpec, Catalog, ColRef, Column, Predicate, QueryPlan, Table};

    fn catalog(n: i64) -> Catalog {
        let mut cat = Catalog::new();
        let mut rng = laqy_sampling::Lehmer64::new(5);
        cat.register(
            Table::new(
                "t",
                vec![
                    ("key".into(), Column::Int64((0..n).collect())),
                    ("g".into(), Column::Int64((0..n).map(|i| i % 4).collect())),
                    (
                        "v".into(),
                        Column::Int64((0..n).map(|_| 1 + rng.next_below(100) as i64).collect()),
                    ),
                ],
            )
            .unwrap(),
        );
        cat
    }

    fn query(n: i64, k: usize) -> ApproxQuery {
        ApproxQuery {
            plan: QueryPlan {
                fact: "t".into(),
                predicate: Predicate::True,
                joins: vec![],
                group_by: vec![ColRef::fact("g")],
                aggs: vec![AggSpec::sum("v")],
            },
            range_column: "key".into(),
            range: Interval::new(0, n - 1),
            k,
        }
    }

    #[test]
    fn tight_target_escalates_k() {
        let n = 40_000;
        let mut session = LaqySession::with_config(catalog(n), SessionConfig::default());
        let out = run_bounded(&mut session, &query(n, 16), &ErrorTarget::relative(0.02)).unwrap();
        assert!(out.met, "target should be reachable: {out:?}");
        assert!(out.attempts > 1, "k=16 cannot meet 2% on 10k-row groups");
        assert!(out.k_used > 16);
        assert!(out.worst_relative_error <= 0.02);
    }

    #[test]
    fn loose_target_met_first_try() {
        let n = 10_000;
        let mut session = LaqySession::with_config(catalog(n), SessionConfig::default());
        let out = run_bounded(&mut session, &query(n, 512), &ErrorTarget::relative(0.5)).unwrap();
        assert!(out.met);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.k_used, 512);
    }

    #[test]
    fn k_cap_limits_escalation() {
        let n = 40_000;
        let mut session = LaqySession::with_config(catalog(n), SessionConfig::default());
        let target = ErrorTarget {
            max_relative_error: 1e-6, // unreachable
            agg_position: 0,
            max_k: 64,
        };
        let out = run_bounded(&mut session, &query(n, 16), &target).unwrap();
        assert!(!out.met);
        assert!(out.k_used <= 64);
    }

    #[test]
    fn population_sample_has_zero_error() {
        let n = 1_000;
        let mut session = LaqySession::with_config(catalog(n), SessionConfig::default());
        let out =
            run_bounded(&mut session, &query(n, 10_000), &ErrorTarget::relative(0.0)).unwrap();
        assert!(out.met);
        assert_eq!(out.worst_relative_error, 0.0);
    }

    #[test]
    fn repeated_bounded_queries_reuse_escalated_samples() {
        let n = 40_000;
        let mut session = LaqySession::with_config(catalog(n), SessionConfig::default());
        let target = ErrorTarget::relative(0.02);
        let first = run_bounded(&mut session, &query(n, 16), &target).unwrap();
        assert!(first.attempts > 1);
        // Second identical query: the escalated sample is in the store, so
        // one attempt at the escalated k... but the caller passes k=16
        // again; the first attempt misses the target, and the escalation
        // path hits the stored high-k sample fully.
        let second = run_bounded(&mut session, &query(n, first.k_used), &target).unwrap();
        assert!(second.met);
        assert_eq!(second.attempts, 1);
        assert_eq!(
            second.result.stats.reuse,
            Some(crate::stats::ReuseClass::Full)
        );
    }

    #[test]
    fn worst_relative_error_ignores_empty_groups() {
        let r = ApproxResult {
            groups: vec![],
            stats: Default::default(),
            support: crate::support::SupportReport {
                supported: 0,
                under_supported: vec![],
                empty: vec![],
            },
        };
        assert_eq!(worst_relative_error(&r, 0), None);
    }
}
