//! Per-query execution statistics.
//!
//! The figure harness reconstructs the paper's time breakdowns (Figure 11:
//! scan vs. processing vs. merge) and per-query/cumulative series
//! (Figures 12–15) from these counters.

use std::time::Duration;

use crate::budget::Degradation;

/// Which reuse path a query took (Algorithm 1's three arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseClass {
    /// Stored sample subsumed the query: no scan, no sampling.
    Full,
    /// Δ sample built and merged.
    Partial,
    /// Full online sampling.
    Online,
    /// Exact (non-approximate) execution.
    Exact,
}

impl ReuseClass {
    /// Short label for harness output.
    pub fn label(&self) -> &'static str {
        match self {
            ReuseClass::Full => "full",
            ReuseClass::Partial => "partial",
            ReuseClass::Online => "online",
            ReuseClass::Exact => "exact",
        }
    }
}

/// Timing and cardinality breakdown of one query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Time in the filtered scan (and joins, for sampler-above-join
    /// plans) feeding the sampler.
    pub scan: Duration,
    /// Time spent in sampling / aggregation processing.
    pub processing: Duration,
    /// Time merging the Δ sample with the stored sample.
    pub merge: Duration,
    /// Time spent producing estimates from the (merged) sample.
    pub estimate: Duration,
    /// Wall-clock total.
    pub total: Duration,
    /// Rows the scan had to consider (0 on full reuse).
    pub scanned_rows: u64,
    /// Rows that reached the sampler after filters/joins.
    pub sampled_input_rows: u64,
    /// Effective selectivity actually processed: Δ-range measure divided by
    /// the predicate-domain measure (Figure 9's y-axis).
    pub effective_selectivity: f64,
    /// Morsels the scan skipped outright via zone maps (provably empty
    /// under the pushed-down predicate).
    pub morsels_skipped: u64,
    /// Morsels fast-pathed via zone maps (provably all-matching; emitted
    /// without per-row evaluation).
    pub morsels_fast_pathed: u64,
    /// Morsels that needed per-row predicate evaluation.
    pub morsels_scanned: u64,
    /// Rows whose aggregate contribution came exactly from pre-aggregate
    /// lanes — excluded from the scan *and* from the sampler's input
    /// (hybrid estimation; "rows made free").
    pub lane_covered_rows: u64,
    /// Lane-covered spans (contiguous TakeAll, group-constant block runs)
    /// this query's scans turned into exact mass.
    pub lane_spans: u64,
    /// Stored samples this query's coverage plan merged (0 when the query
    /// ran online or hit a single subsuming sample).
    pub fragments_reused: u64,
    /// Residual coverage fragments Δ-scanned for this query.
    pub fragments_scanned: u64,
    /// Present when the budget expired mid-scan and the answer was
    /// finalized from a partial sample (CI widened accordingly).
    pub degraded: Option<Degradation>,
    /// Which reuse arm ran.
    pub reuse: Option<ReuseClass>,
}

impl ExecStats {
    /// Sum of the instrumented phases (excludes untimed slack).
    pub fn phases_total(&self) -> Duration {
        self.scan + self.processing + self.merge + self.estimate
    }

    /// Accumulate another query's stats (cumulative series).
    pub fn accumulate(&mut self, other: &ExecStats) {
        self.scan += other.scan;
        self.processing += other.processing;
        self.merge += other.merge;
        self.estimate += other.estimate;
        self.total += other.total;
        self.scanned_rows += other.scanned_rows;
        self.sampled_input_rows += other.sampled_input_rows;
        self.effective_selectivity += other.effective_selectivity;
        self.morsels_skipped += other.morsels_skipped;
        self.morsels_fast_pathed += other.morsels_fast_pathed;
        self.morsels_scanned += other.morsels_scanned;
        self.lane_covered_rows += other.lane_covered_rows;
        self.lane_spans += other.lane_spans;
        self.fragments_reused += other.fragments_reused;
        self.fragments_scanned += other.fragments_scanned;
        // Keep the most severe degradation across accumulated pipelines.
        self.degraded = match (self.degraded.take(), other.degraded) {
            (Some(a), Some(b)) => Some(a.merge(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Cumulative counters of a [`LaqyService`](crate::service::LaqyService):
/// how the concurrent workload actually hit the shared store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries accepted by [`run`](crate::service::LaqyService::run).
    pub queries: u64,
    /// Queries answered by full reuse (no sampling scan at all).
    pub full_hits: u64,
    /// Queries answered via a successful Δ-merge (partial reuse).
    pub partial_merges: u64,
    /// Queries that ran full online sampling and absorbed the result.
    pub online_runs: u64,
    /// Δ sampling scans actually performed.
    pub delta_scans: u64,
    /// Full online sampling scans actually performed.
    pub online_scans: u64,
    /// Δ scans *avoided* because an identical uncovered interval was
    /// already being sampled by a concurrent client (piggyback).
    pub merges_deduped: u64,
    /// Online scans avoided the same way.
    pub online_deduped: u64,
    /// Δ merges discarded at revalidation (store changed concurrently;
    /// the query re-planned).
    pub merge_retries: u64,
    /// Reused estimates that failed the conservative support check and
    /// fell back to a full online run (§5.2.3 fallback, service-side).
    pub support_fallbacks: u64,
    /// Total nanoseconds threads spent waiting to acquire the store and
    /// catalog locks (contention telemetry).
    pub lock_wait_nanos: u64,
    /// Morsels skipped by zone-map pruning across all served scans.
    pub morsels_skipped: u64,
    /// Morsels fast-pathed (all-matching, no per-row eval) across all
    /// served scans.
    pub morsels_fast_pathed: u64,
    /// Morsels that needed per-row evaluation across all served scans.
    pub morsels_scanned: u64,
    /// Rows answered exactly from pre-aggregate lanes (never scanned or
    /// sampled) across all served queries.
    pub lane_covered_rows: u64,
    /// Stored samples merged by coverage plans across all queries.
    pub fragments_reused: u64,
    /// Residual coverage fragments Δ-scanned across all queries.
    pub fragments_scanned: u64,
    /// Fragment Δ-scans avoided because a concurrent client was already
    /// scanning the identical fragment (per-fragment piggyback).
    pub fragments_deduped: u64,
    /// Queries answered from a partial sample after their budget expired
    /// (degraded answers with widened CIs).
    pub degraded_answers: u64,
    /// Faults the `laqy_faults` registry injected into this service's
    /// queries (always 0 outside `--cfg laqy_faults` builds).
    pub faults_injected: u64,
    /// Snapshot recoveries that had to fall back past a corrupt or
    /// truncated generation.
    pub snapshots_recovered: u64,
    /// Ingest batches accepted by
    /// [`ingest`](crate::service::LaqyService::ingest).
    pub ingest_batches: u64,
    /// Rows appended across all ingest batches.
    pub ingest_rows: u64,
    /// Stored-sample absorb passes that caught a sample up to a newer
    /// row watermark (incremental reservoir maintenance, not eviction).
    pub absorbed_samples: u64,
    /// Appended rows offered to stored samples' reservoirs by those
    /// absorb passes.
    pub absorbed_rows: u64,
    /// Ingest batches durably appended to the write-ahead log before
    /// being applied (0 when the WAL is disabled).
    pub wal_appends: u64,
    /// WAL records replayed during recovery.
    pub wal_replays: u64,
}

impl ServiceStats {
    /// Sampling scans performed (Δ + online): the work the shared store
    /// could not elide.
    pub fn scans_performed(&self) -> u64 {
        self.delta_scans + self.online_scans
    }

    /// Sampling scans avoided via in-flight dedup.
    pub fn scans_deduped(&self) -> u64 {
        self.merges_deduped + self.online_deduped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_adds_everything() {
        let mut a = ExecStats {
            scan: Duration::from_millis(10),
            processing: Duration::from_millis(5),
            merge: Duration::from_millis(1),
            estimate: Duration::from_millis(2),
            total: Duration::from_millis(20),
            scanned_rows: 100,
            sampled_input_rows: 50,
            effective_selectivity: 0.5,
            morsels_skipped: 7,
            morsels_fast_pathed: 2,
            morsels_scanned: 3,
            lane_covered_rows: 30,
            lane_spans: 4,
            fragments_reused: 2,
            fragments_scanned: 1,
            degraded: None,
            reuse: Some(ReuseClass::Partial),
        };
        let b = a.clone();
        a.accumulate(&b);
        assert_eq!(a.scan, Duration::from_millis(20));
        assert_eq!(a.total, Duration::from_millis(40));
        assert_eq!(a.scanned_rows, 200);
        assert_eq!(a.effective_selectivity, 1.0);
        assert_eq!(a.morsels_skipped, 14);
        assert_eq!(a.morsels_fast_pathed, 4);
        assert_eq!(a.morsels_scanned, 6);
        assert_eq!(a.lane_covered_rows, 60);
        assert_eq!(a.lane_spans, 8);
        assert_eq!(a.fragments_reused, 4);
        assert_eq!(a.fragments_scanned, 2);
    }

    #[test]
    fn phases_total_sums_components() {
        let s = ExecStats {
            scan: Duration::from_millis(3),
            processing: Duration::from_millis(4),
            merge: Duration::from_millis(5),
            estimate: Duration::from_millis(6),
            ..Default::default()
        };
        assert_eq!(s.phases_total(), Duration::from_millis(18));
    }

    #[test]
    fn labels() {
        assert_eq!(ReuseClass::Full.label(), "full");
        assert_eq!(ReuseClass::Partial.label(), "partial");
        assert_eq!(ReuseClass::Online.label(), "online");
        assert_eq!(ReuseClass::Exact.label(), "exact");
    }
}
