//! The sample store: sample lifetime management and reuse classification
//! (paper §6, "sample lifetime management module that captures the
//! generated samples to allow reuse on subsequent queries").
//!
//! The store owns materialized stratified samples together with their
//! [`SampleDescriptor`]s. For an incoming logical sampler it classifies the
//! best reuse opportunity (full / partial / none — the dispatch of
//! Algorithm 1) and merges Δ samples into stored ones, extending their
//! predicate coverage. An optional byte budget with LRU eviction hooks this
//! store into Taster-style storage management (paper §8).

use std::sync::atomic::{AtomicU64, Ordering};

use laqy_engine::GroupKey;
use laqy_sampling::{merge_stratified, Lehmer64, StratifiedSampler};

use crate::descriptor::{Predicates, SampleDescriptor};
use crate::sampler_ops::{SampleSchema, SampleTuple};

/// Stable identity of a stored sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SampleId(u64);

/// A materialized sample with its descriptor and payload schema.
pub struct StoredSample {
    /// Identity and coverage.
    pub descriptor: SampleDescriptor,
    /// Payload tuple layout.
    pub schema: SampleSchema,
    /// The stratified sample itself (ownership of the group-by hash table,
    /// §6.3).
    pub sample: StratifiedSampler<GroupKey, SampleTuple>,
    // Atomic so the concurrent service's read path (classification +
    // full-reuse lookup under a shared `RwLock` read guard) can refresh
    // the LRU stamp without taking the write lock.
    last_used: AtomicU64,
    bytes: usize,
}

impl StoredSample {
    fn measure_bytes(&mut self) {
        self.bytes = self.sample.heap_bytes();
    }
}

/// How a query's sampler requirement relates to the store's contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReuseDecision {
    /// A stored sample's predicates subsume the query's: use it directly
    /// ("full reuse: offline"), possibly tightening.
    Full {
        /// The subsuming sample.
        id: SampleId,
    },
    /// A stored sample partially overlaps: build a Δ sample on `delta` and
    /// merge ("partial reuse: delta range sample").
    Partial {
        /// The partially-matching sample.
        id: SampleId,
        /// Predicates for the Δ sampler (pushed down the plan).
        delta: Predicates,
        /// The single predicate column along which coverage is extended.
        varying: String,
    },
    /// Nothing usable: full online sampling.
    None,
}

/// The sample store.
pub struct SampleStore {
    samples: Vec<(SampleId, StoredSample)>,
    next_id: u64,
    // Atomic for the same reason as `StoredSample::last_used`: shared
    // readers advance the logical clock without exclusive access.
    clock: AtomicU64,
    budget_bytes: Option<usize>,
    evictions: u64,
}

impl SampleStore {
    /// Unbounded store.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            next_id: 0,
            clock: AtomicU64::new(0),
            budget_bytes: None,
            evictions: 0,
        }
    }

    /// Store with an LRU-evicted byte budget.
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self {
            budget_bytes: Some(budget_bytes),
            ..Self::new()
        }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total payload bytes held.
    pub fn total_bytes(&self) -> usize {
        self.samples.iter().map(|(_, s)| s.bytes).sum()
    }

    /// Number of budget-driven evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Classify the best reuse opportunity for a query's logical sampler —
    /// the store-side decision of **Algorithm 1**.
    pub fn classify(&self, query: &SampleDescriptor) -> ReuseDecision {
        if query.predicates.is_unsatisfiable() {
            return ReuseDecision::None;
        }
        let mut best_partial: Option<(SampleId, Predicates, String, u64)> = None;
        for (id, stored) in &self.samples {
            if !stored.descriptor.matches_characteristics(query) {
                continue;
            }
            if stored.descriptor.predicates.subsumes(&query.predicates) {
                return ReuseDecision::Full { id: *id };
            }
            if let Some((delta, varying)) = query
                .predicates
                .delta_against(&stored.descriptor.predicates)
            {
                let delta_measure = delta.get(&varying).map(|s| s.measure()).unwrap_or(0);
                let query_measure = query
                    .predicates
                    .get(&varying)
                    .map(|s| s.measure())
                    .unwrap_or(u64::MAX);
                // Partial reuse only pays off if some of the query range is
                // already covered.
                if delta_measure < query_measure {
                    let better = match &best_partial {
                        Some((_, _, _, best)) => delta_measure < *best,
                        None => true,
                    };
                    if better {
                        best_partial = Some((*id, delta, varying, delta_measure));
                    }
                }
            }
        }
        match best_partial {
            Some((id, delta, varying, _)) => ReuseDecision::Partial { id, delta, varying },
            None => ReuseDecision::None,
        }
    }

    /// Access a stored sample, updating its LRU stamp. Shared access
    /// suffices: the touch is a relaxed atomic store, so concurrent
    /// readers (the service's full-reuse path) never need the write lock.
    pub fn get(&self, id: SampleId) -> Option<&StoredSample> {
        let clock = self.tick();
        self.samples.iter().find(|(i, _)| *i == id).map(|(_, s)| {
            s.last_used.store(clock, Ordering::Relaxed);
            s
        })
    }

    /// Advance and read the logical LRU clock.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Access without touching the LRU stamp.
    pub fn peek(&self, id: SampleId) -> Option<&StoredSample> {
        self.samples.iter().find(|(i, _)| *i == id).map(|(_, s)| s)
    }

    /// Iterate stored descriptors.
    pub fn descriptors(&self) -> impl Iterator<Item = (SampleId, &SampleDescriptor)> {
        self.samples.iter().map(|(id, s)| (*id, &s.descriptor))
    }

    /// Iterate stored samples in full (snapshot/persistence use).
    pub fn iter_samples(&self) -> impl Iterator<Item = &StoredSample> {
        self.samples.iter().map(|(_, s)| s)
    }

    /// Insert a sample verbatim, bypassing merge/replace logic (snapshot
    /// restore). The budget is still enforced.
    pub fn insert_raw(
        &mut self,
        descriptor: SampleDescriptor,
        schema: SampleSchema,
        sample: StratifiedSampler<GroupKey, SampleTuple>,
    ) -> SampleId {
        let clock = self.tick();
        let id = SampleId(self.next_id);
        self.next_id += 1;
        let mut stored = StoredSample {
            descriptor,
            schema,
            sample,
            last_used: AtomicU64::new(clock),
            bytes: 0,
        };
        stored.measure_bytes();
        self.samples.push((id, stored));
        self.enforce_budget(id);
        id
    }

    /// Insert a freshly built sample, combining it with a stored
    /// same-characteristics sample when their coverages are disjoint along
    /// a single column (valid union coverage — §5's non-overlap
    /// requirement). Returns the id holding the data afterwards.
    pub fn absorb(
        &mut self,
        descriptor: SampleDescriptor,
        schema: SampleSchema,
        sample: StratifiedSampler<GroupKey, SampleTuple>,
        rng: &mut Lehmer64,
    ) -> SampleId {
        let clock = self.tick();
        // Try to merge with an existing disjoint sample of the same shape.
        let target = self.samples.iter().position(|(_, s)| {
            s.descriptor.matches_characteristics(&descriptor)
                && descriptor.matches_characteristics(&s.descriptor)
                && disjoint_single_column(&s.descriptor.predicates, &descriptor.predicates)
                    .is_some()
        });
        if let Some(pos) = target {
            let (id, stored) = &mut self.samples[pos];
            let varying =
                disjoint_single_column(&stored.descriptor.predicates, &descriptor.predicates)
                    .expect("checked above");
            let old = std::mem::replace(
                &mut stored.sample,
                StratifiedSampler::new(descriptor.k.max(1)),
            );
            stored.sample = merge_stratified(old, sample, rng);
            stored.descriptor.predicates = stored
                .descriptor
                .predicates
                .union_on(&varying, &descriptor.predicates);
            stored.last_used.store(clock, Ordering::Relaxed);
            stored.measure_bytes();
            let id = *id;
            self.enforce_budget(id);
            return id;
        }
        // Replace any stored sample this one strictly subsumes.
        self.samples.retain(|(_, s)| {
            !(s.descriptor.matches_characteristics(&descriptor)
                && descriptor.matches_characteristics(&s.descriptor)
                && descriptor.predicates.subsumes(&s.descriptor.predicates))
        });
        let id = SampleId(self.next_id);
        self.next_id += 1;
        let mut stored = StoredSample {
            descriptor,
            schema,
            sample,
            last_used: AtomicU64::new(clock),
            bytes: 0,
        };
        stored.measure_bytes();
        self.samples.push((id, stored));
        self.enforce_budget(id);
        id
    }

    /// Merge a Δ sample into the stored sample `id`, extending its coverage
    /// along `varying` by `delta_predicates` (step 4 of Figure 7).
    pub fn merge_delta(
        &mut self,
        id: SampleId,
        delta_sample: StratifiedSampler<GroupKey, SampleTuple>,
        delta_predicates: &Predicates,
        varying: &str,
        rng: &mut Lehmer64,
    ) -> bool {
        let clock = self.tick();
        let Some((_, stored)) = self.samples.iter_mut().find(|(i, _)| *i == id) else {
            return false;
        };
        let old = std::mem::replace(
            &mut stored.sample,
            StratifiedSampler::new(stored.descriptor.k.max(1)),
        );
        stored.sample = merge_stratified(old, delta_sample, rng);
        stored.descriptor.predicates = stored
            .descriptor
            .predicates
            .union_on(varying, delta_predicates);
        stored.last_used.store(clock, Ordering::Relaxed);
        stored.measure_bytes();
        self.enforce_budget(id);
        true
    }

    /// Drop a sample.
    pub fn remove(&mut self, id: SampleId) -> bool {
        let before = self.samples.len();
        self.samples.retain(|(i, _)| *i != id);
        self.samples.len() != before
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    fn enforce_budget(&mut self, protect: SampleId) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        while self.total_bytes() > budget && self.samples.len() > 1 {
            // Evict the least recently used sample, never the protected one.
            let victim = self
                .samples
                .iter()
                .filter(|(i, _)| *i != protect)
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(i, _)| *i);
            match victim {
                Some(v) => {
                    self.remove(v);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }
}

impl Default for SampleStore {
    fn default() -> Self {
        Self::new()
    }
}

/// If `a` and `b` are identical except for one column whose coverage sets
/// are disjoint, return that column.
fn disjoint_single_column(a: &Predicates, b: &Predicates) -> Option<String> {
    let cols_a: Vec<&str> = a.columns().collect();
    let cols_b: Vec<&str> = b.columns().collect();
    if cols_a != cols_b {
        return None;
    }
    let mut varying: Option<&str> = None;
    for col in cols_a {
        let (sa, sb) = (a.get(col).unwrap(), b.get(col).unwrap());
        if sa == sb {
            continue;
        }
        if sa.overlaps(sb) {
            return None;
        }
        match varying {
            None => varying = Some(col),
            Some(_) => return None,
        }
    }
    varying.map(|v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{Interval, IntervalSet};
    use crate::sampler_ops::SlotKind;
    use laqy_sampling::Lehmer64;

    fn iv(lo: i64, hi: i64) -> IntervalSet {
        IntervalSet::of(Interval::new(lo, hi))
    }

    fn desc(lo: i64, hi: i64) -> SampleDescriptor {
        SampleDescriptor::new(
            "lineorder",
            vec!["lo_orderdate".into()],
            vec!["lo_intkey".into(), "lo_revenue".into()],
            Predicates::on("lo_intkey", iv(lo, hi)),
            8,
        )
    }

    fn schema() -> SampleSchema {
        SampleSchema::new(vec![
            ("lo_intkey".into(), SlotKind::Int),
            ("lo_revenue".into(), SlotKind::Int),
        ])
    }

    /// Build a toy stratified sample: strata 0..strata, `per` tuples each,
    /// intkey values drawn from [lo, hi].
    fn toy_sample(strata: i64, per: i64, lo: i64) -> StratifiedSampler<GroupKey, SampleTuple> {
        let mut rng = Lehmer64::new(1);
        let mut s = StratifiedSampler::new(8);
        for g in 0..strata {
            for i in 0..per {
                s.offer(
                    GroupKey::new(&[g]),
                    SampleTuple::from_slice(&[lo + i, 100 + i]),
                    &mut rng,
                );
            }
        }
        s
    }

    use crate::sampler_ops::SampleTuple;

    #[test]
    fn classify_empty_store_is_none() {
        let store = SampleStore::new();
        assert_eq!(store.classify(&desc(0, 99)), ReuseDecision::None);
    }

    #[test]
    fn full_partial_none_classification() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(2);
        let id = store.absorb(desc(0, 99), schema(), toy_sample(3, 20, 0), &mut rng);

        // Subsumed ⇒ full reuse.
        assert_eq!(store.classify(&desc(10, 50)), ReuseDecision::Full { id });
        // Overlapping ⇒ partial with the uncovered remainder as Δ.
        match store.classify(&desc(50, 149)) {
            ReuseDecision::Partial {
                id: pid,
                delta,
                varying,
            } => {
                assert_eq!(pid, id);
                assert_eq!(varying, "lo_intkey");
                assert_eq!(delta.get("lo_intkey").unwrap(), &iv(100, 149));
            }
            other => panic!("expected partial reuse, got {other:?}"),
        }
        // Disjoint ⇒ none.
        assert_eq!(store.classify(&desc(200, 300)), ReuseDecision::None);
    }

    #[test]
    fn classify_prefers_smaller_delta() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(3);
        let _small = store.absorb(desc(0, 49), schema(), toy_sample(2, 10, 0), &mut rng);
        let big = store.absorb(desc(200, 349), schema(), toy_sample(2, 10, 200), &mut rng);
        // Query [150, 360]: vs sample A delta = [150,360] minus [0,49] → still
        // [150,360] (no overlap ⇒ not partial); vs sample B delta = [150,199] ∪ [350,360].
        match store.classify(&desc(150, 360)) {
            ReuseDecision::Partial { id, delta, .. } => {
                assert_eq!(id, big);
                assert_eq!(delta.get("lo_intkey").unwrap().measure(), 50 + 11);
            }
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn characteristics_mismatch_prevents_reuse() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(4);
        store.absorb(desc(0, 99), schema(), toy_sample(2, 10, 0), &mut rng);
        // Different QCS.
        let mut q = desc(10, 20);
        q.qcs = vec!["lo_quantity".into()];
        assert_eq!(store.classify(&q), ReuseDecision::None);
        // Different k.
        let mut q = desc(10, 20);
        q.k = 16;
        assert_eq!(store.classify(&q), ReuseDecision::None);
        // QVS requiring a column the sample lacks.
        let mut q = desc(10, 20);
        q.qvs = vec!["lo_tax".into()];
        assert_eq!(store.classify(&q), ReuseDecision::None);
    }

    #[test]
    fn merge_delta_extends_coverage() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(5);
        let id = store.absorb(desc(0, 99), schema(), toy_sample(2, 30, 0), &mut rng);
        let delta_pred = Predicates::on("lo_intkey", iv(100, 199));
        assert!(store.merge_delta(
            id,
            toy_sample(2, 30, 100),
            &delta_pred,
            "lo_intkey",
            &mut rng
        ));
        // Coverage is now [0, 199] ⇒ full reuse for [0, 150].
        assert_eq!(store.classify(&desc(0, 150)), ReuseDecision::Full { id });
        let stored = store.peek(id).unwrap();
        assert_eq!(stored.sample.total_weight(), 120);
    }

    #[test]
    fn merge_delta_unknown_id_is_false() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(6);
        assert!(!store.merge_delta(
            SampleId(999),
            toy_sample(1, 1, 0),
            &Predicates::none(),
            "x",
            &mut rng
        ));
    }

    #[test]
    fn absorb_merges_disjoint_same_shape() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(7);
        let a = store.absorb(desc(0, 99), schema(), toy_sample(2, 10, 0), &mut rng);
        let b = store.absorb(desc(150, 199), schema(), toy_sample(2, 10, 150), &mut rng);
        assert_eq!(a, b, "disjoint same-shape samples merge in place");
        assert_eq!(store.len(), 1);
        let d = store.peek(a).unwrap();
        let set = d.descriptor.predicates.get("lo_intkey").unwrap();
        assert_eq!(set.intervals().len(), 2);
    }

    #[test]
    fn absorb_replaces_subsumed_samples() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(8);
        store.absorb(desc(10, 20), schema(), toy_sample(2, 5, 10), &mut rng);
        // Overlapping (not disjoint) and subsuming ⇒ replaces.
        store.absorb(desc(0, 99), schema(), toy_sample(2, 20, 0), &mut rng);
        assert_eq!(store.len(), 1);
        let (_, d) = store.descriptors().next().unwrap();
        assert_eq!(d.predicates.get("lo_intkey").unwrap(), &iv(0, 99));
    }

    #[test]
    fn budget_evicts_lru() {
        let mut rng = Lehmer64::new(9);
        // Each toy sample: 2 strata × 8-cap reservoirs of 64-byte tuples.
        let one = toy_sample(2, 10, 0).heap_bytes();
        let mut store = SampleStore::with_budget(one * 2);
        let a = store.absorb(desc(0, 9), schema(), toy_sample(2, 10, 0), &mut rng);
        // A different shape so it cannot merge with `a`.
        let mut qb = desc(2000, 2009);
        qb.qcs = vec!["lo_discount".into()];
        let _b = store.absorb(qb, schema(), toy_sample(2, 10, 2000), &mut rng);
        // Touch `a` so the next insertion evicts `b`.
        store.get(a);
        let mut q = desc(4000, 4009);
        q.qcs = vec!["lo_quantity".into()]; // different shape: no merge
        let _c = store.absorb(q, schema(), toy_sample(2, 10, 4000), &mut rng);
        assert!(store.len() <= 2);
        assert!(store.peek(a).is_some(), "recently used sample must survive");
        assert!(store.evictions() >= 1);
    }

    #[test]
    fn unsatisfiable_query_is_none() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(10);
        store.absorb(desc(0, 99), schema(), toy_sample(2, 10, 0), &mut rng);
        let mut q = desc(0, 0);
        q.predicates = Predicates::on("lo_intkey", IntervalSet::empty());
        assert_eq!(store.classify(&q), ReuseDecision::None);
    }
}
