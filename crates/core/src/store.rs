//! The sample store: sample lifetime management and reuse classification
//! (paper §6, "sample lifetime management module that captures the
//! generated samples to allow reuse on subsequent queries").
//!
//! The store owns materialized stratified samples together with their
//! [`SampleDescriptor`]s. For an incoming logical sampler it classifies the
//! best reuse opportunity (full / partial / none — the dispatch of
//! Algorithm 1) and merges Δ samples into stored ones, extending their
//! predicate coverage. The generalized [`SampleStore::plan_coverage`]
//! extends single-sample classification to a greedy set cover: several
//! pairwise-disjoint stored samples plus the residual uncovered region as
//! interval boxes, feeding the k-way reservoir merge. An optional byte
//! budget with LRU eviction hooks this store into Taster-style storage
//! management (paper §8).

use laqy_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use laqy_sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use laqy_engine::GroupKey;
use laqy_sampling::{merge_stratified, Lehmer64, StratifiedSampler};

use crate::descriptor::{Predicates, SampleDescriptor};
use crate::sampler_ops::{SampleSchema, SampleTuple};

/// Stable identity of a stored sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SampleId(u64);

/// A materialized sample with its descriptor and payload schema.
pub struct StoredSample {
    /// Identity and coverage.
    pub descriptor: SampleDescriptor,
    /// Payload tuple layout.
    pub schema: SampleSchema,
    /// The stratified sample itself (ownership of the group-by hash table,
    /// §6.3).
    pub sample: StratifiedSampler<GroupKey, SampleTuple>,
    /// Row watermark this sample was drawn at: it fully represents its
    /// predicate box over base rows `0..watermark`. Appended rows land
    /// past the watermark; [`SampleStore::absorb_appended`] offers them to
    /// the reservoirs (advancing the watermark), and the coverage planner
    /// treats any remaining gap as a residual tail fragment.
    pub watermark: u64,
    // Atomic so the concurrent service's read path (classification +
    // full-reuse lookup under a shared `RwLock` read guard) can refresh
    // the LRU stamp without taking the write lock.
    last_used: AtomicU64,
    bytes: usize,
}

impl StoredSample {
    fn measure_bytes(&mut self) {
        self.bytes = self.sample.heap_bytes();
    }

    /// Estimated payload heap bytes (the unit of budget accounting).
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// How a query's sampler requirement relates to the store's contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReuseDecision {
    /// A stored sample's predicates subsume the query's: use it directly
    /// ("full reuse: offline"), possibly tightening.
    Full {
        /// The subsuming sample.
        id: SampleId,
    },
    /// A stored sample partially overlaps: build a Δ sample on `delta` and
    /// merge ("partial reuse: delta range sample").
    Partial {
        /// The partially-matching sample.
        id: SampleId,
        /// Predicates for the Δ sampler (pushed down the plan).
        delta: Predicates,
        /// The single predicate column along which coverage is extended.
        varying: String,
    },
    /// Nothing usable: full online sampling.
    None,
}

/// A multi-sample reuse plan — the coverage-planning generalization of
/// [`ReuseDecision`]: instead of one stored sample and one Δ interval, a
/// *set* of stored samples (pairwise disjoint in population, §5.1's
/// merge precondition) plus the residual uncovered region of the query
/// box as a union of pairwise-disjoint per-column interval boxes. Each
/// fragment is Δ-scanned once; the lazy sample is the k-way reservoir
/// merge of the selected samples and the fragment samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoveragePlan {
    /// Selected stored samples, pairwise disjoint in population.
    pub samples: Vec<SampleId>,
    /// Residual uncovered region: pairwise-disjoint predicate boxes, each
    /// disjoint from every selected sample's population. Every box
    /// constrains exactly the query's constrained columns.
    pub fragments: Vec<Predicates>,
    /// Un-absorbed append tails of the selected samples: for each selected
    /// sample drawn at a watermark below the table's, the rows
    /// `[from_row, table watermark)` within its population are not yet
    /// represented and must be Δ-scanned (with the row floor pushed down)
    /// before the k-way merge. Row-disjoint from the sample itself, so the
    /// merge precondition still holds.
    pub tails: Vec<TailFragment>,
}

/// One selected sample's un-absorbed append tail (see
/// [`CoveragePlan::tails`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailFragment {
    /// The stale selected sample.
    pub id: SampleId,
    /// First base row the sample does not represent (its watermark).
    pub from_row: u64,
    /// The sample's full population predicates: scanning the tail over
    /// them (not just the query box) lets the tail sample be absorbed
    /// back into the stored sample, advancing its watermark.
    pub predicates: Predicates,
}

/// Outcome of one [`SampleStore::absorb_appended`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbsorbReport {
    /// Samples whose reservoirs absorbed the appended rows in place.
    pub samples_absorbed: u64,
    /// Appended rows offered to reservoirs (post-predicate-filter).
    pub rows_absorbed: u64,
    /// Samples dropped because the appended table joins into their
    /// population (join output for already-sampled rows may have changed).
    pub samples_invalidated: u64,
}

impl AbsorbReport {
    /// Accumulate another shard's report into this one.
    pub fn merge(&mut self, other: &AbsorbReport) {
        self.samples_absorbed += other.samples_absorbed;
        self.rows_absorbed += other.rows_absorbed;
        self.samples_invalidated += other.samples_invalidated;
    }
}

impl CoveragePlan {
    /// Total residual measure (sum of fragment box measures).
    pub fn residual_measure(&self) -> u128 {
        self.fragments.iter().map(|f| f.box_measure()).sum()
    }
}

/// Fragment-count guard: greedy selection stops before a candidate whose
/// subtraction would shatter the residual into more boxes than separate
/// Δ-scans are worth.
const MAX_COVERAGE_FRAGMENTS: usize = 16;

/// The sample store.
pub struct SampleStore {
    samples: Vec<(SampleId, StoredSample)>,
    next_id: u64,
    // Shard-aware id allocation: shard `i` of an N-way [`ShardedStore`]
    // starts at `i` and strides by `N`, so ids are globally unique and
    // `id mod N` recovers the owning shard. A standalone store strides
    // by 1.
    id_stride: u64,
    // Atomic for the same reason as `StoredSample::last_used`: shared
    // readers advance the logical clock without exclusive access.
    clock: AtomicU64,
    budget_bytes: Option<usize>,
    evictions: u64,
}

impl SampleStore {
    /// Unbounded store.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            next_id: 0,
            id_stride: 1,
            clock: AtomicU64::new(0),
            budget_bytes: None,
            evictions: 0,
        }
    }

    /// Store with an LRU-evicted byte budget.
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self {
            budget_bytes: Some(budget_bytes),
            ..Self::new()
        }
    }

    /// Store allocating ids `start, start + stride, start + 2·stride, …` —
    /// the per-shard constructor used by [`ShardedStore`].
    pub(crate) fn with_id_stride(start: u64, stride: u64) -> Self {
        Self {
            next_id: start,
            id_stride: stride.max(1),
            ..Self::new()
        }
    }

    /// Allocate the next id in this store's stride class.
    fn alloc_id(&mut self) -> SampleId {
        let id = SampleId(self.next_id);
        self.next_id += self.id_stride;
        id
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total payload bytes held.
    pub fn total_bytes(&self) -> usize {
        self.samples.iter().map(|(_, s)| s.bytes).sum()
    }

    /// Number of budget-driven evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterate over stored samples (insertion order). Unlike
    /// [`SampleStore::get`], this does not touch LRU recency — it is for
    /// inspection (REPL `.samples`, tests), not for reuse.
    pub fn iter(&self) -> impl Iterator<Item = (SampleId, &StoredSample)> {
        self.samples.iter().map(|(id, s)| (*id, s))
    }

    /// Classify the best reuse opportunity for a query's logical sampler —
    /// the store-side decision of **Algorithm 1**.
    pub fn classify(&self, query: &SampleDescriptor) -> ReuseDecision {
        if query.predicates.is_unsatisfiable() {
            return ReuseDecision::None;
        }
        let mut best_partial: Option<(SampleId, Predicates, String, u64, u64)> = None;
        for (id, stored) in &self.samples {
            if !stored.descriptor.matches_characteristics(query) {
                continue;
            }
            if stored.descriptor.predicates.subsumes(&query.predicates) {
                return ReuseDecision::Full { id: *id };
            }
            if let Some((delta, varying)) = query
                .predicates
                .delta_against(&stored.descriptor.predicates)
            {
                let delta_measure = delta.get(&varying).map(|s| s.measure()).unwrap_or(0);
                // Normalize unbounded predicates explicitly: a query column
                // without a constraint has no finite measure, so such a
                // candidate cannot be ranked (and `delta_against` never
                // names one as varying) — skip it rather than rank with a
                // `u64::MAX` sentinel, which mis-ordered candidates.
                let Some(query_set) = query.predicates.get(&varying) else {
                    continue;
                };
                let query_measure = query_set.measure();
                // Partial reuse only pays off if some of the query range is
                // already covered.
                if delta_measure < query_measure {
                    // Candidates may vary along *different* columns, so raw
                    // Δ measures are not comparable — rank by fractional
                    // residual Δ/query via cross-multiplication.
                    let better = match &best_partial {
                        Some((_, _, _, best_d, best_q)) => {
                            (delta_measure as u128) * (*best_q as u128)
                                < (*best_d as u128) * (query_measure as u128)
                        }
                        None => true,
                    };
                    if better {
                        best_partial = Some((*id, delta, varying, delta_measure, query_measure));
                    }
                }
            }
        }
        match best_partial {
            Some((id, delta, varying, _, _)) => ReuseDecision::Partial { id, delta, varying },
            None => ReuseDecision::None,
        }
    }

    /// Plan multi-sample coverage for a query — the coverage-planning
    /// generalization of [`SampleStore::classify`].
    ///
    /// Greedy weighted set cover over the query box: repeatedly select the
    /// candidate sample removing the largest residual measure, keeping the
    /// selected set pairwise disjoint in population (§5.1's merge
    /// precondition), until `max_samples` are chosen or no candidate still
    /// covers any residual. Returns the selection plus the residual as
    /// pairwise-disjoint boxes, each disjoint from every selected sample's
    /// population — so one Δ-scan per fragment followed by a k-way merge
    /// never double-samples a row.
    ///
    /// Candidates must match the query's characteristics; merge candidates
    /// additionally need QVS equality (a superset-QVS sample has a
    /// different tuple layout, so it can serve full reuse but cannot be
    /// merged with fragment samples) and must not constrain columns the
    /// query leaves free (their residual would be unbounded).
    pub fn plan_coverage(&self, query: &SampleDescriptor, max_samples: usize) -> CoveragePlan {
        self.plan_coverage_at(query, max_samples, 0)
    }

    /// [`SampleStore::plan_coverage`] against a table at row watermark
    /// `watermark`: selected samples drawn below the watermark additionally
    /// contribute a [`TailFragment`] — the appended rows of their own
    /// population they have not absorbed — so the executor Δ-scans the
    /// tail (row floor pushed down) and the merge still covers every base
    /// row up to the watermark. Passing `0` recovers the static-table
    /// behavior (no sample can be stale).
    pub fn plan_coverage_at(
        &self,
        query: &SampleDescriptor,
        max_samples: usize,
        watermark: u64,
    ) -> CoveragePlan {
        if query.predicates.is_unsatisfiable() || max_samples == 0 {
            return CoveragePlan {
                samples: Vec::new(),
                fragments: Vec::new(),
                tails: Vec::new(),
            };
        }
        // Full subsumption short-circuits: no merge happens, so a
        // superset-QVS sample qualifies — but only when the sample is
        // fresh; a stale subsuming sample must go through the greedy path
        // so its append tail gets scanned and merged in.
        for (id, stored) in &self.samples {
            if stored.descriptor.matches_characteristics(query)
                && stored.descriptor.predicates.subsumes(&query.predicates)
                && stored.watermark >= watermark
            {
                return CoveragePlan {
                    samples: vec![*id],
                    fragments: Vec::new(),
                    tails: Vec::new(),
                };
            }
        }
        // (id, raw population predicates, coverage box within the query,
        // drawn-at watermark).
        let mut candidates: Vec<(SampleId, &Predicates, Predicates, u64)> = Vec::new();
        for (id, stored) in &self.samples {
            let d = &stored.descriptor;
            if !d.matches_characteristics(query) || d.qvs != query.qvs {
                continue;
            }
            if !d
                .predicates
                .columns()
                .all(|c| query.predicates.get(c).is_some())
            {
                continue;
            }
            let Some(cov) = query.predicates.intersect(&d.predicates) else {
                continue;
            };
            candidates.push((*id, &d.predicates, cov, stored.watermark));
        }
        let mut fragments = vec![query.predicates.clone()];
        let mut selected: Vec<(SampleId, &Predicates, u64)> = Vec::new();
        while selected.len() < max_samples && !fragments.is_empty() {
            let mut best: Option<(usize, u128)> = None;
            for (i, (id, raw, cov, _)) in candidates.iter().enumerate() {
                if selected.iter().any(|(sid, _, _)| sid == id) {
                    continue;
                }
                // Populations of merged samples must be pairwise disjoint.
                if selected
                    .iter()
                    .any(|(_, sel_raw, _)| raw.intersect(sel_raw).is_some())
                {
                    continue;
                }
                let gain: u128 = fragments
                    .iter()
                    .filter_map(|f| f.intersect(cov))
                    .map(|x| x.box_measure())
                    .sum();
                if gain == 0 {
                    continue;
                }
                if best.map(|(_, g)| gain > g).unwrap_or(true) {
                    best = Some((i, gain));
                }
            }
            let Some((i, _)) = best else {
                break;
            };
            let (id, raw, cov, w) = &candidates[i];
            let next: Vec<Predicates> = fragments.iter().flat_map(|f| f.subtract(cov)).collect();
            if next.len() > MAX_COVERAGE_FRAGMENTS {
                break;
            }
            selected.push((*id, raw, *w));
            fragments = next;
        }
        let tails = selected
            .iter()
            .filter(|(_, _, w)| *w < watermark)
            .map(|(id, raw, w)| TailFragment {
                id: *id,
                from_row: *w,
                predicates: (*raw).clone(),
            })
            .collect();
        CoveragePlan {
            samples: selected.into_iter().map(|(id, _, _)| id).collect(),
            fragments,
            tails,
        }
    }

    /// Access a stored sample, updating its LRU stamp. Shared access
    /// suffices: the touch is a relaxed atomic store, so concurrent
    /// readers (the service's full-reuse path) never need the write lock.
    pub fn get(&self, id: SampleId) -> Option<&StoredSample> {
        let clock = self.tick();
        self.samples.iter().find(|(i, _)| *i == id).map(|(_, s)| {
            s.last_used.store(clock, Ordering::Relaxed);
            s
        })
    }

    /// Advance and read the logical LRU clock.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Access without touching the LRU stamp.
    pub fn peek(&self, id: SampleId) -> Option<&StoredSample> {
        self.samples.iter().find(|(i, _)| *i == id).map(|(_, s)| s)
    }

    /// Iterate stored descriptors.
    pub fn descriptors(&self) -> impl Iterator<Item = (SampleId, &SampleDescriptor)> {
        self.samples.iter().map(|(id, s)| (*id, &s.descriptor))
    }

    /// Iterate stored samples in full (snapshot/persistence use).
    pub fn iter_samples(&self) -> impl Iterator<Item = &StoredSample> {
        self.samples.iter().map(|(_, s)| s)
    }

    /// Insert a sample verbatim, bypassing merge/replace logic (snapshot
    /// restore). `watermark` is the base-row watermark the sample was
    /// drawn at. The budget is still enforced.
    pub fn insert_raw(
        &mut self,
        descriptor: SampleDescriptor,
        schema: SampleSchema,
        sample: StratifiedSampler<GroupKey, SampleTuple>,
        watermark: u64,
    ) -> SampleId {
        let clock = self.tick();
        let id = self.alloc_id();
        let mut stored = StoredSample {
            descriptor,
            schema,
            sample,
            watermark,
            last_used: AtomicU64::new(clock),
            bytes: 0,
        };
        stored.measure_bytes();
        self.samples.push((id, stored));
        self.enforce_budget(id);
        id
    }

    /// Insert a sample under a caller-chosen id (snapshot reconstruction:
    /// a [`ShardedStore::snapshot`] must present stored samples under the
    /// ids the shards assigned, so `SampleId`s remain meaningful across
    /// the snapshot boundary).
    pub(crate) fn insert_with_id(
        &mut self,
        id: SampleId,
        descriptor: SampleDescriptor,
        schema: SampleSchema,
        sample: StratifiedSampler<GroupKey, SampleTuple>,
        watermark: u64,
        last_used: u64,
    ) {
        let mut stored = StoredSample {
            descriptor,
            schema,
            sample,
            watermark,
            last_used: AtomicU64::new(last_used),
            bytes: 0,
        };
        stored.measure_bytes();
        self.samples.push((id, stored));
        if id.0 >= self.next_id {
            self.next_id = id.0 + self.id_stride;
        }
        self.clock.fetch_max(last_used, Ordering::Relaxed);
    }

    /// Evict the least-recently-used sample, if more than one is held.
    /// Returns whether a sample was dropped. This is the single-step
    /// primitive behind both the standalone byte budget and the
    /// [`ShardedStore`]'s global-budget enforcement.
    pub(crate) fn evict_one_lru(&mut self) -> bool {
        if self.samples.len() <= 1 {
            return false;
        }
        let victim = self
            .samples
            .iter()
            .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
            .map(|(i, _)| *i);
        match victim {
            Some(v) => {
                self.remove(v);
                self.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Insert a freshly built sample, combining it with a stored
    /// same-characteristics sample when their coverages are disjoint along
    /// a single column (valid union coverage — §5's non-overlap
    /// requirement). `watermark` is the row watermark the new sample was
    /// scanned at; a merge takes the conservative minimum of both sides'
    /// watermarks. Returns the id holding the data afterwards.
    pub fn absorb(
        &mut self,
        descriptor: SampleDescriptor,
        schema: SampleSchema,
        sample: StratifiedSampler<GroupKey, SampleTuple>,
        watermark: u64,
        rng: &mut Lehmer64,
    ) -> SampleId {
        let clock = self.tick();
        // Try to merge with an existing disjoint sample of the same
        // shape; find the position and the varying column in one pass.
        let target = self.samples.iter().enumerate().find_map(|(pos, (_, s))| {
            if s.descriptor.matches_characteristics(&descriptor)
                && descriptor.matches_characteristics(&s.descriptor)
            {
                disjoint_single_column(&s.descriptor.predicates, &descriptor.predicates)
                    .map(|varying| (pos, varying))
            } else {
                None
            }
        });
        if let Some((pos, varying)) = target {
            let (id, stored) = &mut self.samples[pos];
            let old = std::mem::replace(
                &mut stored.sample,
                StratifiedSampler::new(descriptor.k.max(1)),
            );
            stored.sample = merge_stratified(old, sample, rng);
            stored.descriptor.predicates = stored
                .descriptor
                .predicates
                .union_on(&varying, &descriptor.predicates);
            stored.watermark = stored.watermark.min(watermark);
            stored.last_used.store(clock, Ordering::Relaxed);
            stored.measure_bytes();
            let id = *id;
            self.enforce_budget(id);
            return id;
        }
        // Replace any stored sample this one strictly subsumes.
        self.samples.retain(|(_, s)| {
            !(s.descriptor.matches_characteristics(&descriptor)
                && descriptor.matches_characteristics(&s.descriptor)
                && descriptor.predicates.subsumes(&s.descriptor.predicates))
        });
        let id = self.alloc_id();
        let mut stored = StoredSample {
            descriptor,
            schema,
            sample,
            watermark,
            last_used: AtomicU64::new(clock),
            bytes: 0,
        };
        stored.measure_bytes();
        self.samples.push((id, stored));
        self.enforce_budget(id);
        id
    }

    /// Merge a Δ sample into the stored sample `id`, extending its coverage
    /// along `varying` by `delta_predicates` (step 4 of Figure 7). The
    /// stored watermark drops to the conservative minimum of both sides.
    pub fn merge_delta(
        &mut self,
        id: SampleId,
        delta_sample: StratifiedSampler<GroupKey, SampleTuple>,
        delta_predicates: &Predicates,
        varying: &str,
        watermark: u64,
        rng: &mut Lehmer64,
    ) -> bool {
        let clock = self.tick();
        let Some((_, stored)) = self.samples.iter_mut().find(|(i, _)| *i == id) else {
            return false;
        };
        let old = std::mem::replace(
            &mut stored.sample,
            StratifiedSampler::new(stored.descriptor.k.max(1)),
        );
        stored.sample = merge_stratified(old, delta_sample, rng);
        stored.descriptor.predicates = stored
            .descriptor
            .predicates
            .union_on(varying, delta_predicates);
        stored.watermark = stored.watermark.min(watermark);
        stored.last_used.store(clock, Ordering::Relaxed);
        stored.measure_bytes();
        self.enforce_budget(id);
        true
    }

    /// Merge a tail Δ sample — rows `[from_row, new_watermark)` of the
    /// stored sample's own population — into sample `id`, advancing its
    /// watermark to `new_watermark`. The two sides are row-disjoint by
    /// construction, so the weighted merge precondition holds and the
    /// result is distributed like a from-scratch sample at the new
    /// watermark. Returns `false` if the sample vanished or its watermark
    /// no longer equals `from_row` — the guard that makes concurrent
    /// clients' tail scans idempotent: a second absorb of the same tail
    /// (or of a tail overlapping rows another client already caught up)
    /// is rejected instead of double-counting rows.
    pub fn absorb_tail(
        &mut self,
        id: SampleId,
        tail_sample: StratifiedSampler<GroupKey, SampleTuple>,
        from_row: u64,
        new_watermark: u64,
        rng: &mut Lehmer64,
    ) -> bool {
        let clock = self.tick();
        let Some((_, stored)) = self.samples.iter_mut().find(|(i, _)| *i == id) else {
            return false;
        };
        if stored.watermark != from_row || new_watermark <= from_row {
            return false;
        }
        let old = std::mem::replace(
            &mut stored.sample,
            StratifiedSampler::new(stored.descriptor.k.max(1)),
        );
        stored.sample = merge_stratified(old, tail_sample, rng);
        stored.watermark = stored.watermark.max(new_watermark);
        stored.last_used.store(clock, Ordering::Relaxed);
        stored.measure_bytes();
        self.enforce_budget(id);
        true
    }

    /// Incremental sample maintenance on append: offer the appended tail
    /// rows of `table` to every stored sample whose population is the bare
    /// table (input `"{table}[True]"` — no joins, no fixed predicate), as
    /// if the original reservoir pass had simply kept running. Continuing
    /// Algorithm R over new rows is distributionally identical to a
    /// from-scratch sample at the new watermark, so absorbed samples stay
    /// valid without eviction. Samples whose population *joins through*
    /// the appended table are invalidated instead (their join output for
    /// already-sampled rows may have changed); samples over the table with
    /// extra fixed predicates keep their stale watermark and are caught up
    /// lazily via coverage-plan tail fragments.
    pub fn absorb_appended(
        &mut self,
        table: &laqy_engine::Table,
        rng: &mut Lehmer64,
    ) -> AbsorbReport {
        let new_w = table.row_watermark();
        let simple = format!("{}[True]", table.name());
        let join_token = format!("⋈{}(", table.name());
        let before = self.samples.len();
        self.samples
            .retain(|(_, s)| !s.descriptor.input.contains(&join_token));
        let mut report = AbsorbReport {
            samples_invalidated: (before - self.samples.len()) as u64,
            ..AbsorbReport::default()
        };
        let clock = self.tick();
        for (_, stored) in &mut self.samples {
            if stored.descriptor.input != simple || stored.watermark >= new_w {
                continue;
            }
            // Resolve every column the absorb loop touches up front; a
            // miss (schema drift) leaves the sample stale rather than
            // corrupting it — the planner's tail fragments still apply.
            let mut pred_cols = Vec::new();
            let mut resolvable = true;
            for c in stored.descriptor.predicates.columns() {
                match (table.column(c), stored.descriptor.predicates.get(c)) {
                    (Ok(col), Some(set)) => pred_cols.push((col, set)),
                    _ => {
                        resolvable = false;
                        break;
                    }
                }
            }
            let Ok(key_cols) = stored
                .descriptor
                .qcs
                .iter()
                .map(|c| table.column(c))
                .collect::<laqy_engine::Result<Vec<_>>>()
            else {
                continue;
            };
            let Ok(val_cols) = stored
                .schema
                .column_names()
                .iter()
                .enumerate()
                .map(|(slot, c)| Ok((table.column(c)?, stored.schema.kind(slot))))
                .collect::<laqy_engine::Result<Vec<_>>>()
            else {
                continue;
            };
            if !resolvable {
                continue;
            }
            let mut key = Vec::with_capacity(key_cols.len());
            let mut vals = Vec::with_capacity(val_cols.len());
            for row in stored.watermark as usize..new_w as usize {
                if !pred_cols
                    .iter()
                    .all(|(col, set)| set.contains(col.i64_at(row)))
                {
                    continue;
                }
                key.clear();
                key.extend(key_cols.iter().map(|c| c.i64_at(row)));
                vals.clear();
                vals.extend(val_cols.iter().map(|(col, kind)| match kind {
                    crate::sampler_ops::SlotKind::Int => col.i64_at(row),
                    crate::sampler_ops::SlotKind::Float => col.f64_at(row).to_bits() as i64,
                }));
                stored
                    .sample
                    .offer(GroupKey::new(&key), SampleTuple::from_slice(&vals), rng);
                report.rows_absorbed += 1;
            }
            stored.watermark = new_w;
            stored.last_used.store(clock, Ordering::Relaxed);
            stored.measure_bytes();
            report.samples_absorbed += 1;
        }
        report
    }

    /// Drop every sample over `table` whose watermark exceeds `watermark`
    /// — the recovery guard: after a crash replays the WAL to a shorter
    /// table than the one a snapshot's samples were drawn against, those
    /// samples would reference rows that no longer exist. Samples over
    /// other tables (including joins *through* other tables) are
    /// untouched. Returns the number dropped.
    pub fn drop_beyond(&mut self, table: &str, watermark: u64) -> u64 {
        let base = format!("{table}[");
        let join_token = format!("⋈{table}(");
        let before = self.samples.len();
        self.samples.retain(|(_, s)| {
            s.watermark <= watermark
                || !(s.descriptor.input.starts_with(&base)
                    || s.descriptor.input.contains(&join_token))
        });
        (before - self.samples.len()) as u64
    }

    /// Drop a sample.
    pub fn remove(&mut self, id: SampleId) -> bool {
        let before = self.samples.len();
        self.samples.retain(|(i, _)| *i != id);
        self.samples.len() != before
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    fn enforce_budget(&mut self, protect: SampleId) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        while self.total_bytes() > budget && self.samples.len() > 1 {
            // Evict the least recently used sample, never the protected one.
            let victim = self
                .samples
                .iter()
                .filter(|(i, _)| *i != protect)
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(i, _)| *i);
            match victim {
                Some(v) => {
                    self.remove(v);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }
}

impl Default for SampleStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Maximum (and default) shard count of a [`ShardedStore`].
pub const STORE_SHARDS: usize = laqy_sync::classes::MAX_STORE_SHARDS;

// One static lock-class name per shard index, from the canonical registry
// (`laqy_sync::classes`): distinct names make each shard its own node in
// the lock-order graph, so the runtime detector *and* the static
// lock-order pass enforce the canonical ascending acquisition order used
// by whole-store operations (a same-name pool would have its edges
// skipped — see `laqy_sync::order`).
const SHARD_LOCK_NAMES: [&str; STORE_SHARDS] = laqy_sync::classes::STORE_SHARD_NAMES;

/// FNV-1a over `bytes`. The *only* descriptor→shard hashing primitive in
/// the workspace; an xtask lint rule keeps it (and any other shard
/// hashing) from leaking out of this file, so rehashing policy stays a
/// one-file change.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A descriptor-hash-sharded [`SampleStore`]: N independent stores, each
/// behind its own named `laqy_sync::RwLock`, so concurrent queries with
/// different sample fingerprints never contend on one global lock.
///
/// Routing hashes the descriptor *fingerprint* (table + QCS + QVS + k —
/// everything except predicates). All reuse, coverage-planning, and merge
/// candidates for a query share its fingerprint by construction, so
/// classification, planning, absorption, and consolidation are all
/// single-shard operations; no cross-shard transaction is ever needed on
/// the query path. Whole-store operations (snapshot, clear, restore) lock
/// shards in ascending index order — the canonical order the lock-order
/// detector enforces via the per-shard lock-class names.
///
/// The byte budget is global: each shard tracks its payload bytes in a
/// `laqy_sync::atomic` counter, and [`ShardWriteGuard`] re-checks the
/// global total on drop, evicting LRU entries from the shard it just
/// mutated until the total fits (or the shard is down to one sample).
pub struct ShardedStore {
    shards: Vec<RwLock<SampleStore>>,
    shard_bytes: Vec<AtomicUsize>,
    budget_bytes: Option<usize>,
}

impl ShardedStore {
    /// Build a store with `shards` shards (clamped to `1..=STORE_SHARDS`)
    /// and an optional global byte budget. One shard degenerates to the
    /// single-lock layout — the bench baseline.
    pub fn new(shards: usize, budget_bytes: Option<usize>) -> Self {
        let n = shards.clamp(1, STORE_SHARDS);
        Self {
            shards: (0..n)
                .map(|i| {
                    RwLock::named(
                        SHARD_LOCK_NAMES[i],
                        SampleStore::with_id_stride(i as u64, n as u64),
                    )
                })
                .collect(),
            shard_bytes: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            budget_bytes,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Global byte budget, if any.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget_bytes
    }

    /// Home shard of a descriptor (and of everything that could ever be
    /// reused, planned against, or merged with it).
    pub fn shard_for(&self, descriptor: &SampleDescriptor) -> usize {
        (fnv1a(descriptor.fingerprint().as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Home shard of a stored sample id (ids are strided by shard).
    pub fn shard_for_id(&self, id: SampleId) -> usize {
        (id.0 % self.shards.len() as u64) as usize
    }

    /// Hash an in-flight registry key to a registry shard. Lives here so
    /// the service never hashes anything itself (one hashing site, one
    /// lint rule).
    pub fn registry_shard(&self, key: &str) -> usize {
        (fnv1a(key.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Shared access to one shard.
    pub fn read_shard(&self, idx: usize) -> RwLockReadGuard<'_, SampleStore> {
        self.shards[idx].read()
    }

    /// Exclusive access to one shard; budget is re-enforced when the
    /// returned guard drops.
    pub fn write_shard(&self, idx: usize) -> ShardWriteGuard<'_> {
        ShardWriteGuard {
            guard: self.shards[idx].write(),
            owner: self,
            idx,
        }
    }

    /// Total stored samples across shards (ascending lock order).
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shards[i].read().len())
            .sum()
    }

    /// True when no shard holds a sample.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes across shards (ascending lock order).
    pub fn total_bytes(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shards[i].read().total_bytes())
            .sum()
    }

    /// Total budget-driven evictions across shards.
    pub fn evictions(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.shards[i].read().evictions())
            .sum()
    }

    /// A coherent owned copy of the whole store, sample ids preserved.
    /// Locks every shard in ascending canonical order and holds all the
    /// read guards simultaneously so the snapshot is a consistent cut.
    pub fn snapshot(&self) -> SampleStore {
        let guards: Vec<RwLockReadGuard<'_, SampleStore>> = (0..self.shards.len())
            .map(|i| self.shards[i].read())
            .collect();
        let mut out = SampleStore::new();
        for g in &guards {
            for (id, s) in g.iter() {
                out.insert_with_id(
                    id,
                    s.descriptor.clone(),
                    s.schema.clone(),
                    s.sample.clone(),
                    s.watermark,
                    s.last_used.load(Ordering::Relaxed),
                );
            }
            out.evictions += g.evictions();
        }
        out
    }

    /// Drop everything (ascending lock order, all writes held at once so
    /// no concurrent insert survives in a lower shard).
    pub fn clear(&self) {
        let mut guards: Vec<ShardWriteGuard<'_>> = (0..self.shards.len())
            .map(|i| self.write_shard(i))
            .collect();
        for g in &mut guards {
            g.clear();
        }
    }

    /// Replace all contents from a flat store (snapshot restore / sample
    /// import): clears every shard, then routes each sample to its home
    /// shard. Ids are re-allocated in the shards' stride classes.
    pub fn replace_from(&self, loaded: SampleStore) {
        let mut guards: Vec<ShardWriteGuard<'_>> = (0..self.shards.len())
            .map(|i| self.write_shard(i))
            .collect();
        for g in &mut guards {
            g.clear();
        }
        for (_, s) in loaded.samples {
            let idx =
                (fnv1a(s.descriptor.fingerprint().as_bytes()) % self.shards.len() as u64) as usize;
            guards[idx].insert_raw(s.descriptor, s.schema, s.sample, s.watermark);
        }
    }
}

/// Write guard over one shard of a [`ShardedStore`]. Dereferences to the
/// shard's [`SampleStore`]; on drop it refreshes the shard's byte counter
/// and enforces the store's *global* budget by LRU-evicting from this
/// shard while the global total overflows.
pub struct ShardWriteGuard<'a> {
    guard: RwLockWriteGuard<'a, SampleStore>,
    owner: &'a ShardedStore,
    idx: usize,
}

impl std::ops::Deref for ShardWriteGuard<'_> {
    type Target = SampleStore;
    fn deref(&self) -> &SampleStore {
        &self.guard
    }
}

impl std::ops::DerefMut for ShardWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut SampleStore {
        &mut self.guard
    }
}

impl Drop for ShardWriteGuard<'_> {
    fn drop(&mut self) {
        let bytes = self.guard.total_bytes();
        self.owner.shard_bytes[self.idx].store(bytes, Ordering::Relaxed);
        let Some(budget) = self.owner.budget_bytes else {
            return;
        };
        let global = |owner: &ShardedStore| -> usize {
            owner
                .shard_bytes
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .sum()
        };
        // Evict locally while the global total overflows. Other shards
        // shrink themselves the next time they are written; keeping at
        // least one sample per shard mirrors `enforce_budget`, so a
        // single oversized sample is held rather than thrashed.
        while global(self.owner) > budget && self.guard.evict_one_lru() {
            let bytes = self.guard.total_bytes();
            self.owner.shard_bytes[self.idx].store(bytes, Ordering::Relaxed);
        }
    }
}

/// If all predicate boxes constrain the same columns and differ along at
/// most one of them, return the union predicates (that column's sets
/// unioned, everything else shared). This is when a coverage plan's
/// merged region is itself expressible as a predicate box, so the merged
/// sample can be absorbed back into the store (a multi-column union of
/// boxes is generally not a box and must stay ephemeral).
pub(crate) fn union_single_column(preds: &[&Predicates]) -> Option<Predicates> {
    let first = *preds.first()?;
    let cols: Vec<&str> = first.columns().collect();
    for p in &preds[1..] {
        if p.columns().collect::<Vec<&str>>() != cols {
            return None;
        }
    }
    let mut varying: Option<&str> = None;
    for &c in &cols {
        if preds.iter().any(|p| p.get(c) != first.get(c)) {
            match varying {
                None => varying = Some(c),
                Some(_) => return None,
            }
        }
    }
    let Some(c) = varying else {
        return Some(first.clone());
    };
    let merged = preds
        .iter()
        .filter_map(|p| p.get(c))
        .fold(crate::interval::IntervalSet::empty(), |acc, s| acc.union(s));
    Some(first.clone().with(c, merged))
}

/// If `a` and `b` are identical except for one column whose coverage sets
/// are disjoint, return that column.
fn disjoint_single_column(a: &Predicates, b: &Predicates) -> Option<String> {
    let cols_a: Vec<&str> = a.columns().collect();
    let cols_b: Vec<&str> = b.columns().collect();
    if cols_a != cols_b {
        return None;
    }
    let mut varying: Option<&str> = None;
    for col in cols_a {
        let (Some(sa), Some(sb)) = (a.get(col), b.get(col)) else {
            // `col` came from `a.columns()` ∩ `b.columns()`; a miss here
            // means the predicate sets disagree after all.
            return None;
        };
        if sa == sb {
            continue;
        }
        if sa.overlaps(sb) {
            return None;
        }
        match varying {
            None => varying = Some(col),
            Some(_) => return None,
        }
    }
    varying.map(|v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{Interval, IntervalSet};
    use crate::sampler_ops::SlotKind;
    use laqy_sampling::Lehmer64;

    fn iv(lo: i64, hi: i64) -> IntervalSet {
        IntervalSet::of(Interval::new(lo, hi))
    }

    fn desc(lo: i64, hi: i64) -> SampleDescriptor {
        SampleDescriptor::new(
            "lineorder",
            vec!["lo_orderdate".into()],
            vec!["lo_intkey".into(), "lo_revenue".into()],
            Predicates::on("lo_intkey", iv(lo, hi)),
            8,
        )
    }

    fn schema() -> SampleSchema {
        SampleSchema::new(vec![
            ("lo_intkey".into(), SlotKind::Int),
            ("lo_revenue".into(), SlotKind::Int),
        ])
    }

    /// Build a toy stratified sample: strata 0..strata, `per` tuples each,
    /// intkey values drawn from [lo, hi].
    fn toy_sample(strata: i64, per: i64, lo: i64) -> StratifiedSampler<GroupKey, SampleTuple> {
        let mut rng = Lehmer64::new(1);
        let mut s = StratifiedSampler::new(8);
        for g in 0..strata {
            for i in 0..per {
                s.offer(
                    GroupKey::new(&[g]),
                    SampleTuple::from_slice(&[lo + i, 100 + i]),
                    &mut rng,
                );
            }
        }
        s
    }

    use crate::sampler_ops::SampleTuple;

    #[test]
    fn classify_empty_store_is_none() {
        let store = SampleStore::new();
        assert_eq!(store.classify(&desc(0, 99)), ReuseDecision::None);
    }

    #[test]
    fn full_partial_none_classification() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(2);
        let id = store.absorb(desc(0, 99), schema(), toy_sample(3, 20, 0), 0, &mut rng);

        // Subsumed ⇒ full reuse.
        assert_eq!(store.classify(&desc(10, 50)), ReuseDecision::Full { id });
        // Overlapping ⇒ partial with the uncovered remainder as Δ.
        match store.classify(&desc(50, 149)) {
            ReuseDecision::Partial {
                id: pid,
                delta,
                varying,
            } => {
                assert_eq!(pid, id);
                assert_eq!(varying, "lo_intkey");
                assert_eq!(delta.get("lo_intkey").unwrap(), &iv(100, 149));
            }
            other => panic!("expected partial reuse, got {other:?}"),
        }
        // Disjoint ⇒ none.
        assert_eq!(store.classify(&desc(200, 300)), ReuseDecision::None);
    }

    #[test]
    fn classify_prefers_smaller_delta() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(3);
        let _small = store.absorb(desc(0, 49), schema(), toy_sample(2, 10, 0), 0, &mut rng);
        let big = store.absorb(
            desc(200, 349),
            schema(),
            toy_sample(2, 10, 200),
            0,
            &mut rng,
        );
        // Query [150, 360]: vs sample A delta = [150,360] minus [0,49] → still
        // [150,360] (no overlap ⇒ not partial); vs sample B delta = [150,199] ∪ [350,360].
        match store.classify(&desc(150, 360)) {
            ReuseDecision::Partial { id, delta, .. } => {
                assert_eq!(id, big);
                assert_eq!(delta.get("lo_intkey").unwrap().measure(), 50 + 11);
            }
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn classify_ranks_by_fractional_residual() {
        // Query: x∈[0,999] ∧ y∈[0,9]. Candidate A covers 90% along x
        // (raw Δ = 100); candidate B covers 50% along y (raw Δ = 5).
        // Raw-measure ranking would pick B; fractional ranking picks A.
        let mut store = SampleStore::new();
        let with_preds = |p: Predicates| {
            let mut d = desc(0, 0);
            d.predicates = p;
            d
        };
        let query = with_preds(Predicates::on("x", iv(0, 999)).with("y", iv(0, 9)));
        let a = store.insert_raw(
            with_preds(Predicates::on("x", iv(0, 899)).with("y", iv(0, 9))),
            schema(),
            toy_sample(2, 10, 0),
            0,
        );
        let _b = store.insert_raw(
            with_preds(Predicates::on("x", iv(0, 999)).with("y", iv(0, 4))),
            schema(),
            toy_sample(2, 10, 0),
            0,
        );
        match store.classify(&query) {
            ReuseDecision::Partial { id, varying, .. } => {
                assert_eq!(id, a, "must rank by Δ/query fraction, not raw Δ");
                assert_eq!(varying, "x");
            }
            other => panic!("expected partial reuse, got {other:?}"),
        }
    }

    #[test]
    fn characteristics_mismatch_prevents_reuse() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(4);
        store.absorb(desc(0, 99), schema(), toy_sample(2, 10, 0), 0, &mut rng);
        // Different QCS.
        let mut q = desc(10, 20);
        q.qcs = vec!["lo_quantity".into()];
        assert_eq!(store.classify(&q), ReuseDecision::None);
        // Different k.
        let mut q = desc(10, 20);
        q.k = 16;
        assert_eq!(store.classify(&q), ReuseDecision::None);
        // QVS requiring a column the sample lacks.
        let mut q = desc(10, 20);
        q.qvs = vec!["lo_tax".into()];
        assert_eq!(store.classify(&q), ReuseDecision::None);
    }

    #[test]
    fn merge_delta_extends_coverage() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(5);
        let id = store.absorb(desc(0, 99), schema(), toy_sample(2, 30, 0), 0, &mut rng);
        let delta_pred = Predicates::on("lo_intkey", iv(100, 199));
        assert!(store.merge_delta(
            id,
            toy_sample(2, 30, 100),
            &delta_pred,
            "lo_intkey",
            0,
            &mut rng
        ));
        // Coverage is now [0, 199] ⇒ full reuse for [0, 150].
        assert_eq!(store.classify(&desc(0, 150)), ReuseDecision::Full { id });
        let stored = store.peek(id).unwrap();
        assert_eq!(stored.sample.total_weight(), 120);
    }

    #[test]
    fn merge_delta_unknown_id_is_false() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(6);
        assert!(!store.merge_delta(
            SampleId(999),
            toy_sample(1, 1, 0),
            &Predicates::none(),
            "x",
            0,
            &mut rng
        ));
    }

    #[test]
    fn absorb_merges_disjoint_same_shape() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(7);
        let a = store.absorb(desc(0, 99), schema(), toy_sample(2, 10, 0), 0, &mut rng);
        let b = store.absorb(
            desc(150, 199),
            schema(),
            toy_sample(2, 10, 150),
            0,
            &mut rng,
        );
        assert_eq!(a, b, "disjoint same-shape samples merge in place");
        assert_eq!(store.len(), 1);
        let d = store.peek(a).unwrap();
        let set = d.descriptor.predicates.get("lo_intkey").unwrap();
        assert_eq!(set.intervals().len(), 2);
    }

    #[test]
    fn absorb_replaces_subsumed_samples() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(8);
        store.absorb(desc(10, 20), schema(), toy_sample(2, 5, 10), 0, &mut rng);
        // Overlapping (not disjoint) and subsuming ⇒ replaces.
        store.absorb(desc(0, 99), schema(), toy_sample(2, 20, 0), 0, &mut rng);
        assert_eq!(store.len(), 1);
        let (_, d) = store.descriptors().next().unwrap();
        assert_eq!(d.predicates.get("lo_intkey").unwrap(), &iv(0, 99));
    }

    #[test]
    fn budget_evicts_lru() {
        let mut rng = Lehmer64::new(9);
        // Each toy sample: 2 strata × 8-cap reservoirs of 64-byte tuples.
        let one = toy_sample(2, 10, 0).heap_bytes();
        let mut store = SampleStore::with_budget(one * 2);
        let a = store.absorb(desc(0, 9), schema(), toy_sample(2, 10, 0), 0, &mut rng);
        // A different shape so it cannot merge with `a`.
        let mut qb = desc(2000, 2009);
        qb.qcs = vec!["lo_discount".into()];
        let _b = store.absorb(qb, schema(), toy_sample(2, 10, 2000), 0, &mut rng);
        // Touch `a` so the next insertion evicts `b`.
        store.get(a);
        let mut q = desc(4000, 4009);
        q.qcs = vec!["lo_quantity".into()]; // different shape: no merge
        let _c = store.absorb(q, schema(), toy_sample(2, 10, 4000), 0, &mut rng);
        assert!(store.len() <= 2);
        assert!(store.peek(a).is_some(), "recently used sample must survive");
        assert!(store.evictions() >= 1);
    }

    #[test]
    fn coverage_plan_combines_disjoint_fragments() {
        // Acceptance scenario: two disjoint stored samples each covering
        // 40% of the query range. Multi-sample planning leaves 20%
        // uncovered; the single-sample cap (the pre-refactor behavior)
        // leaves 60%.
        let mut store = SampleStore::new();
        // insert_raw keeps the samples separate (absorb would consolidate
        // disjoint same-shape coverage into one sample).
        let a = store.insert_raw(desc(0, 399), schema(), toy_sample(2, 10, 0), 0);
        let b = store.insert_raw(desc(600, 999), schema(), toy_sample(2, 10, 600), 0);
        let query = desc(0, 999);
        let query_measure = query.predicates.box_measure();

        let plan = store.plan_coverage(&query, 4);
        assert_eq!(plan.samples.len(), 2);
        assert!(plan.samples.contains(&a) && plan.samples.contains(&b));
        let frac = plan.residual_measure() as f64 / query_measure as f64;
        assert!(frac <= 0.2 + 1e-9, "multi-sample residual {frac} > 0.2");
        // Residual is exactly the middle gap.
        assert_eq!(plan.residual_measure(), 200);
        for f in &plan.fragments {
            assert_eq!(f.get("lo_intkey").unwrap(), &iv(400, 599));
        }

        let single = store.plan_coverage(&query, 1);
        assert_eq!(single.samples.len(), 1);
        let frac1 = single.residual_measure() as f64 / query_measure as f64;
        assert!(
            (frac1 - 0.6).abs() < 1e-9,
            "single-sample residual should be 0.6, got {frac1}"
        );
    }

    #[test]
    fn coverage_plan_full_subsumption_has_no_fragments() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(11);
        let id = store.absorb(desc(0, 999), schema(), toy_sample(2, 10, 0), 0, &mut rng);
        let plan = store.plan_coverage(&desc(100, 200), 4);
        assert_eq!(plan.samples, vec![id]);
        assert!(plan.fragments.is_empty());
        assert_eq!(plan.residual_measure(), 0);
    }

    #[test]
    fn coverage_plan_keeps_selected_populations_disjoint() {
        // Two overlapping stored samples: only one may be selected, and
        // every fragment must avoid both selected populations.
        let mut store = SampleStore::new();
        store.insert_raw(desc(0, 599), schema(), toy_sample(2, 10, 0), 0);
        store.insert_raw(desc(400, 899), schema(), toy_sample(2, 10, 400), 0);
        let plan = store.plan_coverage(&desc(0, 999), 4);
        assert_eq!(
            plan.samples.len(),
            1,
            "overlapping populations must not be merged together"
        );
        let sel = plan.samples[0];
        let sel_preds = store.peek(sel).unwrap().descriptor.predicates.clone();
        for f in &plan.fragments {
            assert!(f.intersect(&sel_preds).is_none());
        }
        // The larger-coverage candidate wins the greedy round.
        assert_eq!(
            sel_preds.get("lo_intkey").unwrap(),
            &iv(0, 599),
            "greedy picks the candidate with the larger residual gain"
        );
    }

    #[test]
    fn coverage_plan_excludes_superset_qvs_from_merges() {
        let mut store = SampleStore::new();
        // Superset-QVS sample: may serve full reuse, but has a different
        // tuple layout so it cannot participate in a k-way merge.
        let mut wide = desc(0, 399);
        wide.qvs.push("lo_tax".into());
        store.insert_raw(wide.clone(), schema(), toy_sample(2, 10, 0), 0);
        let plan = store.plan_coverage(&desc(0, 999), 4);
        assert!(plan.samples.is_empty(), "superset QVS cannot merge");
        assert_eq!(plan.fragments, vec![desc(0, 999).predicates]);
        // Full subsumption still allowed.
        let full = store.plan_coverage(&desc(100, 200), 4);
        assert_eq!(full.samples.len(), 1);
        assert!(full.fragments.is_empty());
    }

    #[test]
    fn coverage_plan_ignores_samples_constraining_free_columns() {
        let mut store = SampleStore::new();
        let mut d = desc(0, 399);
        d.predicates = Predicates::on("lo_intkey", iv(0, 399)).with("lo_extra", iv(0, 10));
        store.insert_raw(d, schema(), toy_sample(2, 10, 0), 0);
        // Query leaves lo_extra free: the sample covers only a slice of
        // that dimension, so it cannot contribute box coverage.
        let plan = store.plan_coverage(&desc(0, 999), 4);
        assert!(plan.samples.is_empty());
        assert_eq!(plan.fragments, vec![desc(0, 999).predicates]);
    }

    #[test]
    fn unsatisfiable_query_is_none() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(10);
        store.absorb(desc(0, 99), schema(), toy_sample(2, 10, 0), 0, &mut rng);
        let mut q = desc(0, 0);
        q.predicates = Predicates::on("lo_intkey", IntervalSet::empty());
        assert_eq!(store.classify(&q), ReuseDecision::None);
    }

    /// A descriptor with a distinct fingerprint (different QCS).
    fn desc_shaped(shape: usize, lo: i64, hi: i64) -> SampleDescriptor {
        let mut d = desc(lo, hi);
        d.qcs = vec![format!("qcs_{shape}")];
        d
    }

    #[test]
    fn shard_routing_is_stable_and_fingerprint_based() {
        let store = ShardedStore::new(STORE_SHARDS, None);
        // Same fingerprint, different predicates ⇒ same shard: every
        // reuse/merge candidate for a query lives on its home shard.
        assert_eq!(
            store.shard_for(&desc(0, 99)),
            store.shard_for(&desc(500, 999))
        );
        // Shapes spread: with 64 distinct fingerprints and 8 shards, at
        // least two shards must be hit (a constant hash would pin one).
        let hit: std::collections::HashSet<usize> = (0..64)
            .map(|s| store.shard_for(&desc_shaped(s, 0, 99)))
            .collect();
        assert!(hit.len() > 1, "hashing pinned every shape to one shard");
    }

    #[test]
    fn sharded_ids_are_globally_unique_and_route_back() {
        let store = ShardedStore::new(STORE_SHARDS, None);
        let mut ids = Vec::new();
        for s in 0..16 {
            let d = desc_shaped(s, 0, 99);
            let idx = store.shard_for(&d);
            let id = store
                .write_shard(idx)
                .insert_raw(d, schema(), toy_sample(2, 10, 0), 0);
            assert_eq!(store.shard_for_id(id), idx, "id must encode its shard");
            ids.push(id);
        }
        let uniq: std::collections::HashSet<SampleId> = ids.iter().copied().collect();
        assert_eq!(uniq.len(), ids.len(), "strided ids must never collide");
        assert_eq!(store.len(), 16);
    }

    #[test]
    fn snapshot_preserves_ids_and_contents() {
        let store = ShardedStore::new(STORE_SHARDS, None);
        let mut ids = Vec::new();
        for s in 0..6 {
            let d = desc_shaped(s, 0, 99);
            let idx = store.shard_for(&d);
            ids.push(
                store
                    .write_shard(idx)
                    .insert_raw(d, schema(), toy_sample(2, 10, 0), 0),
            );
        }
        let snap = store.snapshot();
        assert_eq!(snap.len(), 6);
        for id in ids {
            let s = snap
                .peek(id)
                .expect("snapshot must keep shard-assigned ids");
            assert_eq!(s.sample.total_weight(), 20);
        }
    }

    #[test]
    fn replace_from_reroutes_to_home_shards() {
        let store = ShardedStore::new(STORE_SHARDS, None);
        let mut flat = SampleStore::new();
        for s in 0..8 {
            flat.insert_raw(desc_shaped(s, 0, 99), schema(), toy_sample(2, 10, 0), 0);
        }
        store.replace_from(flat);
        assert_eq!(store.len(), 8);
        for s in 0..8 {
            let d = desc_shaped(s, 0, 99);
            let idx = store.shard_for(&d);
            let g = store.read_shard(idx);
            assert!(
                matches!(g.classify(&d), ReuseDecision::Full { .. }),
                "restored sample must live on its home shard"
            );
        }
    }

    #[test]
    fn global_budget_enforced_across_guard_drops() {
        // Samples sharing a fingerprint land on one shard, so overflow
        // there is evictable; insert_raw keeps them as separate entries.
        let one = toy_sample(2, 10, 0).heap_bytes();
        let store = ShardedStore::new(STORE_SHARDS, Some(one * 2));
        let home = store.shard_for(&desc(0, 99));
        for s in 0..4 {
            store.write_shard(home).insert_raw(
                desc(s * 100, s * 100 + 99),
                schema(),
                toy_sample(2, 10, 0),
                0,
            );
        }
        assert!(
            store.total_bytes() <= one * 2,
            "global budget must hold once guards drop"
        );
        assert!(store.evictions() >= 1, "overflow must evict");

        // Spread across shards, each shard keeps its last sample even if
        // the global total overflows (the per-shard `len > 1` floor) —
        // but no shard may hold *two* samples while over budget.
        let spread = ShardedStore::new(STORE_SHARDS, Some(one * 2));
        for s in 0..6 {
            let d = desc_shaped(s, 0, 99);
            let idx = spread.shard_for(&d);
            spread
                .write_shard(idx)
                .insert_raw(d, schema(), toy_sample(2, 10, 0), 0);
        }
        for i in 0..spread.num_shards() {
            let g = spread.read_shard(i);
            assert!(g.len() <= 1 || spread.total_bytes() <= one * 2);
        }
    }

    /// A live table matching `desc_live` descriptors: the input identity
    /// of a no-join, no-fixed-predicate sampler over it is
    /// `"lineorder[True]"`.
    fn live_table(rows: i64) -> laqy_engine::Table {
        laqy_engine::Table::new(
            "lineorder",
            vec![
                (
                    "lo_intkey".into(),
                    laqy_engine::Column::Int64((0..rows).collect()),
                ),
                (
                    "lo_orderdate".into(),
                    laqy_engine::Column::Int64((0..rows).map(|i| i % 3).collect()),
                ),
                (
                    "lo_revenue".into(),
                    laqy_engine::Column::Int64((0..rows).map(|i| 100 + i).collect()),
                ),
            ],
        )
        .unwrap()
    }

    fn desc_live(lo: i64, hi: i64) -> SampleDescriptor {
        let mut d = desc(lo, hi);
        d.input = "lineorder[True]".into();
        d
    }

    #[test]
    fn absorb_appended_catches_up_simple_samples() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(21);
        // Drawn at watermark 30; the table has since grown to 50 rows.
        let id = store.insert_raw(desc_live(0, 99), schema(), toy_sample(3, 20, 0), 30);
        // A sample over the table with an extra fixed predicate cannot be
        // row-filtered here: it stays stale (tail fragments catch it up).
        let mut gated = desc_live(200, 299);
        gated.input = "lineorder[Between { column: \"lo_discount\" }]".into();
        let gated_id = store.insert_raw(gated, schema(), toy_sample(2, 5, 200), 30);
        let report = store.absorb_appended(&live_table(50), &mut rng);
        assert_eq!(report.samples_absorbed, 1);
        // Rows 30..50 all satisfy lo_intkey ∈ [0, 99].
        assert_eq!(report.rows_absorbed, 20);
        assert_eq!(report.samples_invalidated, 0);
        let s = store.peek(id).unwrap();
        assert_eq!(s.watermark, 50);
        assert_eq!(s.sample.total_weight(), 60 + 20, "tail rows offered");
        assert_eq!(store.peek(gated_id).unwrap().watermark, 30);
        // Idempotent: a second pass at the same watermark is a no-op.
        let again = store.absorb_appended(&live_table(50), &mut rng);
        assert_eq!(again.samples_absorbed, 0);
        assert_eq!(again.rows_absorbed, 0);
    }

    #[test]
    fn absorb_appended_filters_by_predicates() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(22);
        // Only rows with lo_intkey ∈ [40, 44] belong to this population.
        let id = store.insert_raw(desc_live(40, 44), schema(), toy_sample(3, 4, 40), 30);
        let report = store.absorb_appended(&live_table(50), &mut rng);
        assert_eq!(report.rows_absorbed, 5);
        assert_eq!(store.peek(id).unwrap().watermark, 50);
    }

    #[test]
    fn absorb_appended_invalidates_join_dim_samples() {
        let mut store = SampleStore::new();
        let mut rng = Lehmer64::new(23);
        // This sample joins *through* the appended table: appended rows can
        // change the join output of already-sampled fact rows, so the
        // sample cannot be maintained incrementally.
        let mut joined = desc(0, 99);
        joined.input = "orders[True]⋈lineorder(o_key=lo_key)[True]".into();
        let jid = store.insert_raw(joined, schema(), toy_sample(2, 5, 0), 30);
        let report = store.absorb_appended(&live_table(50), &mut rng);
        assert_eq!(report.samples_invalidated, 1);
        assert!(store.peek(jid).is_none());
    }

    #[test]
    fn plan_coverage_at_emits_tail_for_stale_sample() {
        let mut store = SampleStore::new();
        let id = store.insert_raw(desc_live(0, 99), schema(), toy_sample(3, 20, 0), 30);
        // Fresh at its own watermark: plain full reuse, no tail.
        let fresh = store.plan_coverage_at(&desc_live(0, 99), 4, 30);
        assert_eq!(fresh.samples, vec![id]);
        assert!(fresh.tails.is_empty() && fresh.fragments.is_empty());
        // The table has grown: the sample is still selected, the region is
        // fully covered, but its un-absorbed tail must be Δ-scanned.
        let stale = store.plan_coverage_at(&desc_live(0, 99), 4, 50);
        assert_eq!(stale.samples, vec![id]);
        assert!(stale.fragments.is_empty());
        assert_eq!(stale.tails.len(), 1);
        assert_eq!(stale.tails[0].id, id);
        assert_eq!(stale.tails[0].from_row, 30);
        assert_eq!(
            stale.tails[0].predicates.get("lo_intkey").unwrap(),
            &iv(0, 99)
        );
        // absorb_tail advances the watermark, after which the same plan is
        // tail-free full reuse again.
        let mut rng = Lehmer64::new(24);
        assert!(store.absorb_tail(id, toy_sample(3, 2, 30), 30, 50, &mut rng));
        assert_eq!(store.peek(id).unwrap().watermark, 50);
        let caught_up = store.plan_coverage_at(&desc_live(0, 99), 4, 50);
        assert_eq!(caught_up.samples, vec![id]);
        assert!(caught_up.tails.is_empty());
        // A concurrent client replaying the same tail is rejected — the
        // from_row guard makes tail absorption idempotent.
        assert!(!store.absorb_tail(id, toy_sample(3, 2, 30), 30, 50, &mut rng));
        assert_eq!(store.peek(id).unwrap().watermark, 50);
    }

    #[test]
    fn drop_beyond_removes_samples_past_the_recovered_watermark() {
        let mut store = SampleStore::new();
        let keep = store.insert_raw(desc_live(0, 99), schema(), toy_sample(3, 20, 0), 30);
        let drop = store.insert_raw(desc_live(100, 199), schema(), toy_sample(3, 20, 0), 80);
        // A sample over a different table is untouched regardless of its
        // watermark.
        let mut foreign = desc(0, 99);
        foreign.input = "orders[True]".into();
        let other = store.insert_raw(foreign, schema(), toy_sample(3, 20, 0), 500);
        assert_eq!(store.drop_beyond("lineorder", 50), 1);
        assert!(store.peek(keep).is_some());
        assert!(store.peek(drop).is_none());
        assert!(store.peek(other).is_some());
    }

    #[test]
    fn single_shard_store_degenerates_to_one_lock() {
        let store = ShardedStore::new(1, None);
        assert_eq!(store.num_shards(), 1);
        for s in 0..4 {
            let d = desc_shaped(s, 0, 99);
            assert_eq!(store.shard_for(&d), 0);
            assert_eq!(store.registry_shard("any-key"), 0);
        }
        // Clamp: zero and oversized requests stay in range.
        assert_eq!(ShardedStore::new(0, None).num_shards(), 1);
        assert_eq!(ShardedStore::new(64, None).num_shards(), STORE_SHARDS);
    }
}
