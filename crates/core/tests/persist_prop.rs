//! Property tests for the sample-store snapshot format.
//!
//! The unit tests in `persist.rs` pin individual behaviours; these
//! properties sweep randomized stores (varying sample count, reservoir
//! capacity, strata, coverage, payload mixes, absorb-merged and distinct
//! descriptors) and adversarial byte streams, checking the three
//! contracts a restore must honour:
//!
//! 1. round-trip identity — descriptors, schemas, per-stratum reservoirs
//!    and weights (the malleability metadata reuse planning runs on)
//!    survive save/load bit-for-bit, and a second save is byte-identical;
//! 2. truncation at *every* prefix length fails with an error, never a
//!    panic and never a silently short store;
//! 3. arbitrary single-byte corruption never panics the loader.

use laqy::{
    load_store, save_store, Interval, IntervalSet, Predicates, SampleDescriptor, SampleSchema,
    SampleStore, SampleTuple, SlotKind,
};
use laqy_engine::GroupKey;
use laqy_sampling::{Lehmer64, StratifiedSampler};
use proptest::prelude::*;

/// Build a store from a generated spec: one entry per inserted sample,
/// `(k, strata, tag)` controlling reservoir capacity, stratification
/// width, and descriptor identity (same-tag samples with disjoint
/// coverage exercise the absorb-merge path, so the resulting store can
/// legitimately hold fewer samples than `spec.len()`).
fn build_store(spec: &[(usize, usize, i64)], seed: i64) -> SampleStore {
    let mut store = SampleStore::new();
    let mut rng = Lehmer64::new(seed as u64 ^ 0x9E37_79B9);
    for (i, &(k, strata, tag)) in spec.iter().enumerate() {
        let base = i as i64 * 1_000;
        let span = 100 + 40 * strata as i64;
        let mut sampler = StratifiedSampler::new(k);
        for g in 0..strata as i64 {
            // Offer more tuples than capacity so weights exceed |R|.
            for x in base..base + span {
                sampler.offer(
                    GroupKey::new(&[g, tag]),
                    SampleTuple::from_slice(&[x, (x as f64 * 0.25).to_bits() as i64]),
                    &mut rng,
                );
            }
        }
        let descriptor = SampleDescriptor::new(
            format!("t{tag}[True]"),
            vec!["g".into()],
            vec!["x".into(), "v".into()],
            Predicates::on("x", IntervalSet::of(Interval::new(base, base + span - 1))),
            k,
        );
        let schema = SampleSchema::new(vec![
            ("x".into(), SlotKind::Int),
            ("v".into(), SlotKind::Float),
        ]);
        store.absorb(descriptor, schema, sampler, base as u64, &mut rng);
    }
    store
}

fn assert_stores_identical(a: &SampleStore, b: &SampleStore) {
    assert_eq!(a.len(), b.len());
    for (o, r) in a.iter_samples().zip(b.iter_samples()) {
        assert_eq!(o.descriptor, r.descriptor);
        assert_eq!(o.schema, r.schema);
        assert_eq!(o.sample.num_strata(), r.sample.num_strata());
        assert_eq!(o.sample.total_weight(), r.sample.total_weight());
        for (key, items, weight) in o.sample.iter() {
            let (r_items, r_weight) = r.sample.stratum(key).expect("stratum survives restore");
            assert_eq!(weight, r_weight, "stratum weight drifted for {key:?}");
            assert_eq!(items, r_items, "reservoir contents drifted for {key:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_identity(
        spec in prop::collection::vec((1usize..6, 1usize..5, 0i64..3), 0..5),
        seed in 0i64..1_000_000,
    ) {
        let store = build_store(&spec, seed);
        let bytes = save_store(&store);
        let restored = load_store(&bytes).expect("valid snapshot loads");
        assert_stores_identical(&store, &restored);
        // Save is a pure function of store contents: re-saving the
        // restored store is byte-identical, so snapshots can be compared
        // and deduplicated by hash.
        prop_assert_eq!(save_store(&restored), bytes);
    }

    #[test]
    fn every_truncation_errors(
        spec in prop::collection::vec((1usize..5, 1usize..4, 0i64..2), 1..4),
        seed in 0i64..1_000_000,
        cut_permille in 0usize..1000,
    ) {
        let bytes = save_store(&build_store(&spec, seed));
        let cut = cut_permille * bytes.len() / 1000;
        prop_assert!(
            load_store(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes loaded successfully",
            bytes.len()
        );
    }

    #[test]
    fn byte_corruption_never_panics(
        spec in prop::collection::vec((1usize..5, 1usize..4, 0i64..2), 1..4),
        seed in 0i64..1_000_000,
        pos_seed in 0usize..100_000,
        mask in 1i64..256,
    ) {
        let mut bytes = save_store(&build_store(&spec, seed));
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= mask as u8;
        // A flip may still decode (payload bytes are free-form); the
        // contract is that decoding terminates without panicking and any
        // accepted store is structurally traversable.
        if let Ok(restored) = load_store(&bytes) {
            for s in restored.iter_samples() {
                for (_key, items, _weight) in s.sample.iter() {
                    let _ = items.len();
                }
            }
        }
    }
}
