//! Bounded-exhaustive model checking of the concurrent service protocols.
//!
//! Compile and run with `RUSTFLAGS="--cfg laqy_check" cargo test -p laqy
//! --test model_service`. Under that cfg every `laqy_sync` primitive the
//! service uses routes through the loom-lite scheduler, so these tests
//! execute the *real* claim/absorb/release and optimistic-revalidation
//! code (not a hand-copied model of it) under every interleaving within
//! the preemption bound, and check algebraic oracles that must hold on
//! all of them:
//!
//! - estimates stay unbiased-by-construction: the HT total weight of any
//!   answer equals the true row count of its predicate range, no matter
//!   where the scheduler preempts between classification, Δ-scan, merge,
//!   and revalidation;
//! - the in-flight registry never loses or double-runs a Δ-scan;
//! - concurrent eviction can cost reuse but never correctness.
//!
//! The engine pool is deliberately held at `threads: 1`: its workers use
//! the sanctioned raw-`std::sync` path in `engine::parallel`, which the
//! model scheduler cannot see, so sampling runs inline on the scheduled
//! client threads.

#![cfg(laqy_check)]

use laqy::{ApproxQuery, Interval, LaqyService, SessionConfig, ShardedStore, STORE_SHARDS};
use laqy_engine::{AggSpec, Catalog, ColRef, Column, Predicate, QueryPlan, Table};
use laqy_sync::model::{model_with, ModelOptions};
use laqy_sync::thread;

const ROWS: i64 = 240;
const GROUPS: i64 = 3;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register(
        Table::new(
            "t",
            vec![
                ("key".into(), Column::Int64((0..ROWS).collect())),
                (
                    "g".into(),
                    Column::Int64((0..ROWS).map(|i| i % GROUPS).collect()),
                ),
                (
                    "v".into(),
                    Column::Int64((0..ROWS).map(|i| i % 10).collect()),
                ),
            ],
        )
        .unwrap(),
    );
    cat
}

fn service() -> LaqyService {
    LaqyService::with_config(
        catalog(),
        SessionConfig {
            threads: 1,
            ..Default::default()
        },
    )
}

fn query(lo: i64, hi: i64) -> ApproxQuery {
    query_k(lo, hi, 16)
}

fn query_k(lo: i64, hi: i64, k: usize) -> ApproxQuery {
    ApproxQuery {
        plan: QueryPlan {
            fact: "t".into(),
            predicate: Predicate::True,
            joins: vec![],
            group_by: vec![ColRef::fact("g")],
            aggs: vec![AggSpec::sum("v"), AggSpec::count()],
        },
        range_column: "key".into(),
        range: Interval::new(lo, hi),
        k,
    }
}

/// HT estimation invariant: the COUNT estimate is the sum of stratum
/// weights, so summed over all groups it reconstructs the *exact* row
/// count of the range whenever coverage equals the query range (which
/// every resolution path here ends in — merge, online, or full reuse).
/// This is the paper's statistical-equivalence claim reduced to an exact
/// integer identity; it holds on *every* interleaving or the merge
/// lost/duplicated strata weight.
fn assert_weight_identity(result: &laqy::ApproxResult, lo: i64, hi: i64) {
    let total_count: f64 = result.groups.iter().map(|g| g.values[1].value).sum();
    let true_rows = (hi - lo + 1) as f64;
    assert!(
        (total_count - true_rows).abs() < 1e-6,
        "total HT count {total_count} != true row count {true_rows} for [{lo}, {hi}]"
    );
}

/// Two clients race the same Δ over a warm sample: the in-flight registry
/// must hand the Δ-scan to exactly one of them, and both answers must be
/// exact-weight correct regardless of who wins or when the merge lands.
#[test]
fn concurrent_delta_claims_never_lose_or_double_scan() {
    let report = model_with(
        ModelOptions {
            preemption_bound: 2,
            max_interleavings: 1500,
        },
        || {
            let svc = service();
            // Warm the store outside the race: [0, 119] is materialized.
            svc.run(&query(0, 119)).unwrap();
            let svc_b = svc.clone();
            let t = thread::spawn(move || {
                let r = svc_b.run(&query(0, 179)).unwrap();
                assert_weight_identity(&r, 0, 179);
            });
            let r = svc.run(&query(0, 179)).unwrap();
            assert_weight_identity(&r, 0, 179);
            t.join().unwrap();

            let stats = svc.stats();
            assert_eq!(stats.queries, 3);
            // The warm-up Δ plus however the race resolved: every Δ-scan
            // that ran was claimed, and claimed scans are never repeated
            // for the same fragment while in flight.
            assert!(
                stats.delta_scans + stats.online_runs + stats.merges_deduped >= 2,
                "racing clients must each resolve via scan, dedup-wait, or online: {stats:?}"
            );
            // A deduped client waited for the winner instead of re-scanning.
            assert!(
                stats.delta_scans <= stats.queries,
                "more Δ-scans than queries means a lost claim re-ran: {stats:?}"
            );

            // Quiescent store is coherent: one more identical query is a
            // pure reuse hit with the same exact weight identity.
            let r = svc.run(&query(0, 179)).unwrap();
            assert_weight_identity(&r, 0, 179);
        },
    );
    eprintln!("claims model: {report:?}");
    assert!(
        report.interleavings >= 200,
        "expected hundreds of interleavings, got {report:?}"
    );
}

// Two q1 families whose descriptor fingerprints (which differ only in k)
// route to *different* home shards — asserted inside the scenarios via a
// probe router, so a rehash that collides them fails loudly instead of
// silently degrading the tests to single-shard.
const K_A: usize = 16;
const K_B: usize = 24;

/// Shard claim/absorb/release across two shards: one client Δ-extends a
/// warm family on its home shard (registry claim → Δ-scan → absorb →
/// release) while a second client's online run absorbs a different
/// family onto a different shard. Under every interleaving, neither
/// absorb may be lost, cross-wired onto the wrong shard, or merged into
/// the other family — both answers and the quiescent store stay
/// exact-weight correct.
#[test]
fn shard_claim_absorb_release_is_isolated_per_shard() {
    let report = model_with(
        ModelOptions {
            preemption_bound: 2,
            max_interleavings: 1500,
        },
        || {
            let svc = service();
            // Warm family A outside the race: its Δ path claims, scans,
            // absorbs, and releases on A's home shard.
            svc.run(&query_k(0, 119, K_A)).unwrap();
            let svc_b = svc.clone();
            let t = thread::spawn(move || {
                let r = svc_b.run(&query_k(0, 179, K_B)).unwrap();
                assert_weight_identity(&r, 0, 179);
            });
            let r = svc.run(&query_k(0, 179, K_A)).unwrap();
            assert_weight_identity(&r, 0, 179);
            t.join().unwrap();

            // The families really live on distinct shards.
            let snap = svc.store();
            let probe = ShardedStore::new(STORE_SHARDS, None);
            let shard_of = |k: usize| {
                snap.descriptors()
                    .find(|(_, d)| d.k == k)
                    .map(|(_, d)| probe.shard_for(d))
                    .expect("family stored")
            };
            assert_ne!(
                shard_of(K_A),
                shard_of(K_B),
                "test families must route to distinct shards"
            );

            // Quiescent coherence per shard: both families answer their
            // own coverage exactly (full reuse, no cross-family bleed).
            let r = svc.run(&query_k(0, 179, K_A)).unwrap();
            assert_weight_identity(&r, 0, 179);
            let r = svc.run(&query_k(0, 179, K_B)).unwrap();
            assert_weight_identity(&r, 0, 179);
            let stats = svc.stats();
            assert_eq!(stats.queries, 5);
            assert!(
                stats.delta_scans <= stats.queries,
                "a lost shard claim re-ran a Δ-scan: {stats:?}"
            );
        },
    );
    eprintln!("shard claim model: {report:?}");
    assert!(
        report.interleavings >= 200,
        "expected hundreds of interleavings, got {report:?}"
    );
}

/// Canonical-order two-shard locking: whole-store operations (snapshot,
/// clear) lock every shard in ascending index order while clients hold
/// single shards for absorbs. Any interleaving that could acquire two
/// shard locks in conflicting orders would deadlock the model (the
/// scheduler would hang the blocked interleaving) or trip the lock-order
/// detector; every interleaving must instead complete with exact-weight
/// answers on whatever store state the race left behind.
#[test]
fn whole_store_ops_lock_shards_in_canonical_order() {
    let report = model_with(
        ModelOptions {
            preemption_bound: 2,
            max_interleavings: 1500,
        },
        || {
            let svc = service();
            svc.run(&query_k(0, 119, K_A)).unwrap();
            let sweeper = svc.clone();
            let t = thread::spawn(move || {
                // Ascending read-locks across all shards…
                let bytes = sweeper.export_samples();
                assert!(!bytes.is_empty());
                // …then ascending write-locks across all shards.
                sweeper.clear_samples();
            });
            // Meanwhile clients absorb onto two different shards.
            let r = svc.run(&query_k(0, 179, K_B)).unwrap();
            assert_weight_identity(&r, 0, 179);
            let r = svc.run(&query_k(0, 179, K_A)).unwrap();
            assert_weight_identity(&r, 0, 179);
            t.join().unwrap();

            // Whatever survived the clear, both families still answer
            // coherently (re-sampling what was swept away).
            let r = svc.run(&query_k(0, 179, K_A)).unwrap();
            assert_weight_identity(&r, 0, 179);
            let r = svc.run(&query_k(0, 179, K_B)).unwrap();
            assert_weight_identity(&r, 0, 179);
            assert_eq!(svc.stats().queries, 5);
        },
    );
    eprintln!("canonical order model: {report:?}");
    assert!(
        report.interleavings >= 200,
        "expected hundreds of interleavings, got {report:?}"
    );
}

/// Rows appended by the racing ingest, all inside the query range.
const APPEND: i64 = 60;

fn append_batch() -> Vec<(String, Column)> {
    vec![
        ("key".into(), Column::Int64((ROWS..ROWS + APPEND).collect())),
        (
            "g".into(),
            Column::Int64((ROWS..ROWS + APPEND).map(|i| i % GROUPS).collect()),
        ),
        (
            "v".into(),
            Column::Int64((ROWS..ROWS + APPEND).map(|i| i % 10).collect()),
        ),
    ]
}

/// A streaming append (catalog publish + incremental sample absorb) and a
/// full shard eviction race a client query. The query pins an epoch by
/// cloning the catalog, so its exact COUNT must equal the row count of
/// *some* published version — exactly `ROWS` or exactly `ROWS + APPEND`,
/// never a torn in-between (a scan spanning the publish) and never a
/// double-count (a stale sample merged past its watermark). The absorb
/// walks shards in canonical order under the ingest lock, so no
/// interleaving with the evictor's whole-store sweep may deadlock.
#[test]
fn ingest_races_query_epoch_pin_and_shard_eviction() {
    let report = model_with(
        ModelOptions {
            preemption_bound: 2,
            max_interleavings: 1500,
        },
        || {
            let svc = service();
            // Warm a sample whose predicate spans the final watermark, so
            // the appended rows land inside the stored family and the
            // absorb path really runs during the race.
            svc.run(&query(0, ROWS + APPEND - 1)).unwrap();
            let ingester = svc.clone();
            let t_ingest = thread::spawn(move || {
                let w = ingester.ingest("t", append_batch()).unwrap();
                assert_eq!(w, (ROWS + APPEND) as u64);
            });
            let evictor = svc.clone();
            let t_evict = thread::spawn(move || {
                evictor.clear_samples();
            });
            let r = svc.run(&query(0, ROWS + APPEND - 1)).unwrap();
            let total: f64 = r.groups.iter().map(|g| g.values[1].value).sum();
            assert!(
                total == ROWS as f64 || total == (ROWS + APPEND) as f64,
                "torn epoch: COUNT {total} matches neither pre- nor post-append row count"
            );
            t_ingest.join().unwrap();
            t_evict.join().unwrap();

            // Quiescent: whatever the eviction left behind, the final
            // watermark answers exactly — an absorbed sample reuses, a
            // swept one re-samples, and both reconstruct the true count.
            let r = svc.run(&query(0, ROWS + APPEND - 1)).unwrap();
            assert_weight_identity(&r, 0, ROWS + APPEND - 1);
            let stats = svc.stats();
            assert_eq!(stats.queries, 3);
            assert_eq!(stats.ingest_batches, 1);
            assert_eq!(stats.ingest_rows, APPEND as u64);
        },
    );
    eprintln!("ingest race model: {report:?}");
    assert!(
        report.interleavings >= 200,
        "expected hundreds of interleavings, got {report:?}"
    );
}

/// A client's coverage plan races a concurrent full eviction. Optimistic
/// revalidation must detect the vanished sample under the write lock and
/// degrade (retry, then online) — never merge against freed state, never
/// deadlock, and never return a biased answer.
#[test]
fn revalidation_survives_concurrent_eviction() {
    let report = model_with(
        ModelOptions {
            // The evictor thread has few scheduling points, so bound 2
            // explores exhaustively below the hundreds-of-interleavings
            // bar; bound 3 covers strictly more schedules.
            preemption_bound: 3,
            max_interleavings: 1500,
        },
        || {
            let svc = service();
            svc.run(&query(0, 119)).unwrap();
            let evictor = svc.clone();
            let t = thread::spawn(move || {
                evictor.clear_samples();
            });
            let r = svc.run(&query(0, 199)).unwrap();
            assert_weight_identity(&r, 0, 199);
            t.join().unwrap();

            // Whatever the store holds now, it must answer coherently.
            let r = svc.run(&query(0, 199)).unwrap();
            assert_weight_identity(&r, 0, 199);
            assert_eq!(svc.stats().queries, 3);
        },
    );
    eprintln!("eviction model: {report:?}");
    assert!(
        report.interleavings >= 200,
        "expected hundreds of interleavings, got {report:?}"
    );
}
