//! Closed-loop load generator: N client threads × M tenants replaying
//! deterministic zipf-skewed query/ingest mixes against a running
//! server, reporting latency percentiles, throughput, and shed rate.
//!
//! Closed-loop means each client waits for its response before sending
//! the next request, so offered load is `clients / latency` and
//! overload shows up as *shed responses and bounded p99* rather than an
//! unbounded queue — exactly the property the admission gate is for.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use laqy_workload::serving::{op_stream, q1_sql, MixConfig, Op};
use laqy_workload::ssb::SsbConfig;

use crate::client::Client;
use crate::protocol::{Request, Response};

/// Load run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Tenants the clients round-robin across.
    pub tenants: usize,
    /// Operations each client issues.
    pub ops_per_client: usize,
    /// The per-client operation mix.
    pub mix: MixConfig,
    /// Reservoir capacity per stratum for queries.
    pub k: u32,
    /// Per-request wall-clock allowance sent on the wire (0 = tenant
    /// default).
    pub timeout_ms: u32,
    /// Client socket timeout; a server stall past this counts as an
    /// I/O error, never a hang.
    pub io_timeout: Duration,
    /// Base seed; each client derives its own stream from it.
    pub seed: u64,
    /// Generator config for ingest batches (must match the served
    /// catalog's scale).
    pub ssb: SsbConfig,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        let ssb = SsbConfig::tiny();
        Self {
            clients: 4,
            tenants: 2,
            ops_per_client: 50,
            mix: MixConfig::for_rows(ssb.lineorder_rows()),
            k: 64,
            timeout_ms: 0,
            io_timeout: Duration::from_secs(10),
            seed: 0x10AD,
            ssb,
        }
    }
}

/// What a load run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Operations issued (queries + ingests).
    pub ops: u64,
    /// Queries answered (degraded included).
    pub answers: u64,
    /// Of those, degraded answers.
    pub degraded: u64,
    /// Typed `Overloaded` responses (shed at admission or the
    /// connection cap).
    pub sheds: u64,
    /// Acknowledged ingest batches.
    pub ingest_acks: u64,
    /// Typed `Error` responses.
    pub errors: u64,
    /// Connection-level failures (timeouts, resets). Each one costs a
    /// reconnect, never a hang.
    pub io_errors: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Answered-query latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
}

impl LoadReport {
    /// Answers per wall-clock second.
    pub fn answers_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.answers as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of operations shed.
    pub fn shed_rate(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.sheds as f64 / self.ops as f64
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} ops in {:.2}s: {} answers ({} degraded, {:.1}/s), {} sheds ({:.1}%), \
             {} ingest acks, {} errors, {} io errors; p50 {:.1}ms p95 {:.1}ms p99 {:.1}ms",
            self.ops,
            self.elapsed.as_secs_f64(),
            self.answers,
            self.degraded,
            self.answers_per_sec(),
            self.sheds,
            self.shed_rate() * 100.0,
            self.ingest_acks,
            self.errors,
            self.io_errors,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
        )
    }
}

struct ClientOutcome {
    report: LoadReport,
    latencies_ms: Vec<f64>,
}

/// Run the closed loop against `addr` and aggregate every client's
/// outcome. Deterministic op streams; wall-clock numbers are of course
/// machine-dependent.
pub fn run(addr: SocketAddr, cfg: &LoadgenConfig) -> LoadReport {
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|c| scope.spawn(move || run_client(addr, cfg, c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client panicked"))
            .collect()
    });
    let mut total = LoadReport::default();
    let mut latencies: Vec<f64> = Vec::new();
    for o in outcomes {
        total.ops += o.report.ops;
        total.answers += o.report.answers;
        total.degraded += o.report.degraded;
        total.sheds += o.report.sheds;
        total.ingest_acks += o.report.ingest_acks;
        total.errors += o.report.errors;
        total.io_errors += o.report.io_errors;
        total.elapsed = total.elapsed.max(o.report.elapsed);
        latencies.extend(o.latencies_ms);
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    total.p50_ms = percentile(&latencies, 0.50);
    total.p95_ms = percentile(&latencies, 0.95);
    total.p99_ms = percentile(&latencies, 0.99);
    total
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_client(addr: SocketAddr, cfg: &LoadgenConfig, client_idx: usize) -> ClientOutcome {
    let tenant = format!("tenant-{}", client_idx % cfg.tenants.max(1));
    let ops = op_stream(
        &cfg.mix,
        cfg.seed ^ (client_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        cfg.ops_per_client,
    );
    let mut report = LoadReport::default();
    let mut latencies_ms = Vec::with_capacity(cfg.ops_per_client);
    let mut conn: Option<Client> = None;
    // Disjoint key offsets per client keep ingested lo_intkey values
    // from colliding across clients of the same tenant.
    let base_row = cfg.ssb.lineorder_rows() + client_idx * cfg.ops_per_client * cfg.mix.ingest_rows;
    let mut ingested = 0usize;
    let started = Instant::now();
    for op in &ops {
        let request = match op {
            Op::Query { lo, hi } => Request::Query {
                tenant: tenant.clone(),
                sql: q1_sql(*lo, *hi),
                k: cfg.k,
                timeout_ms: cfg.timeout_ms,
            },
            Op::Ingest { rows } => {
                let columns = laqy_workload::lineorder_batch(&cfg.ssb, base_row + ingested, *rows);
                ingested += rows;
                Request::Ingest {
                    tenant: tenant.clone(),
                    table: "lineorder".to_string(),
                    columns,
                }
            }
        };
        report.ops += 1;
        let t_op = Instant::now();
        let response = {
            let c = match conn.as_mut() {
                Some(c) => c,
                None => match Client::connect(addr, cfg.io_timeout) {
                    Ok(c) => {
                        conn = Some(c);
                        conn.as_mut().expect("just set")
                    }
                    Err(_) => {
                        report.io_errors += 1;
                        continue;
                    }
                },
            };
            c.request(&request)
        };
        match response {
            Ok(Response::Answer(a)) => {
                report.answers += 1;
                if a.degraded.is_some() {
                    report.degraded += 1;
                }
                latencies_ms.push(t_op.elapsed().as_secs_f64() * 1e3);
            }
            Ok(Response::IngestAck { .. }) => report.ingest_acks += 1,
            Ok(Response::Overloaded { .. }) => report.sheds += 1,
            Ok(Response::Error { .. }) => report.errors += 1,
            Ok(_) => report.errors += 1,
            Err(_) => {
                // Timeout or reset: drop the connection and reconnect
                // for the next op.
                report.io_errors += 1;
                conn = None;
            }
        }
    }
    report.elapsed = started.elapsed();
    ClientOutcome {
        report,
        latencies_ms,
    }
}
