//! # laqy-server
//!
//! The overload-safe multi-tenant serving layer over the LAQy service:
//! a length-framed TCP protocol ([`protocol`]), per-tenant namespaces
//! with their own sample stores, WALs, and budgets ([`tenant`]),
//! bounded admission with explicit load shedding ([`admission`]), the
//! serving front-end with graceful drain ([`server`]), a blocking
//! client ([`client`]), and a closed-loop load generator ([`loadgen`]).
//!
//! The serving contract, end to end:
//!
//! - **Always a typed outcome.** Every request gets an `Answer`,
//!   `IngestAck`, `Overloaded { retry_after_ms }`, or `Error { code }`
//!   — never a hang, never a torn frame accepted as data.
//! - **Degrade before shed.** Admitted queries run under a
//!   [`laqy::QueryBudget`] that had the queue wait charged against it:
//!   under load, answers get wider confidence intervals before any
//!   request is turned away.
//! - **Tenants are isolated.** Stores, WALs, budgets, gates, and
//!   counters are per tenant; a tenant that exhausts its queue, burns
//!   its budget, or eats a worker panic cannot slow or corrupt another.
//! - **Drain loses nothing acked.** Ingest acks are sent only after
//!   WAL durability, and drain stops admissions, finishes in-flight
//!   work, then snapshots — so a kill at *any* point preserves every
//!   acknowledged ingest.
//!
//! This crate is the only place in the workspace allowed to touch
//! sockets (`cargo run -p xtask -- lint`, rule `socket-io`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod tenant;

pub use admission::{Admission, Gate, Permit};
pub use client::Client;
pub use loadgen::{LoadReport, LoadgenConfig};
pub use protocol::{Answer, ErrorCode, Request, Response, TenantSnapshot};
pub use server::{DrainReport, Server, ServerConfig};
pub use tenant::{TenantRegistry, TenantState};
