//! The length-framed wire protocol.
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by that many payload bytes, capped at
//! [`MAX_FRAME_BYTES`] so a corrupt or hostile length prefix can never
//! drive an allocation bomb. The payload is a tag byte plus fields in a
//! fixed order — no self-describing envelope, no external serializer.
//!
//! Queries ride the wire as SQL text and are planned server-side
//! through [`laqy::approx_query`], so the protocol stays stable while
//! the plan representation evolves. Ingest batches carry
//! [`Column`]-typed vectors, mirroring
//! [`LaqyService::ingest`](laqy::LaqyService::ingest).
//!
//! The frame reader and writer are the protocol's fault surface: each
//! hits the `net.read` / `net.write` / `net.latency` points from
//! [`laqy_faults::points`], so a chaos schedule can tear a request or a
//! response mid-frame deterministically by seed.

use std::io::{Read, Write};
use std::sync::Arc;

use laqy_engine::{Column, Value};
use laqy_faults::points;

/// Hard cap on one frame's payload, requests and responses alike. Large
/// enough for any realistic ingest batch at bench scale, small enough
/// that a garbage length prefix cannot exhaust memory.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Typed decode failure: the peer sent bytes that are not a protocol
/// message. Always answered with [`ErrorCode::BadRequest`] (when a
/// response can still be written) and the connection is dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// One client request.
///
/// No `PartialEq`: the engine's `Column` deliberately does not
/// implement it (float payloads), so request equality in tests goes
/// through the canonical encoding instead.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// An approximate SQL query against one tenant's store.
    Query {
        /// Tenant namespace the query runs in.
        tenant: String,
        /// SQL text with exactly one `BETWEEN` range (see
        /// [`laqy::approx_query`]).
        sql: String,
        /// Reservoir capacity per stratum.
        k: u32,
        /// Per-request wall-clock allowance in milliseconds; `0` means
        /// "tenant default". The server only ever *tightens* the
        /// tenant's budget with this.
        timeout_ms: u32,
    },
    /// Append a batch of rows to one tenant's table. Acked only after
    /// the batch is WAL-durable (when the tenant has a data dir).
    Ingest {
        /// Tenant namespace the batch lands in.
        tenant: String,
        /// Target table name.
        table: String,
        /// The batch: exactly the table's columns, matched by name.
        columns: Vec<(String, Column)>,
    },
    /// Fetch the tenant's serving counters.
    Stats {
        /// Tenant to report on.
        tenant: String,
    },
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// A (possibly degraded) approximate answer.
    Answer(Answer),
    /// The ingest batch is applied (and durable when WAL-backed); the
    /// tenant table's new row watermark.
    IngestAck {
        /// Rows in the table after this batch.
        watermark: u64,
    },
    /// Load shed: the tenant's queue and permits are exhausted (or the
    /// server is at its connection cap). Retry after the hint — the
    /// request was *not* executed.
    Overloaded {
        /// Client back-off hint in milliseconds.
        retry_after_ms: u32,
    },
    /// A typed failure; the request was not (or only partially) served.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to [`Request::Stats`].
    StatsReply(TenantSnapshot),
}

/// Machine-readable failure classes a client can dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Malformed frame, unknown tenant name shape, or SQL the
    /// approximate planner rejects.
    BadRequest = 1,
    /// The server is draining: admissions are closed for good. Do not
    /// retry against this instance.
    Draining = 2,
    /// The tenant cap is reached and this request named a new tenant.
    TenantLimit = 3,
    /// The engine failed the query/ingest (typed `LaqyError`).
    Failed = 4,
    /// A worker panic was caught and isolated; only this request failed.
    WorkerPanic = 5,
    /// An injected chaos fault surfaced (only in `--cfg laqy_faults`
    /// builds).
    Injected = 6,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::Draining,
            3 => ErrorCode::TenantLimit,
            4 => ErrorCode::Failed,
            5 => ErrorCode::WorkerPanic,
            6 => ErrorCode::Injected,
            other => return Err(WireError(format!("unknown error code {other}"))),
        })
    }
}

/// A decoded approximate answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// Present when the budget expired mid-scan: the answer is
    /// extrapolated from the covered fraction with widened CIs.
    pub degraded: Option<DegradedInfo>,
    /// One row per output group.
    pub groups: Vec<AnswerGroup>,
}

/// Degradation metadata attached to a partial-coverage answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedInfo {
    /// Fraction of the intended scan that completed, in `(0, 1]`.
    pub coverage: f64,
    /// Factor applied to extensive-aggregate CI half-widths.
    pub ci_inflation: f64,
}

/// One output group: decoded key values plus per-aggregate estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerGroup {
    /// Decoded group-key values (dictionary columns decode to strings).
    pub key: Vec<Value>,
    /// One estimate per aggregate in the query's select list.
    pub values: Vec<AnswerAgg>,
}

/// One aggregate estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerAgg {
    /// Point estimate.
    pub value: f64,
    /// CI half-width (`NaN` for MIN/MAX).
    pub ci_half_width: f64,
    /// Sampled tuples supporting the estimate.
    pub support: u64,
}

/// Per-tenant serving counters, as reported to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantSnapshot {
    /// Queries answered (degraded answers included).
    pub answers: u64,
    /// Answers that were degraded (budget expired mid-scan).
    pub degraded: u64,
    /// Requests shed at admission (queue full or admission timeout).
    pub shed: u64,
    /// Requests rejected because the server was draining.
    pub rejected_draining: u64,
    /// Ingest batches acknowledged.
    pub ingest_acks: u64,
    /// Requests that failed with a typed error.
    pub errors: u64,
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Outcome of one framed read.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete payload.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// The read timed out with *zero* bytes of the next frame received:
    /// an idle (not slow) connection. A timeout mid-frame is an error —
    /// that is the slow-client guard.
    Idle,
}

/// Read one frame. Distinguishes idle peers (no bytes of the next frame
/// yet) from slow peers (a frame started but stalled): the former is
/// [`FrameRead::Idle`], the latter a `TimedOut` error, so the
/// connection loop can keep idle clients and drop slow ones.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<FrameRead> {
    laqy_faults::point(points::NET_LATENCY).map_err(std::io::Error::from)?;
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        laqy_faults::point(points::NET_READ).map_err(std::io::Error::from)?;
        match stream.read(&mut header[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(FrameRead::Eof);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof mid-header",
                ));
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 {
                    return Ok(FrameRead::Idle);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "slow client: frame header stalled",
                ));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut read = 0usize;
    while read < len {
        laqy_faults::point(points::NET_READ).map_err(std::io::Error::from)?;
        match stream.read(&mut payload[read..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                ))
            }
            Ok(n) => read += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "slow client: frame body stalled",
                ));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(FrameRead::Frame(payload))
}

/// Write one frame (length prefix + payload).
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    laqy_faults::point(points::NET_LATENCY).map_err(std::io::Error::from)?;
    laqy_faults::point(points::NET_WRITE).map_err(std::io::Error::from)?;
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    laqy_faults::point(points::NET_WRITE).map_err(std::io::Error::from)?;
    stream.write_all(payload)?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_column(buf: &mut Vec<u8>, col: &Column) {
    match col {
        Column::Int32(v) => {
            buf.push(1);
            put_u32(buf, v.len() as u32);
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        Column::Int64(v) => {
            buf.push(2);
            put_u32(buf, v.len() as u32);
            for x in v {
                put_i64(buf, *x);
            }
        }
        Column::Float64(v) => {
            buf.push(3);
            put_u32(buf, v.len() as u32);
            for x in v {
                put_f64(buf, *x);
            }
        }
        Column::Dict { codes, dict } => {
            buf.push(4);
            put_u32(buf, dict.len() as u32);
            for s in dict.iter() {
                put_str(buf, s);
            }
            put_u32(buf, codes.len() as u32);
            for c in codes {
                put_u32(buf, *c);
            }
        }
    }
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(x) => {
            buf.push(1);
            put_i64(buf, *x);
        }
        Value::Float(x) => {
            buf.push(2);
            put_f64(buf, *x);
        }
        Value::Str(s) => {
            buf.push(3);
            put_str(buf, s);
        }
    }
}

/// Bounds-checked payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.at + n > self.buf.len() {
            return Err(WireError(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A length prefix that must leave room for `unit`-byte elements —
    /// rejects lengths that could not possibly fit the remaining bytes,
    /// so a corrupt count never drives a huge allocation.
    fn len(&mut self, unit: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(unit.max(1)) > self.buf.len() - self.at {
            return Err(WireError(format!("length {n} exceeds remaining payload")));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError("non-UTF-8 string".into()))
    }

    fn column(&mut self) -> Result<Column, WireError> {
        Ok(match self.u8()? {
            1 => {
                let n = self.len(4)?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(i32::from_le_bytes(
                        self.take(4)?.try_into().expect("4 bytes"),
                    ));
                }
                Column::Int32(v)
            }
            2 => {
                let n = self.len(8)?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(self.i64()?);
                }
                Column::Int64(v)
            }
            3 => {
                let n = self.len(8)?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(self.f64()?);
                }
                Column::Float64(v)
            }
            4 => {
                let dn = self.len(4)?;
                let mut dict = Vec::with_capacity(dn);
                for _ in 0..dn {
                    dict.push(self.str()?);
                }
                let cn = self.len(4)?;
                let mut codes = Vec::with_capacity(cn);
                for _ in 0..cn {
                    // Every code must resolve in the dictionary that
                    // rode this frame: an out-of-range code would
                    // otherwise reach the engine's dictionary-merge
                    // remap and index out of bounds.
                    let c = self.u32()?;
                    if c as usize >= dn {
                        return Err(WireError(format!(
                            "dict code {c} out of range for dictionary of {dn} entries"
                        )));
                    }
                    codes.push(c);
                }
                Column::Dict {
                    codes,
                    dict: Arc::new(dict),
                }
            }
            t => return Err(WireError(format!("unknown column tag {t}"))),
        })
    }

    fn value(&mut self) -> Result<Value, WireError> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(self.f64()?),
            3 => Value::Str(self.str()?),
            t => return Err(WireError(format!("unknown value tag {t}"))),
        })
    }

    fn done(self) -> Result<(), WireError> {
        if self.at != self.buf.len() {
            return Err(WireError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.at
            )));
        }
        Ok(())
    }
}

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Ping => buf.push(0x01),
            Request::Query {
                tenant,
                sql,
                k,
                timeout_ms,
            } => {
                buf.push(0x02);
                put_str(&mut buf, tenant);
                put_str(&mut buf, sql);
                put_u32(&mut buf, *k);
                put_u32(&mut buf, *timeout_ms);
            }
            Request::Ingest {
                tenant,
                table,
                columns,
            } => {
                buf.push(0x03);
                put_str(&mut buf, tenant);
                put_str(&mut buf, table);
                put_u32(&mut buf, columns.len() as u32);
                for (name, col) in columns {
                    put_str(&mut buf, name);
                    put_column(&mut buf, col);
                }
            }
            Request::Stats { tenant } => {
                buf.push(0x04);
                put_str(&mut buf, tenant);
            }
        }
        buf
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            0x01 => Request::Ping,
            0x02 => Request::Query {
                tenant: r.str()?,
                sql: r.str()?,
                k: r.u32()?,
                timeout_ms: r.u32()?,
            },
            0x03 => {
                let tenant = r.str()?;
                let table = r.str()?;
                let n = r.len(1)?;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?;
                    columns.push((name, r.column()?));
                }
                Request::Ingest {
                    tenant,
                    table,
                    columns,
                }
            }
            0x04 => Request::Stats { tenant: r.str()? },
            t => return Err(WireError(format!("unknown request tag {t:#x}"))),
        };
        r.done()?;
        Ok(req)
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Pong => buf.push(0x81),
            Response::Answer(a) => {
                buf.push(0x82);
                match &a.degraded {
                    None => buf.push(0),
                    Some(d) => {
                        buf.push(1);
                        put_f64(&mut buf, d.coverage);
                        put_f64(&mut buf, d.ci_inflation);
                    }
                }
                put_u32(&mut buf, a.groups.len() as u32);
                for g in &a.groups {
                    put_u32(&mut buf, g.key.len() as u32);
                    for v in &g.key {
                        put_value(&mut buf, v);
                    }
                    put_u32(&mut buf, g.values.len() as u32);
                    for e in &g.values {
                        put_f64(&mut buf, e.value);
                        put_f64(&mut buf, e.ci_half_width);
                        put_u64(&mut buf, e.support);
                    }
                }
            }
            Response::IngestAck { watermark } => {
                buf.push(0x83);
                put_u64(&mut buf, *watermark);
            }
            Response::Overloaded { retry_after_ms } => {
                buf.push(0x84);
                put_u32(&mut buf, *retry_after_ms);
            }
            Response::Error { code, message } => {
                buf.push(0x85);
                buf.push(*code as u8);
                put_str(&mut buf, message);
            }
            Response::StatsReply(s) => {
                buf.push(0x86);
                put_u64(&mut buf, s.answers);
                put_u64(&mut buf, s.degraded);
                put_u64(&mut buf, s.shed);
                put_u64(&mut buf, s.rejected_draining);
                put_u64(&mut buf, s.ingest_acks);
                put_u64(&mut buf, s.errors);
            }
        }
        buf
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            0x81 => Response::Pong,
            0x82 => {
                let degraded = match r.u8()? {
                    0 => None,
                    1 => Some(DegradedInfo {
                        coverage: r.f64()?,
                        ci_inflation: r.f64()?,
                    }),
                    t => return Err(WireError(format!("unknown degraded tag {t}"))),
                };
                let gn = r.len(1)?;
                let mut groups = Vec::with_capacity(gn);
                for _ in 0..gn {
                    let kn = r.len(1)?;
                    let mut key = Vec::with_capacity(kn);
                    for _ in 0..kn {
                        key.push(r.value()?);
                    }
                    let vn = r.len(24)?;
                    let mut values = Vec::with_capacity(vn);
                    for _ in 0..vn {
                        values.push(AnswerAgg {
                            value: r.f64()?,
                            ci_half_width: r.f64()?,
                            support: r.u64()?,
                        });
                    }
                    groups.push(AnswerGroup { key, values });
                }
                Response::Answer(Answer { degraded, groups })
            }
            0x83 => Response::IngestAck {
                watermark: r.u64()?,
            },
            0x84 => Response::Overloaded {
                retry_after_ms: r.u32()?,
            },
            0x85 => Response::Error {
                code: ErrorCode::from_u8(r.u8()?)?,
                message: r.str()?,
            },
            0x86 => Response::StatsReply(TenantSnapshot {
                answers: r.u64()?,
                degraded: r.u64()?,
                shed: r.u64()?,
                rejected_draining: r.u64()?,
                ingest_acks: r.u64()?,
                errors: r.u64()?,
            }),
            t => return Err(WireError(format!("unknown response tag {t:#x}"))),
        };
        r.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        // `Request` has no `PartialEq` (see the type docs); a decode
        // followed by a re-encode must reproduce the canonical bytes.
        let bytes = req.encode();
        let reencoded = Request::decode(&bytes).expect("decodes").encode();
        assert_eq!(reencoded, bytes);
    }

    fn roundtrip_resp(resp: Response) {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).expect("decodes"), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Query {
            tenant: "acme".into(),
            sql: "SELECT g, SUM(v) FROM t WHERE key BETWEEN 1 AND 9 GROUP BY g".into(),
            k: 64,
            timeout_ms: 250,
        });
        roundtrip_req(Request::Ingest {
            tenant: "acme".into(),
            table: "t".into(),
            columns: vec![
                ("a".into(), Column::Int32(vec![1, -2, 3])),
                ("b".into(), Column::Int64(vec![i64::MIN, 0, i64::MAX])),
                ("c".into(), Column::Float64(vec![0.5, -1.25])),
                (
                    "d".into(),
                    Column::Dict {
                        codes: vec![0, 1, 0],
                        dict: Arc::new(vec!["x".into(), "y".into()]),
                    },
                ),
            ],
        });
        roundtrip_req(Request::Stats {
            tenant: "acme".into(),
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Answer(Answer {
            degraded: Some(DegradedInfo {
                coverage: 0.25,
                ci_inflation: 8.0,
            }),
            groups: vec![AnswerGroup {
                key: vec![Value::Int(7), Value::Str("MFGR#12".into()), Value::Null],
                values: vec![AnswerAgg {
                    value: 123.5,
                    ci_half_width: 4.5,
                    support: 42,
                }],
            }],
        }));
        roundtrip_resp(Response::IngestAck { watermark: 9001 });
        roundtrip_resp(Response::Overloaded {
            retry_after_ms: 100,
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::Draining,
            message: "server draining".into(),
        });
        roundtrip_resp(Response::StatsReply(TenantSnapshot {
            answers: 1,
            degraded: 2,
            shed: 3,
            rejected_draining: 4,
            ingest_acks: 5,
            errors: 6,
        }));
    }

    #[test]
    fn out_of_range_dict_code_is_rejected_at_decode() {
        // A remote peer can put any u32 in the codes vector; decode
        // must refuse codes the frame's own dictionary cannot resolve
        // before they reach the engine's dictionary-merge remap.
        let req = Request::Ingest {
            tenant: "t".into(),
            table: "t".into(),
            columns: vec![(
                "d".into(),
                Column::Dict {
                    codes: vec![0, 3],
                    dict: Arc::new(vec!["only".into()]),
                },
            )],
        };
        let err = Request::decode(&req.encode()).expect_err("code 3 vs 1-entry dict");
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn corrupt_payloads_fail_typed_never_panic() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xFF]).is_err());
        assert!(Response::decode(&[0x85, 99, 0, 0, 0, 0]).is_err());
        // Truncated string length.
        assert!(Request::decode(&[0x04, 10, 0, 0, 0, b'a']).is_err());
        // A length prefix far past the payload is rejected before any
        // allocation.
        let mut bomb = vec![0x03];
        put_str(&mut bomb, "t");
        put_str(&mut bomb, "t");
        put_u32(&mut bomb, u32::MAX);
        assert!(Request::decode(&bomb).is_err());
        // Trailing garbage after a valid message is rejected.
        let mut padded = Request::Ping.encode();
        padded.push(0);
        assert!(Request::decode(&padded).is_err());
    }

    #[test]
    fn framing_roundtrips_over_a_buffer() {
        let payload = Request::Query {
            tenant: "t0".into(),
            sql: "SELECT 1".into(),
            k: 8,
            timeout_ms: 0,
        }
        .encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write");
        let mut cursor = std::io::Cursor::new(wire);
        match read_frame(&mut cursor).expect("read") {
            FrameRead::Frame(got) => assert_eq!(got, payload),
            other => panic!("expected a frame, got {other:?}"),
        }
        // A second read on the drained buffer is a clean EOF.
        assert!(matches!(
            read_frame(&mut cursor).expect("eof"),
            FrameRead::Eof
        ));
    }

    #[test]
    fn oversized_frame_header_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        let err = read_frame(&mut cursor).expect_err("cap enforced");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
