//! Tenant namespaces: one [`LaqyService`] (sample store, catalog epoch
//! chain, WAL) per tenant, plus that tenant's admission gate, default
//! budget, and serving counters.
//!
//! Tenants are created lazily on first use, capped by
//! [`ServerConfig::max_tenants`](crate::ServerConfig::max_tenants).
//! Creation holds the registry write lock across the new tenant's WAL
//! recovery on purpose: two connections racing the same tenant id must
//! never open two appenders on one WAL directory. Isolation is
//! structural — each tenant's ingest publishes new table epochs into
//! its *own* catalog (the shared base `Arc<Table>`s are never mutated),
//! so no request of tenant A can observe or delay tenant B's data.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use laqy::{LaqyService, QueryBudget, SessionConfig};
use laqy_engine::Catalog;
use laqy_sync::atomic::{AtomicU64, Ordering};
use laqy_sync::{classes, RwLock};

use crate::admission::Gate;
use crate::protocol::{ErrorCode, TenantSnapshot};
use crate::ServerConfig;

/// Longest accepted tenant name; names become directory components.
pub const MAX_TENANT_NAME: usize = 64;

/// One tenant's serving state.
pub struct TenantState {
    /// The validated tenant name.
    pub name: String,
    /// The tenant's private engine service (store + catalog + WAL).
    pub service: LaqyService,
    /// The tenant's admission gate.
    pub gate: Gate,
    /// Default per-request budget, tightened (never relaxed) by the
    /// request's own `timeout_ms`.
    pub default_budget: QueryBudget,
    /// Serving counters, reported via `Stats`.
    pub counters: TenantCounters,
    /// `(snapshot dir, wal dir)` when the server persists tenants.
    pub dirs: Option<(PathBuf, PathBuf)>,
}

/// Per-tenant serving counters (the wire-visible half of the stats).
#[derive(Default)]
pub struct TenantCounters {
    answers: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    rejected_draining: AtomicU64,
    ingest_acks: AtomicU64,
    errors: AtomicU64,
}

impl TenantCounters {
    pub(crate) fn note_answer(&self, degraded: bool) {
        self.answers.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_rejected_draining(&self) {
        self.rejected_draining.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_ingest_ack(&self) {
        self.ingest_acks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot for a `StatsReply`.
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            answers: self.answers.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            ingest_acks: self.ingest_acks.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// Why a tenant lookup failed, mapped onto wire error codes.
#[derive(Debug)]
pub enum TenantError {
    /// The name is empty, too long, or carries non-`[A-Za-z0-9_-]`
    /// characters (names become directory components).
    BadName(String),
    /// The tenant cap is reached and the name is new.
    Limit,
    /// The registry is closed for drain and the name is new: existing
    /// tenants still resolve, new ones are refused.
    Draining,
    /// Creating the tenant's persistence (dirs, WAL recovery) failed.
    Persist(String),
}

impl TenantError {
    /// The wire error code for this failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            TenantError::BadName(_) => ErrorCode::BadRequest,
            TenantError::Limit => ErrorCode::TenantLimit,
            TenantError::Draining => ErrorCode::Draining,
            TenantError::Persist(_) => ErrorCode::Failed,
        }
    }

    /// The wire error message for this failure.
    pub fn message(&self) -> String {
        match self {
            TenantError::BadName(n) => {
                format!("invalid tenant name {n:?}: 1..={MAX_TENANT_NAME} chars of [A-Za-z0-9_-]")
            }
            TenantError::Limit => "tenant limit reached".to_string(),
            TenantError::Draining => {
                "server is draining; new tenants are not accepted".to_string()
            }
            TenantError::Persist(e) => format!("tenant persistence setup failed: {e}"),
        }
    }
}

/// The map plus the drain latch, guarded together so closing the
/// registry and listing its tenants is one atomic step.
struct Tenants {
    map: HashMap<String, Arc<TenantState>>,
    /// Set by [`TenantRegistry::close`]: existing tenants still
    /// resolve (their gates answer `Draining`), new ones are refused.
    draining: bool,
}

/// The lazy tenant registry.
pub struct TenantRegistry {
    tenants: RwLock<Tenants>,
    base_catalog: Catalog,
    config: Arc<ServerConfig>,
}

impl TenantRegistry {
    /// An empty registry over the shared base catalog.
    pub fn new(base_catalog: Catalog, config: Arc<ServerConfig>) -> Self {
        Self {
            tenants: RwLock::named(
                classes::SERVER_TENANTS,
                Tenants {
                    map: HashMap::new(),
                    draining: false,
                },
            ),
            base_catalog,
            config,
        }
    }

    /// Look up a tenant, creating it on first use. The read path is a
    /// shared-lock hash lookup; creation takes the write lock and
    /// re-checks under it. Once [`close`](TenantRegistry::close) has
    /// run, creation is refused with [`TenantError::Draining`].
    pub fn get_or_create(&self, name: &str) -> Result<Arc<TenantState>, TenantError> {
        if !valid_name(name) {
            return Err(TenantError::BadName(name.to_string()));
        }
        if let Some(t) = self.tenants.read().map.get(name) {
            return Ok(Arc::clone(t));
        }
        let mut tenants = self.tenants.write();
        if let Some(t) = tenants.map.get(name) {
            return Ok(Arc::clone(t));
        }
        if tenants.draining {
            return Err(TenantError::Draining);
        }
        if tenants.map.len() >= self.config.max_tenants {
            return Err(TenantError::Limit);
        }
        let state = Arc::new(self.create(name)?);
        tenants.map.insert(name.to_string(), Arc::clone(&state));
        Ok(state)
    }

    /// Look up an existing tenant without creating it — the read-only
    /// path for `Stats` probes, which must not consume tenant slots or
    /// allocate services/WALs for names that were never served.
    pub fn lookup(&self, name: &str) -> Result<Option<Arc<TenantState>>, TenantError> {
        if !valid_name(name) {
            return Err(TenantError::BadName(name.to_string()));
        }
        Ok(self.tenants.read().map.get(name).map(Arc::clone))
    }

    /// Flip the registry into draining and return every tenant that
    /// exists at that instant. Taking the write lock orders this
    /// against racing creations: any tenant created before the latch
    /// flips is in the returned list, anything after is refused with
    /// [`TenantError::Draining`] — so drain can never miss a gate.
    pub fn close(&self) -> Vec<Arc<TenantState>> {
        let mut tenants = self.tenants.write();
        tenants.draining = true;
        tenants.map.values().map(Arc::clone).collect()
    }

    /// Every live tenant (for drain reports and tests).
    pub fn list(&self) -> Vec<Arc<TenantState>> {
        self.tenants.read().map.values().map(Arc::clone).collect()
    }

    /// Build one tenant: a private service over a clone of the base
    /// catalog (cheap `Arc` clones; ingest publishes new epochs into
    /// this clone only), seeded per tenant name for reproducible yet
    /// distinct sampling streams, with WAL-backed persistence when the
    /// server has a data dir. Called with the registry write lock held
    /// — see the module docs for why that is deliberate.
    fn create(&self, name: &str) -> Result<TenantState, TenantError> {
        let cfg = &self.config;
        let service = LaqyService::with_config(
            self.base_catalog.clone(),
            SessionConfig {
                threads: cfg.threads,
                seed: cfg.seed ^ name_seed(name),
                ..Default::default()
            },
        );
        let dirs = match &cfg.data_dir {
            None => None,
            Some(root) => {
                let snap = root.join(name).join("snap");
                let wal = root.join(name).join("wal");
                std::fs::create_dir_all(&snap)
                    .and_then(|()| std::fs::create_dir_all(&wal))
                    .map_err(|e| TenantError::Persist(e.to_string()))?;
                let has_state = dir_has_entries(&snap) || dir_has_entries(&wal);
                if has_state {
                    // laqy-lint: allow(guard-blocking-op) -- tenant creation is exclusive by design: the registry write guard must cover WAL recovery so a racing connection cannot open a second appender on this tenant's log.
                    service
                        .recover_with_wal(&snap, &wal)
                        .map_err(|e| TenantError::Persist(e.to_string()))?;
                } else {
                    // laqy-lint: allow(guard-blocking-op) -- same exclusivity argument as recovery: the appender open is covered by the registry write guard.
                    service
                        .enable_wal(&wal)
                        .map_err(|e| TenantError::Persist(e.to_string()))?;
                }
                Some((snap, wal))
            }
        };
        Ok(TenantState {
            name: name.to_string(),
            service,
            gate: Gate::new(cfg.tenant_permits, cfg.tenant_queue),
            default_budget: QueryBudget::with_deadline(cfg.default_allowance),
            counters: TenantCounters::default(),
            dirs,
        })
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_NAME
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Stable per-name seed perturbation (FNV-1a over the name bytes).
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn dir_has_entries(dir: &std::path::Path) -> bool {
    std::fs::read_dir(dir)
        .map(|mut it| it.next().is_some())
        .unwrap_or(false)
}

/// The admission wait budget is part of the tenant contract: waiting
/// longer than the default allowance could never produce a useful
/// answer, so the queue wait is capped at the smaller of the configured
/// admission wait and the tenant's own allowance.
pub fn queue_wait_cap(config: &ServerConfig) -> Duration {
    config.admission_max_wait.min(config.default_allowance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> Arc<ServerConfig> {
        Arc::new(ServerConfig {
            max_tenants: 2,
            ..ServerConfig::default()
        })
    }

    fn tiny_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            laqy_engine::Table::new(
                "t",
                vec![
                    ("key".into(), laqy_engine::Column::Int64((0..50).collect())),
                    (
                        "v".into(),
                        laqy_engine::Column::Int64((0..50).map(|i| i % 5).collect()),
                    ),
                ],
            )
            .expect("table builds"),
        );
        cat
    }

    #[test]
    fn names_are_validated() {
        assert!(valid_name("tenant-0_A"));
        assert!(!valid_name(""));
        assert!(!valid_name("has space"));
        assert!(!valid_name("dot./.dot"));
        assert!(!valid_name(&"x".repeat(MAX_TENANT_NAME + 1)));
    }

    #[test]
    fn creation_is_lazy_capped_and_cached() {
        let reg = TenantRegistry::new(tiny_catalog(), test_config());
        let a = reg.get_or_create("a").expect("created");
        let a2 = reg.get_or_create("a").expect("cached");
        assert!(Arc::ptr_eq(&a, &a2), "second lookup returns the same state");
        reg.get_or_create("b").expect("second tenant fits");
        assert!(
            matches!(reg.get_or_create("c"), Err(TenantError::Limit)),
            "third tenant is over the cap"
        );
        assert!(matches!(
            reg.get_or_create("../evil"),
            Err(TenantError::BadName(_))
        ));
        assert_eq!(reg.list().len(), 2);
    }

    #[test]
    fn lookup_never_creates() {
        let reg = TenantRegistry::new(tiny_catalog(), test_config());
        assert!(reg.lookup("ghost").expect("valid name").is_none());
        assert_eq!(reg.list().len(), 0, "lookup must not allocate a tenant");
        assert!(matches!(reg.lookup("../evil"), Err(TenantError::BadName(_))));
        let a = reg.get_or_create("a").expect("a");
        let found = reg.lookup("a").expect("valid name").expect("exists");
        assert!(Arc::ptr_eq(&a, &found));
    }

    #[test]
    fn close_stops_creation_but_existing_tenants_resolve() {
        let reg = TenantRegistry::new(tiny_catalog(), test_config());
        let a = reg.get_or_create("a").expect("a");
        let closed = reg.close();
        assert_eq!(closed.len(), 1, "close returns the drain list");
        assert!(
            matches!(reg.get_or_create("b"), Err(TenantError::Draining)),
            "new tenants are refused after close"
        );
        let a2 = reg.get_or_create("a").expect("existing tenants still resolve");
        assert!(Arc::ptr_eq(&a, &a2));
    }

    #[test]
    fn tenant_ingest_does_not_leak_into_other_tenants() {
        let reg = TenantRegistry::new(tiny_catalog(), test_config());
        let a = reg.get_or_create("a").expect("a");
        let b = reg.get_or_create("b").expect("b");
        let batch = vec![
            ("key".to_string(), laqy_engine::Column::Int64(vec![50, 51])),
            ("v".to_string(), laqy_engine::Column::Int64(vec![1, 2])),
        ];
        let watermark = a.service.ingest("t", batch).expect("ingest applies");
        assert_eq!(watermark, 52);
        // Tenant b (and the shared base rows) are untouched.
        assert_eq!(b.service.catalog().table("t").expect("t").num_rows(), 50);
        assert_eq!(a.service.catalog().table("t").expect("t").num_rows(), 52);
    }
}
