//! Standalone serving binary: generate an SSB catalog, serve it, and
//! drain gracefully on stdin EOF, `quit`, or `drain`.
//!
//! ```text
//! laqy-server [--addr 127.0.0.1:7878] [--sf 0.01] [--data DIR]
//!             [--permits N] [--queue N] [--threads N] [--seed N]
//! ```

use std::time::Duration;

use laqy_server::{Server, ServerConfig};
use laqy_workload::ssb::SsbConfig;

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut sf = 0.01;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--sf" => sf = parse(&value("--sf"), "--sf"),
            "--data" => config.data_dir = Some(value("--data").into()),
            "--permits" => config.tenant_permits = parse(&value("--permits"), "--permits"),
            "--queue" => config.tenant_queue = parse(&value("--queue"), "--queue"),
            "--threads" => config.threads = parse(&value("--threads"), "--threads"),
            "--seed" => config.seed = parse(&value("--seed"), "--seed"),
            "--allowance-ms" => {
                config.default_allowance =
                    Duration::from_millis(parse(&value("--allowance-ms"), "--allowance-ms"))
            }
            "--help" | "-h" => {
                println!(
                    "laqy-server [--addr A] [--sf F] [--data DIR] [--permits N] \
                     [--queue N] [--threads N] [--seed N] [--allowance-ms N]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }

    eprintln!("generating SSB catalog at sf {sf} ...");
    let catalog = laqy_workload::generate(&SsbConfig {
        scale_factor: sf,
        seed: 0x55B,
    });
    let server = match Server::start(catalog, config) {
        Ok(s) => s,
        Err(e) => die(&format!("bind failed: {e}")),
    };
    println!("serving on {} — EOF or 'quit' drains", server.addr());

    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if matches!(line.trim(), "quit" | "drain" | "exit") => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    eprintln!("draining ...");
    let report = server.shutdown();
    eprintln!(
        "drained {} tenants (idle: {}); snapshots: {:?}",
        report.tenants, report.idle, report.snapshots
    );
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value {s:?} for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("laqy-server: {msg}");
    std::process::exit(2);
}
