//! A minimal blocking client for the serving protocol: one request,
//! one response, over a persistent connection. The CLI, load
//! generator, and test suites all speak through this — nothing outside
//! `crates/server` touches a socket directly (`cargo run -p xtask --
//! lint` enforces it).

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, FrameRead, Request, Response};

/// A blocking protocol client. Not `Sync`; give each thread its own.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect with symmetric I/O timeouts: a server that stalls past
    /// `timeout` surfaces as an `Err`, never a hang — the client-side
    /// half of the protocol's no-hang contract.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client { stream })
    }

    /// Send one request and read its response.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        // An `Idle` here means the read timeout elapsed with no reply
        // started: for a client that just asked a question, that is a
        // timeout, not an idle peer.
        match read_frame(&mut self.stream)? {
            FrameRead::Frame(payload) => Response::decode(&payload)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
            FrameRead::Eof => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            )),
            FrameRead::Idle => Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "no response within the read timeout",
            )),
        }
    }
}
