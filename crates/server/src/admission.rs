//! Per-tenant admission control: concurrency permits, a bounded wait
//! queue, and explicit load shedding.
//!
//! The gate is a counting semaphore built from the workspace's
//! `laqy_sync` primitives (so the lock-order detector and model checker
//! see it): at most `permits` requests execute concurrently, at most
//! `queue` more wait, and everything beyond that is shed *immediately*
//! with a typed `Overloaded` — the queue is the only place a request
//! ever waits, and its depth bounds the server's memory and the
//! client's worst-case wait. A queued request that outlives `max_wait`
//! is shed too, so a stuck tenant cannot accumulate waiters.
//!
//! The gate guard is held only inside [`Gate::admit`], [`Permit::drop`],
//! and the drain calls — never across query execution, another tenant's
//! gate, or any engine lock (`laqy.server.gate` sits outside the engine
//! classes in the canonical order; see `laqy_sync::classes`).

use std::time::{Duration, Instant};

use laqy_sync::classes;
use laqy_sync::{Condvar, Mutex};

/// Outcome of one admission attempt.
pub enum Admission<'a> {
    /// Admitted; the permit releases the slot on drop.
    Granted(Permit<'a>),
    /// Shed: the queue is full, or the queue wait exceeded `max_wait`.
    Shed,
    /// The gate is draining; no new work is admitted, ever.
    Draining,
}

struct GateState {
    active: usize,
    waiting: usize,
    draining: bool,
}

/// A bounded admission gate (see the module docs).
pub struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    permits: usize,
    queue: usize,
}

impl Gate {
    /// A gate admitting `permits` concurrent requests with at most
    /// `queue` waiters. Both are clamped to at least 1 permit / 0
    /// waiters.
    pub fn new(permits: usize, queue: usize) -> Self {
        Self {
            state: Mutex::named(
                classes::SERVER_GATE,
                GateState {
                    active: 0,
                    waiting: 0,
                    draining: false,
                },
            ),
            cv: Condvar::named(classes::SERVER_GATE_CV),
            permits: permits.max(1),
            queue,
        }
    }

    /// Try to enter the gate, waiting in the bounded queue up to
    /// `max_wait`. Returns within `max_wait` (plus scheduling noise) in
    /// every case — this is the no-unbounded-queueing guarantee.
    pub fn admit(&self, max_wait: Duration) -> Admission<'_> {
        let mut st = self.state.lock();
        if st.draining {
            return Admission::Draining;
        }
        if st.active < self.permits && st.waiting == 0 {
            st.active += 1;
            return Admission::Granted(Permit { gate: self });
        }
        if st.waiting >= self.queue {
            return Admission::Shed;
        }
        st.waiting += 1;
        let queued_at = Instant::now();
        loop {
            let Some(remaining) = max_wait.checked_sub(queued_at.elapsed()) else {
                st.waiting -= 1;
                return Admission::Shed;
            };
            let timed_out = self.cv.wait_for(&mut st, remaining);
            if st.draining {
                st.waiting -= 1;
                // Waiters behind us must also observe the drain.
                self.cv.notify_all();
                return Admission::Draining;
            }
            if st.active < self.permits {
                st.waiting -= 1;
                st.active += 1;
                return Admission::Granted(Permit { gate: self });
            }
            if timed_out {
                st.waiting -= 1;
                return Admission::Shed;
            }
        }
    }

    /// Close the gate: current waiters are kicked out as
    /// [`Admission::Draining`], future admissions fail the same way.
    /// In-flight permits are unaffected — drain waits for them via
    /// [`Gate::await_idle`].
    pub fn drain(&self) {
        let mut st = self.state.lock();
        st.draining = true;
        drop(st);
        self.cv.notify_all();
    }

    /// Block until no request is active or queued, up to `max_wait`.
    /// Returns `true` when the gate went idle, `false` on timeout (the
    /// caller proceeds anyway; drain must terminate).
    pub fn await_idle(&self, max_wait: Duration) -> bool {
        let started = Instant::now();
        let mut st = self.state.lock();
        while st.active > 0 || st.waiting > 0 {
            let Some(remaining) = max_wait.checked_sub(started.elapsed()) else {
                return false;
            };
            self.cv.wait_for(&mut st, remaining);
        }
        true
    }

    /// `(active, waiting, draining)` at this instant, for stats lines.
    pub fn snapshot(&self) -> (usize, usize, bool) {
        let st = self.state.lock();
        (st.active, st.waiting, st.draining)
    }
}

/// RAII admission slot; releasing wakes one queued request (and the
/// drain loop, which waits for idle via the same condvar).
pub struct Permit<'a> {
    gate: &'a Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock();
        st.active -= 1;
        drop(st);
        self.gate.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    const WAIT: Duration = Duration::from_secs(5);

    #[test]
    fn grants_up_to_permits_then_sheds_past_queue() {
        let gate = Gate::new(2, 1);
        let a = gate.admit(WAIT);
        let b = gate.admit(WAIT);
        assert!(matches!(a, Admission::Granted(_)));
        assert!(matches!(b, Admission::Granted(_)));
        // Both permits held and the queue depth is 1: a zero-wait third
        // request queues then times out; a fourth with a full queue
        // sheds instantly.
        assert!(matches!(gate.admit(Duration::ZERO), Admission::Shed));
        assert_eq!(gate.snapshot(), (2, 0, false));
        drop(a);
        // A freed permit admits immediately again.
        assert!(matches!(gate.admit(WAIT), Admission::Granted(_)));
    }

    #[test]
    fn queued_request_is_admitted_when_a_permit_frees() {
        let gate = Gate::new(1, 4);
        let held = gate.admit(WAIT);
        assert!(matches!(held, Admission::Granted(_)));
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                barrier.wait();
                matches!(gate.admit(WAIT), Admission::Granted(_))
            });
            barrier.wait();
            // Give the waiter time to queue, then free the permit.
            while gate.snapshot().1 == 0 {
                std::thread::yield_now();
            }
            drop(held);
            assert!(waiter.join().expect("no panic"), "waiter admitted");
        });
        // The handoff left exactly one active (the waiter's permit was
        // dropped when the closure returned).
        assert_eq!(gate.snapshot(), (0, 0, false));
    }

    #[test]
    fn queue_wait_is_bounded() {
        let gate = Gate::new(1, 4);
        let _held = gate.admit(WAIT);
        let started = Instant::now();
        let out = gate.admit(Duration::from_millis(50));
        assert!(matches!(out, Admission::Shed));
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shed must come back promptly, not hang"
        );
    }

    #[test]
    fn drain_kicks_waiters_and_closes_admissions() {
        let gate = Gate::new(1, 4);
        let held = gate.admit(WAIT);
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                barrier.wait();
                matches!(gate.admit(WAIT), Admission::Draining)
            });
            barrier.wait();
            while gate.snapshot().1 == 0 {
                std::thread::yield_now();
            }
            gate.drain();
            assert!(waiter.join().expect("no panic"), "waiter sees Draining");
        });
        assert!(matches!(gate.admit(WAIT), Admission::Draining));
        // In-flight work finishes; await_idle observes it.
        drop(held);
        assert!(gate.await_idle(WAIT));
    }

    #[test]
    fn await_idle_times_out_instead_of_hanging() {
        let gate = Gate::new(1, 0);
        let _held = gate.admit(WAIT);
        assert!(!gate.await_idle(Duration::from_millis(30)));
    }
}
