//! The TCP serving front-end: a blocking accept loop handing each
//! connection to its own thread, over the engine's thread-per-core
//! morsel pool.
//!
//! Every request follows the overload pipeline:
//!
//! 1. **Connection cap** — past `max_connections` the socket gets a
//!    best-effort `Overloaded` and is closed; memory stays bounded.
//! 2. **Admission** — the tenant's [`Gate`](crate::admission::Gate)
//!    grants a permit, queues (bounded), or sheds with a typed
//!    `Overloaded { retry_after_ms }`. The request never ran.
//! 3. **Budget** — the tenant's default [`QueryBudget`] is intersected
//!    with the request's own `timeout_ms` (clients can only tighten),
//!    then charged for the time spent queued. An admitted query always
//!    runs; overload makes it *degrade* (partial scan, widened CIs)
//!    before anything is shed.
//! 4. **Slow clients** — reads that stall mid-frame and writes that
//!    exceed `write_timeout` drop the connection; an idle client
//!    between frames is kept.
//!
//! Drain is explicit and ordered: stop admitting (accept loop, tenant
//! creation, every gate), wait for in-flight permits, then snapshot each
//! WAL-backed tenant (fsync + WAL checkpoint). Acked ingests are
//! WAL-durable *before* the ack, so even a kill mid-drain loses
//! nothing that was acknowledged.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use laqy::executor::LaqyError;
use laqy::QueryBudget;
use laqy_engine::Catalog;
use laqy_faults::points;
use laqy_sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::admission::Admission;
use crate::protocol::{
    read_frame, write_frame, Answer, AnswerAgg, AnswerGroup, DegradedInfo, ErrorCode, FrameRead,
    Request, Response, TenantSnapshot,
};
use crate::tenant::{queue_wait_cap, TenantRegistry, TenantState};

/// Serving-layer knobs. `Default` is sized for tests and the loadgen
/// (small permit counts so overload is easy to provoke); production
/// callers set their own.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks a free port.
    pub addr: String,
    /// Concurrent queries/ingests per tenant.
    pub tenant_permits: usize,
    /// Bounded admission queue depth per tenant; beyond it requests
    /// are shed immediately.
    pub tenant_queue: usize,
    /// Longest a request may wait in the admission queue (also capped
    /// by `default_allowance` — see [`queue_wait_cap`]).
    pub admission_max_wait: Duration,
    /// Back-off hint attached to `Overloaded` responses.
    pub retry_after: Duration,
    /// Accepted-connection cap across all tenants.
    pub max_connections: usize,
    /// Lazily-created tenant cap.
    pub max_tenants: usize,
    /// Default per-query wall-clock allowance (the tenant contract).
    pub default_allowance: Duration,
    /// Socket read timeout; doubles as the idle-poll interval for the
    /// stop flag.
    pub read_timeout: Duration,
    /// Socket write timeout; a stalled client write past this drops
    /// the connection.
    pub write_timeout: Duration,
    /// Longest drain waits per tenant for in-flight work.
    pub drain_wait: Duration,
    /// Engine worker threads per tenant service.
    pub threads: usize,
    /// Base RNG seed; perturbed per tenant name.
    pub seed: u64,
    /// When set, tenants persist under `<data_dir>/<tenant>/{snap,wal}`
    /// and ingests are WAL-durable before the ack.
    pub data_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            tenant_permits: 2,
            tenant_queue: 8,
            admission_max_wait: Duration::from_secs(2),
            retry_after: Duration::from_millis(50),
            max_connections: 64,
            max_tenants: 16,
            default_allowance: Duration::from_millis(500),
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(2),
            drain_wait: Duration::from_secs(5),
            threads: laqy::SessionConfig::default().threads,
            seed: 0xA17,
            data_dir: None,
        }
    }
}

/// What a finished drain observed, for operators and the chaos suite.
#[derive(Debug)]
pub struct DrainReport {
    /// Tenants that existed at drain time.
    pub tenants: usize,
    /// Whether every gate went idle within `drain_wait` (false means
    /// in-flight work was abandoned at the timeout; the WAL still
    /// covers every acked ingest).
    pub idle: bool,
    /// Per-tenant snapshot outcome (tenant name, generation or error).
    /// Only WAL-backed tenants appear.
    pub snapshots: Vec<(String, Result<u64, String>)>,
}

struct Shared {
    registry: TenantRegistry,
    config: Arc<ServerConfig>,
    stopping: AtomicBool,
    connections: AtomicUsize,
}

/// A running serving instance. Dropping it without
/// [`Server::shutdown`] leaves the accept thread running until the
/// process exits; tests and the binary always drain.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `catalog` under `config`.
    pub fn start(catalog: Catalog, config: ServerConfig) -> std::io::Result<Server> {
        let config = Arc::new(config);
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: TenantRegistry::new(catalog, Arc::clone(&config)),
            config,
            stopping: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("laqy-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (the ephemeral port when `addr` ended in `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The tenant registry (tests inspect per-tenant state through it).
    pub fn registry(&self) -> &TenantRegistry {
        &self.shared.registry
    }

    /// Graceful drain: close admissions everywhere, wait for in-flight
    /// permits, snapshot every WAL-backed tenant. Idempotent; a second
    /// call re-snapshots (harmless — snapshots are generation-numbered
    /// and atomic).
    pub fn drain(&self) -> DrainReport {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // The accept thread may be parked in accept(); a throwaway
        // connection wakes it to observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        // Closing the registry stops tenant creation and returns the
        // tenant list in one atomic step: a racing request can no
        // longer create a tenant whose gate this loop would miss.
        let tenants = self.shared.registry.close();
        for t in &tenants {
            t.gate.drain();
        }
        let mut idle = true;
        for t in &tenants {
            idle &= t.gate.await_idle(self.shared.config.drain_wait);
        }
        let mut snapshots = Vec::new();
        for t in &tenants {
            if let Some((snap, _wal)) = &t.dirs {
                let outcome = t.service.save_snapshot(snap).map_err(|e| e.to_string());
                snapshots.push((t.name.clone(), outcome));
            }
        }
        DrainReport {
            tenants: tenants.len(),
            idle,
            snapshots,
        }
    }

    /// Drain, then join the accept thread.
    pub fn shutdown(mut self) -> DrainReport {
        let report = self.drain();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        report
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conn_id: u64 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        // Chaos point: an Io kind here drops the accepted connection on
        // the floor — the client sees a reset, never a hang.
        if laqy_faults::point(points::NET_ACCEPT).is_err() {
            continue;
        }
        let slot = ConnSlot::claim(&shared);
        let Some(slot) = slot else {
            shed_connection(stream, &shared.config);
            continue;
        };
        conn_id += 1;
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name(format!("laqy-conn-{conn_id}"))
            .spawn(move || serve_connection(stream, conn_shared, slot));
        if spawned.is_err() {
            // Spawn failure is overload too; the slot frees on drop and
            // the stream closes.
            continue;
        }
    }
}

/// Best-effort `Overloaded` for a connection rejected at the cap. The
/// write may fail (the peer is a stranger); either way the socket
/// closes and nothing is retained.
fn shed_connection(mut stream: TcpStream, config: &ServerConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let payload = Response::Overloaded {
        retry_after_ms: config.retry_after.as_millis() as u32,
    }
    .encode();
    let _ = write_frame(&mut stream, &payload);
}

/// RAII connection-cap slot.
struct ConnSlot {
    shared: Arc<Shared>,
}

impl ConnSlot {
    fn claim(shared: &Arc<Shared>) -> Option<ConnSlot> {
        let prev = shared.connections.fetch_add(1, Ordering::SeqCst);
        if prev >= shared.config.max_connections {
            shared.connections.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(ConnSlot {
            shared: Arc::clone(shared),
        })
    }
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.shared.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

fn serve_connection(mut stream: TcpStream, shared: Arc<Shared>, _slot: ConnSlot) {
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
        || stream
            .set_write_timeout(Some(shared.config.write_timeout))
            .is_err()
    {
        return;
    }
    loop {
        match read_frame(&mut stream) {
            Ok(FrameRead::Idle) => {
                // Idle clients are kept — unless the server is leaving.
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Frame(payload)) => {
                let t_recv = Instant::now();
                // Sampled before dispatch: a request already in flight
                // when drain flips the flag keeps its connection; only
                // requests *processed* while draining close it below.
                let draining = shared.stopping.load(Ordering::SeqCst);
                let response = match Request::decode(&payload) {
                    Ok(request) => dispatch(&shared, request, t_recv),
                    Err(e) => Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                };
                if write_frame(&mut stream, &response.encode()).is_err() {
                    // Slow, gone, or chaos-injected: drop the connection.
                    return;
                }
                // A drained request has been answered (with a typed
                // `Draining` for real work); closing here lets
                // connection threads wind down instead of living for as
                // long as the client keeps sending frames.
                if draining {
                    return;
                }
            }
            // Slow client (stalled mid-frame), oversized frame, injected
            // read fault, or a real socket error: drop the connection.
            Err(_) => return,
        }
    }
}

fn dispatch(shared: &Arc<Shared>, request: Request, t_recv: Instant) -> Response {
    match request {
        Request::Ping => Response::Pong,
        // Stats is a read-only probe: it must never allocate a tenant
        // (service, dirs, WAL) or consume a `max_tenants` slot. A
        // never-served tenant reports all-zero counters.
        Request::Stats { tenant } => match shared.registry.lookup(&tenant) {
            Ok(Some(t)) => Response::StatsReply(t.counters.snapshot()),
            Ok(None) => Response::StatsReply(TenantSnapshot::default()),
            Err(e) => Response::Error {
                code: e.code(),
                message: e.message(),
            },
        },
        Request::Query {
            tenant,
            sql,
            k,
            timeout_ms,
        } => with_admission(shared, &tenant, t_recv, |t, budget| {
            run_query(t, &sql, k as usize, requested_budget(timeout_ms, budget))
        }),
        Request::Ingest {
            tenant,
            table,
            columns,
        } => with_admission(shared, &tenant, t_recv, |t, _budget| {
            match t.service.ingest(&table, columns) {
                Ok(watermark) => {
                    t.counters.note_ingest_ack();
                    Response::IngestAck { watermark }
                }
                Err(e) => {
                    t.counters.note_error();
                    error_response(&e)
                }
            }
        }),
    }
}

/// Resolve the tenant, pass its gate, and run `body` holding the
/// permit, with the queue wait already charged against the budget
/// handed in.
fn with_admission(
    shared: &Arc<Shared>,
    tenant: &str,
    t_recv: Instant,
    body: impl FnOnce(&TenantState, QueryBudget) -> Response,
) -> Response {
    let t = match shared.registry.get_or_create(tenant) {
        Ok(t) => t,
        Err(e) => {
            return Response::Error {
                code: e.code(),
                message: e.message(),
            }
        }
    };
    let outcome = match t.gate.admit(queue_wait_cap(&shared.config)) {
        Admission::Shed => {
            t.counters.note_shed();
            Response::Overloaded {
                retry_after_ms: shared.config.retry_after.as_millis() as u32,
            }
        }
        Admission::Draining => {
            t.counters.note_rejected_draining();
            Response::Error {
                code: ErrorCode::Draining,
                message: "server is draining; admissions are closed".to_string(),
            }
        }
        Admission::Granted(permit) => {
            // Everything since the frame arrived — decode plus queue
            // wait — is charged against the allowance: an admitted
            // request degrades rather than overstaying its contract.
            let budget = t.default_budget.after_wait(t_recv.elapsed());
            let response = body(&t, budget);
            drop(permit);
            response
        }
    };
    outcome
}

/// Fold the client's own `timeout_ms` (0 = tenant default) into the
/// already-wait-charged tenant budget. Intersection means a client can
/// only tighten its contract, never relax it.
fn requested_budget(timeout_ms: u32, tenant_budget: QueryBudget) -> QueryBudget {
    if timeout_ms == 0 {
        return tenant_budget;
    }
    tenant_budget.intersect(QueryBudget::with_deadline(Duration::from_millis(
        timeout_ms as u64,
    )))
}

fn run_query(t: &TenantState, sql: &str, k: usize, budget: QueryBudget) -> Response {
    let planned = {
        let catalog = t.service.catalog();
        laqy::approx_query(&catalog, sql, k)
    };
    let query = match planned {
        Ok(q) => q,
        Err(e) => {
            t.counters.note_error();
            return error_response(&e);
        }
    };
    let result = match t.service.run_with_budget(&query, budget) {
        Ok(r) => r,
        Err(e) => {
            t.counters.note_error();
            return error_response(&e);
        }
    };
    let keys = match t.service.decode_keys(&query, &result) {
        Ok(k) => k,
        Err(e) => {
            t.counters.note_error();
            return error_response(&e);
        }
    };
    let degraded = result.stats.degraded.as_ref().map(|d| DegradedInfo {
        coverage: d.coverage,
        ci_inflation: d.ci_inflation,
    });
    let groups = keys
        .into_iter()
        .zip(result.groups.iter())
        .map(|(key, g)| AnswerGroup {
            key,
            values: g
                .values
                .iter()
                .map(|v| AnswerAgg {
                    value: v.value,
                    ci_half_width: v.ci_half_width,
                    support: v.support as u64,
                })
                .collect(),
        })
        .collect();
    t.counters.note_answer(degraded.is_some());
    Response::Answer(Answer { degraded, groups })
}

/// Map an engine failure onto the wire. Every failure class a request
/// can hit has a typed code — a client never sees a hang or a torn
/// frame for an engine-side problem.
fn error_response(e: &LaqyError) -> Response {
    let code = match e {
        LaqyError::Unsupported(_) => ErrorCode::BadRequest,
        LaqyError::WorkerPanic(_) => ErrorCode::WorkerPanic,
        LaqyError::Injected(_) => ErrorCode::Injected,
        _ => ErrorCode::Failed,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}
