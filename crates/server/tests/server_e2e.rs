//! End-to-end serving tests over a real TCP socket: the protocol's
//! typed-outcome contract, budget propagation, overload shedding, the
//! connection cap, and drain-then-recover zero-loss.

use std::sync::Arc;
use std::time::Duration;

use laqy_server::protocol::{ErrorCode, Request, Response, TenantSnapshot};
use laqy_server::{Client, Server, ServerConfig};
use laqy_workload::ssb::SsbConfig;

const IO_TIMEOUT: Duration = Duration::from_secs(10);

fn test_config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> Server {
    let catalog = laqy_workload::generate(&SsbConfig::tiny());
    Server::start(catalog, config).expect("server binds")
}

fn connect(server: &Server) -> Client {
    Client::connect(server.addr(), IO_TIMEOUT).expect("client connects")
}

fn q1(tenant: &str, lo: i64, hi: i64) -> Request {
    Request::Query {
        tenant: tenant.to_string(),
        sql: laqy_workload::q1_sql(lo, hi),
        k: 64,
        timeout_ms: 0,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("laqy-server-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn ping_query_ingest_stats_roundtrip() {
    let server = start(test_config());
    let mut client = connect(&server);

    assert!(matches!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    ));

    let answer = client.request(&q1("acme", 0, 2999)).expect("query");
    let Response::Answer(a) = answer else {
        panic!("expected an answer, got {answer:?}");
    };
    assert!(!a.groups.is_empty(), "Q1 over tiny SSB has groups");
    for g in &a.groups {
        assert_eq!(g.values.len(), 2, "SUM + COUNT");
    }

    // Ingest advances the tenant's watermark past the base table.
    let base_rows = SsbConfig::tiny().lineorder_rows();
    let columns = laqy_workload::lineorder_batch(&SsbConfig::tiny(), base_rows, 32);
    let ack = client
        .request(&Request::Ingest {
            tenant: "acme".to_string(),
            table: "lineorder".to_string(),
            columns,
        })
        .expect("ingest");
    let Response::IngestAck { watermark } = ack else {
        panic!("expected an ack, got {ack:?}");
    };
    assert_eq!(watermark, base_rows as u64 + 32);

    let stats = client
        .request(&Request::Stats {
            tenant: "acme".to_string(),
        })
        .expect("stats");
    let Response::StatsReply(s) = stats else {
        panic!("expected stats, got {stats:?}");
    };
    assert_eq!(s.answers, 1);
    assert_eq!(s.ingest_acks, 1);
    assert_eq!(s.shed, 0);
    assert_eq!(s.errors, 0);

    server.shutdown();
}

#[test]
fn failures_are_typed_never_hangs() {
    let server = start(test_config());
    let mut client = connect(&server);

    // SQL the approximate planner rejects.
    let bad_sql = client
        .request(&Request::Query {
            tenant: "t".to_string(),
            sql: "SELECT lo_orderdate FROM lineorder GROUP BY lo_orderdate".to_string(),
            k: 64,
            timeout_ms: 0,
        })
        .expect("typed response");
    assert!(
        matches!(
            bad_sql,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "{bad_sql:?}"
    );

    // A tenant name that would escape the data directory.
    let bad_tenant = client
        .request(&q1("../evil", 0, 9))
        .expect("typed response");
    assert!(
        matches!(
            bad_tenant,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "{bad_tenant:?}"
    );

    // Ingest into a table that does not exist.
    let bad_table = client
        .request(&Request::Ingest {
            tenant: "t".to_string(),
            table: "nope".to_string(),
            columns: vec![("x".to_string(), laqy_engine::Column::Int64(vec![1]))],
        })
        .expect("typed response");
    assert!(
        matches!(
            bad_table,
            Response::Error {
                code: ErrorCode::Failed,
                ..
            }
        ),
        "{bad_table:?}"
    );

    // The connection survived every typed failure.
    assert!(matches!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    ));
    server.shutdown();
}

#[test]
fn hostile_dict_codes_are_typed_bad_request() {
    let server = start(test_config());
    let mut client = connect(&server);
    // Code 9 has no entry in the frame's own 1-string dictionary: a
    // crafted ingest that used to index out of bounds in the engine's
    // dictionary merge. The contract is a typed BadRequest and a live
    // server, never a panic.
    let resp = client
        .request(&Request::Ingest {
            tenant: "t".to_string(),
            table: "lineorder".to_string(),
            columns: vec![(
                "c".to_string(),
                laqy_engine::Column::Dict {
                    codes: vec![9],
                    dict: Arc::new(vec!["v".to_string()]),
                },
            )],
        })
        .expect("typed response");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "{resp:?}"
    );
    // The connection and the server both survived.
    assert!(matches!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    ));
    server.shutdown();
}

#[test]
fn stats_probe_never_creates_a_tenant() {
    let server = start(test_config());
    let mut client = connect(&server);
    let resp = client
        .request(&Request::Stats {
            tenant: "ghost".to_string(),
        })
        .expect("stats");
    assert_eq!(resp, Response::StatsReply(TenantSnapshot::default()));
    assert_eq!(
        server.registry().list().len(),
        0,
        "a read-only probe must not consume a tenant slot"
    );
    server.shutdown();
}

#[test]
fn connections_wind_down_after_drain() {
    // A long read timeout keeps the drain-time idle poll from closing
    // the connection before our post-drain request lands, so the typed
    // Draining answer is deterministic.
    let server = start(ServerConfig {
        read_timeout: Duration::from_secs(5),
        ..test_config()
    });
    let mut client = connect(&server);
    assert!(matches!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    ));
    server.drain();
    // The in-flight connection gets one typed Draining answer (the
    // tenant is new, so this also exercises the registry's creation
    // latch), then the server closes the connection...
    let resp = client.request(&q1("fresh", 0, 9)).expect("typed");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Draining,
                ..
            }
        ),
        "{resp:?}"
    );
    // ...so a client that keeps sending cannot pin a serving thread:
    // the next request fails instead of being answered forever.
    let followup = client.request(&Request::Ping);
    assert!(
        followup.is_err(),
        "connection must close after drain, got {followup:?}"
    );
    server.shutdown();
}

#[test]
fn tiny_timeout_degrades_instead_of_erroring() {
    let server = start(test_config());
    let mut client = connect(&server);
    // 1 ms against ~6k rows: the budget may expire mid-scan, but the
    // contract is an *answer* (possibly degraded), never an error.
    let resp = client
        .request(&Request::Query {
            tenant: "t".to_string(),
            sql: laqy_workload::q1_sql(0, 5_999),
            k: 64,
            timeout_ms: 1,
        })
        .expect("typed response");
    let Response::Answer(a) = resp else {
        panic!("degrade-before-shed violated: {resp:?}");
    };
    if let Some(d) = a.degraded {
        assert!(d.coverage > 0.0 && d.coverage <= 1.0);
        assert!(d.ci_inflation >= 1.0);
    }
    server.shutdown();
}

#[test]
fn exhausted_gate_sheds_with_retry_hint() {
    let config = ServerConfig {
        tenant_permits: 1,
        tenant_queue: 0,
        admission_max_wait: Duration::from_millis(50),
        retry_after: Duration::from_millis(120),
        ..test_config()
    };
    let server = start(config);
    // Hold the tenant's only permit from inside the process, so the
    // wire request deterministically finds the gate full.
    let tenant = server.registry().get_or_create("busy").expect("tenant");
    let held = tenant.gate.admit(Duration::from_secs(1));
    assert!(matches!(held, laqy_server::Admission::Granted(_)));

    let mut client = connect(&server);
    let resp = client.request(&q1("busy", 0, 99)).expect("typed response");
    assert!(
        matches!(
            resp,
            Response::Overloaded {
                retry_after_ms: 120
            }
        ),
        "queue 0 + held permit must shed: {resp:?}"
    );
    // The shed is visible in the tenant's counters.
    assert_eq!(tenant.counters.snapshot().shed, 1);

    drop(held);
    // With the permit released the same query is admitted.
    let resp = client.request(&q1("busy", 0, 99)).expect("query");
    assert!(matches!(resp, Response::Answer(_)), "{resp:?}");
    server.shutdown();
}

#[test]
fn connection_cap_sheds_new_connections() {
    let config = ServerConfig {
        max_connections: 1,
        ..test_config()
    };
    let server = start(config);
    let mut first = connect(&server);
    assert!(matches!(
        first.request(&Request::Ping).expect("ping"),
        Response::Pong
    ));
    // The second connection is accepted, told Overloaded, and closed
    // without reading a request.
    let mut second = connect(&server);
    let resp = second.request(&Request::Ping);
    match resp {
        Ok(Response::Overloaded { .. }) => {}
        Ok(other) => panic!("expected Overloaded at the cap, got {other:?}"),
        // The server may close before our request write lands; that
        // surfaces as an I/O error, which is also a non-hang outcome.
        Err(_) => {}
    }
    // The first connection is unaffected.
    assert!(matches!(
        first.request(&Request::Ping).expect("ping"),
        Response::Pong
    ));
    server.shutdown();
}

#[test]
fn drain_rejects_new_work_and_recovery_keeps_acked_ingest() {
    let dir = temp_dir("drain");
    let config = ServerConfig {
        data_dir: Some(dir.clone()),
        // Keep the drain-time idle poll from racing the post-drain
        // request below (see connections_wind_down_after_drain).
        read_timeout: Duration::from_secs(5),
        ..test_config()
    };
    let server = start(config.clone());
    let mut client = connect(&server);

    let base_rows = SsbConfig::tiny().lineorder_rows();
    let columns = laqy_workload::lineorder_batch(&SsbConfig::tiny(), base_rows, 64);
    let ack = client
        .request(&Request::Ingest {
            tenant: "durable".to_string(),
            table: "lineorder".to_string(),
            columns,
        })
        .expect("ingest");
    let Response::IngestAck { watermark } = ack else {
        panic!("expected ack, got {ack:?}");
    };

    let report = server.drain();
    assert_eq!(report.tenants, 1);
    assert!(report.idle, "no in-flight work to wait for");
    assert_eq!(report.snapshots.len(), 1);
    assert!(report.snapshots[0].1.is_ok(), "{report:?}");

    // Post-drain requests get a typed Draining error, not a hang.
    let resp = client.request(&q1("durable", 0, 99)).expect("typed");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Draining,
                ..
            }
        ),
        "{resp:?}"
    );
    server.shutdown();

    // A fresh server over the same data dir recovers the acked ingest:
    // the tenant's watermark matches what was acknowledged.
    let revived = start(config);
    let tenant = revived
        .registry()
        .get_or_create("durable")
        .expect("recovers");
    let recovered_rows = tenant
        .service
        .catalog()
        .table("lineorder")
        .expect("table")
        .num_rows() as u64;
    assert_eq!(recovered_rows, watermark, "acked ingest must survive");
    // And the recovered tenant still answers over the wire.
    let mut client = connect(&revived);
    let resp = client.request(&q1("durable", 0, 99)).expect("query");
    assert!(matches!(resp, Response::Answer(_)), "{resp:?}");
    revived.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loadgen_smoke_reports_sane_numbers() {
    let server = start(test_config());
    let cfg = laqy_server::LoadgenConfig {
        clients: 4,
        tenants: 2,
        ops_per_client: 30,
        ..Default::default()
    };
    let report = laqy_server::loadgen::run(server.addr(), &cfg);
    assert_eq!(report.ops, 120);
    assert!(report.answers > 0, "{}", report.summary());
    assert!(report.ingest_acks > 0, "{}", report.summary());
    assert_eq!(report.io_errors, 0, "{}", report.summary());
    assert_eq!(
        report.ops,
        report.answers + report.sheds + report.ingest_acks + report.errors,
        "every op has exactly one outcome: {}",
        report.summary()
    );
    assert!(report.p99_ms >= report.p50_ms);
    server.shutdown();
}
