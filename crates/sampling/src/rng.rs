//! Low-overhead random number generators for sampling hot paths.
//!
//! The paper (§6.2) observes that calls into the C++ standard RNG dominate
//! fused sampling operators, and replaces them with an inlined Lehmer
//! generator whose state stays in registers. We mirror that choice:
//! [`Lehmer64`] is a 128-bit multiplicative Lehmer generator (a modern member
//! of the Park–Miller family the paper cites) with a single multiply per
//! draw, and [`MinStd`] is the classic 31-bit Park–Miller "minimal standard"
//! generator kept for fidelity and cross-checking. [`SplitMix64`] is used
//! only to expand user seeds into well-mixed initial states.

/// SplitMix64 — seed expander. Produces well-distributed 64-bit values from
/// sequential seeds; used to initialize the other generators, never in
/// sampling hot paths.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a seed expander from an arbitrary 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// 128-bit multiplicative Lehmer generator.
///
/// `state = state * M (mod 2^128)`, output = high 64 bits. One `u128`
/// multiply per draw; trivially inlined so the state lives in registers,
/// which is exactly the property the paper needed from its inlined
/// generator (§6.2).
#[derive(Debug, Clone)]
pub struct Lehmer64 {
    state: u128,
}

impl Lehmer64 {
    const MULT: u128 = 0xDA94_2042_E4DD_58B5;

    /// Create a generator from a 64-bit seed. The seed is expanded with
    /// SplitMix64 and the state forced odd, as required for a maximal-period
    /// multiplicative generator modulo a power of two.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let hi = sm.next_u64() as u128;
        let lo = sm.next_u64() as u128;
        Self {
            state: (hi << 64 | lo) | 1,
        }
    }

    /// Next 64 random bits.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(Self::MULT);
        (self.state >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline(always)]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits mapped to [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift reduction; the tiny modulo bias
    /// (< 2^-64 · bound) is irrelevant for sampling admission decisions and
    /// avoids a data-dependent rejection loop in the per-tuple hot path.
    #[inline(always)]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline(always)]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.next_below(span) as i64
    }
}

/// Classic Park–Miller "minimal standard" generator (the paper's citation
/// \[31\]): `state = state * 16807 mod (2^31 - 1)`.
///
/// Kept as a reference implementation and for tests that cross-check
/// [`Lehmer64`]'s statistical behaviour against an independent generator.
#[derive(Debug, Clone)]
pub struct MinStd {
    state: u32,
}

impl MinStd {
    const MODULUS: u64 = 0x7FFF_FFFF; // 2^31 - 1
    const MULT: u64 = 16_807;

    /// Create from a seed; the state is forced into `[1, 2^31 - 2]`.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = (sm.next_u64() % (Self::MODULUS - 1)) + 1;
        Self { state: s as u32 }
    }

    /// Next value in `[1, 2^31 - 2]`.
    #[inline]
    pub fn next_u31(&mut self) -> u32 {
        self.state = ((self.state as u64 * Self::MULT) % Self::MODULUS) as u32;
        self.state
    }

    /// Uniform `f64` in `(0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.next_u31() as f64 / Self::MODULUS as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_across_seeds() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn lehmer_is_deterministic() {
        let mut a = Lehmer64::new(7);
        let mut b = Lehmer64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn lehmer_f64_in_unit_interval() {
        let mut rng = Lehmer64::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "f64 draw out of range: {x}");
        }
    }

    #[test]
    fn lehmer_below_respects_bound() {
        let mut rng = Lehmer64::new(11);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn lehmer_range_inclusive() {
        let mut rng = Lehmer64::new(5);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..10_000 {
            let v = rng.next_range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi, "inclusive endpoints should be reachable");
    }

    #[test]
    fn lehmer_mean_is_near_half() {
        let mut rng = Lehmer64::new(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 0.5).abs() < 0.01,
            "uniform mean {mean} too far from 0.5"
        );
    }

    #[test]
    fn lehmer_below_is_roughly_uniform() {
        let mut rng = Lehmer64::new(21);
        let buckets = 10usize;
        let n = 200_000usize;
        let mut counts = vec![0usize; buckets];
        for _ in 0..n {
            counts[rng.next_below(buckets as u64) as usize] += 1;
        }
        let expected = n as f64 / buckets as f64;
        // chi-squared with 9 dof; 33.7 is far beyond the 0.9999 quantile.
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 33.7, "chi2 {chi2} too large for uniformity");
    }

    #[test]
    fn minstd_matches_known_sequence() {
        // Park-Miller: starting from 1, the 10000th value is 1043618065
        // (classic validation constant).
        let mut s = MinStd { state: 1 };
        let mut last = 0;
        for _ in 0..10_000 {
            last = s.next_u31();
        }
        assert_eq!(last, 1_043_618_065);
    }

    #[test]
    fn minstd_stays_in_range() {
        let mut rng = MinStd::new(123);
        for _ in 0..10_000 {
            let v = rng.next_u31() as u64;
            assert!((1..MinStd::MODULUS).contains(&v));
        }
    }
}
