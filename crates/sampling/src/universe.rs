//! Universe (hash-based) sampling.
//!
//! The online-AQP systems LAQy builds on (Quickr, and the big-data
//! production experience report it cites) complement reservoir samplers
//! with *universe* sampling: a row qualifies iff a hash of its key falls
//! below a threshold `p · 2^64`. The decisive property is **consistency**:
//! two relations universe-sampled on the same join key at the same rate
//! keep exactly the matching keys on both sides, so samples commute with
//! joins — something row-level Bernoulli or reservoir sampling cannot do.
//!
//! Universe samples over the same key domain are also trivially mergeable:
//! the sample at rate `min(p1, p2)` is a subset of both inputs, and two
//! samples at the same rate over disjoint inputs union directly — the same
//! non-overlap requirement LAQy's Δ-merging relies on.

use std::hash::{BuildHasher, BuildHasherDefault, Hash};

use crate::stratified::FxHasher;

/// A deterministic universe sampler over a key domain.
///
/// ```
/// use laqy_sampling::UniverseSampler;
///
/// let sampler = UniverseSampler::new(0.1, 42);
/// // Admission depends only on the key: both sides of a join agree.
/// for key in 0..100i64 {
///     assert_eq!(sampler.admits(&key), sampler.admits(&key));
/// }
/// assert_eq!(sampler.scale(), 10.0); // each admitted key stands for 10
/// ```
#[derive(Debug, Clone)]
pub struct UniverseSampler {
    threshold: u64,
    rate: f64,
    seed: u64,
}

impl UniverseSampler {
    /// Create a sampler admitting keys with probability `rate` ∈ [0, 1].
    /// `seed` decorrelates samplers over the same domain.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        Self {
            threshold,
            rate,
            seed,
        }
    }

    /// The sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// True iff `key` belongs to the sampled universe.
    #[inline]
    pub fn admits<K: Hash>(&self, key: &K) -> bool {
        let bh: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        // Mix the seed into the key hash so different samplers disagree.
        let h = bh.hash_one((self.seed, key));
        h <= self.threshold
    }

    /// Filter an iterator down to the sampled universe.
    pub fn filter<'a, K: Hash + 'a>(
        &'a self,
        keys: impl Iterator<Item = K> + 'a,
    ) -> impl Iterator<Item = K> + 'a {
        keys.filter(move |k| self.admits(k))
    }

    /// Horvitz–Thompson scale factor for estimates over this sample
    /// (each admitted key stands for `1 / rate` keys).
    pub fn scale(&self) -> f64 {
        if self.rate == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.rate
        }
    }

    /// The stricter of two samplers over the same domain (same seed): the
    /// lower-rate sample is a subset of the higher-rate one, so the
    /// intersection is just the lower rate.
    pub fn intersect(&self, other: &UniverseSampler) -> Option<UniverseSampler> {
        (self.seed == other.seed).then(|| UniverseSampler {
            threshold: self.threshold.min(other.threshold),
            rate: self.rate.min(other.rate),
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_controls_admission_fraction() {
        for rate in [0.01f64, 0.1, 0.5, 0.9] {
            let s = UniverseSampler::new(rate, 7);
            let n = 100_000;
            let admitted = (0..n).filter(|k| s.admits(k)).count();
            let observed = admitted as f64 / n as f64;
            assert!(
                (observed - rate).abs() < 0.01,
                "rate {rate}: observed {observed}"
            );
        }
    }

    #[test]
    fn extreme_rates() {
        let all = UniverseSampler::new(1.0, 1);
        assert!((0..1000).all(|k| all.admits(&k)));
        let none = UniverseSampler::new(0.0, 1);
        // Hash equal to 0 would still pass `<= 0`; over 1000 keys the
        // chance is ~0 but allow a stray.
        assert!((0..1000).filter(|k| none.admits(k)).count() <= 1);
        assert!(none.scale().is_infinite());
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = UniverseSampler::new(0.3, 1);
        let b = UniverseSampler::new(0.3, 1);
        let c = UniverseSampler::new(0.3, 2);
        let pick = |s: &UniverseSampler| -> Vec<i64> { (0..500).filter(|k| s.admits(k)).collect() };
        assert_eq!(pick(&a), pick(&b));
        assert_ne!(pick(&a), pick(&c));
    }

    #[test]
    fn join_consistency() {
        // The defining property: sampling both join sides on the same key
        // universe keeps matches aligned — every admitted key on side A
        // with a partner in B finds that partner admitted too.
        let s = UniverseSampler::new(0.2, 42);
        let left: Vec<i64> = (0..10_000).collect();
        let right: Vec<i64> = (5_000..15_000).collect();
        let left_sampled: std::collections::HashSet<i64> = s.filter(left.iter().copied()).collect();
        let right_sampled: std::collections::HashSet<i64> =
            s.filter(right.iter().copied()).collect();
        for k in 5_000..15_000i64 {
            if k < 10_000 {
                assert_eq!(
                    left_sampled.contains(&k),
                    right_sampled.contains(&k),
                    "key {k} admitted inconsistently"
                );
            }
        }
        // And the join of the samples is the sample of the join.
        let join_then_sample: Vec<i64> = (5_000..10_000).filter(|k| s.admits(k)).collect();
        let sample_then_join: Vec<i64> = left_sampled
            .intersection(&right_sampled)
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        assert_eq!(
            join_then_sample, sample_then_join,
            "universe sampling must commute with the join"
        );
    }

    #[test]
    fn lower_rate_is_subset() {
        let coarse = UniverseSampler::new(0.5, 9);
        let fine = UniverseSampler::new(0.1, 9);
        for k in 0..5_000i64 {
            if fine.admits(&k) {
                assert!(coarse.admits(&k), "rate nesting violated at {k}");
            }
        }
        let inter = coarse.intersect(&fine).unwrap();
        assert_eq!(inter.rate(), 0.1);
        assert!(coarse.intersect(&UniverseSampler::new(0.5, 10)).is_none());
    }

    #[test]
    fn ht_scaling_recovers_counts() {
        let s = UniverseSampler::new(0.25, 3);
        let n = 200_000;
        let admitted = (0..n).filter(|k| s.admits(k)).count();
        let estimate = admitted as f64 * s.scale();
        assert!(
            (estimate - n as f64).abs() / (n as f64) < 0.02,
            "HT estimate {estimate} vs {n}"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn bad_rate_rejected() {
        let _ = UniverseSampler::new(1.5, 0);
    }
}
