//! Reservoir merging — paper **Algorithm 2**.
//!
//! Two independent reservoirs `{R1, w1}` and `{R2, w2}` merge into
//! `{Rm, w1 + w2}`, statistically equivalent to having run a single
//! reservoir over the union of both original inputs, without touching the
//! original data. The cases follow the paper exactly:
//!
//! - *only a single reservoir defined*: the defined one is the merge result
//!   (`DefinedReservoir`);
//! - *either reservoir array not full*: the not-full reservoir's items are
//!   its complete considered population, so they can simply be offered into
//!   the other reservoir with plain reservoir sampling
//!   (`ReservoirSampling`);
//! - *both full, `k1 == k2`*: `ProportionalSampling` — weighted reservoir
//!   sampling where elements of `R_i` carry weight `w_i / k_i`, so `R1`
//!   elements are selected with aggregate probability `w1 / (w1 + w2)`;
//! - *both full, `k1 != k2`*: `ScaledPropSampling` — the same weighted
//!   sampling; the per-element weight `w_i / k_i` is precisely the paper's
//!   scaling of the weight factor by the reservoir-size ratio.

use crate::reservoir::Reservoir;
use crate::rng::Lehmer64;

/// Merge two optional reservoirs into one with capacity
/// `max(k1, k2)` (or the defined reservoir's capacity when only one input is
/// defined). See [`merge_reservoirs_with_capacity`] to control the output
/// capacity explicitly.
///
/// Panics if both inputs are `None` — a merge of two undefined reservoirs
/// has no meaningful result and indicates a planning bug upstream.
pub fn merge_reservoirs<T: Clone>(
    r1: Option<&Reservoir<T>>,
    r2: Option<&Reservoir<T>>,
    rng: &mut Lehmer64,
) -> Reservoir<T> {
    let capacity = match (r1, r2) {
        (Some(a), Some(b)) => a.capacity().max(b.capacity()),
        (Some(a), None) => a.capacity(),
        (None, Some(b)) => b.capacity(),
        (None, None) => panic!("merge of two undefined reservoirs"),
    };
    merge_reservoirs_with_capacity(r1, r2, capacity, rng)
}

/// Merge two optional reservoirs into one with the given output capacity.
pub fn merge_reservoirs_with_capacity<T: Clone>(
    r1: Option<&Reservoir<T>>,
    r2: Option<&Reservoir<T>>,
    capacity: usize,
    rng: &mut Lehmer64,
) -> Reservoir<T> {
    match (r1, r2) {
        (None, None) => panic!("merge of two undefined reservoirs"),
        // DefinedReservoir: only one input exists.
        (Some(a), None) => resize_into(a, capacity, rng),
        (None, Some(b)) => resize_into(b, capacity, rng),
        (Some(a), Some(b)) => {
            let a_population = !a.is_full() && a.weight() == a.len() as u64;
            let b_population = !b.is_full() && b.weight() == b.len() as u64;
            if a_population || b_population {
                // ReservoirSampling path: offer the complete population of
                // the not-full side into (a resized copy of) the other.
                let (population, other) = if b_population { (b, a) } else { (a, b) };
                // If both are complete populations, either order is valid.
                let mut out = resize_into(other, capacity, rng);
                out.offer_all(population.items(), rng);
                out
            } else {
                // Proportional / ScaledProp sampling: weighted reservoir
                // sampling with per-element weight w_i / |R_i|.
                proportional_merge(a, b, capacity, rng)
            }
        }
    }
}

/// Weighted merge of two (conceptually full) reservoirs.
///
/// Exact construction of a sample equivalent to a full resample of the
/// union input: a uniform `k`-subset of the `w1 + w2` union tuples contains
/// `C1 ~ Hypergeometric(w1 + w2, w1, k)` tuples from input 1, and
/// conditioned on `C1` those tuples are a uniform subset of input 1 — which
/// a uniform `C1`-subset of `R1`'s items also is (uniform subsample of a
/// uniform sample). So: draw the per-source counts by sequential
/// without-replacement draws at source granularity, then take uniform
/// subsets of each reservoir's items. This is the paper's
/// `ProportionalSampling`, and, because the counts are driven by the
/// represented weights rather than the reservoir sizes, it degrades
/// gracefully to `ScaledPropSampling` when `k1 != k2`.
///
/// The drawn count for a source must never exceed its retained items, or
/// the merge would have to over-draw from the other source and bias the
/// composition. The effective merged size is therefore capped at
/// `min(capacity, |R1|, |R2|)`: for the common equal-`k` merge this is the
/// full `k` (each side can always supply up to `k` items); for unequal
/// sizes the merge shrinks to the smaller side's support — the honest
/// `ScaledPropSampling` outcome, trading support for unbiasedness exactly
/// as the paper trades support in under-supported strata (§5.2.3).
fn proportional_merge<T: Clone>(
    a: &Reservoir<T>,
    b: &Reservoir<T>,
    capacity: usize,
    rng: &mut Lehmer64,
) -> Reservoir<T> {
    let k = capacity.min(a.len()).min(b.len());
    // Sequential hypergeometric draw of how many of the k merged slots come
    // from input A.
    let mut remaining_a = a.weight();
    let mut remaining_total = a.weight() + b.weight();
    let mut take_a = 0usize;
    for _ in 0..k {
        if rng.next_below(remaining_total) < remaining_a {
            take_a += 1;
            remaining_a -= 1;
        }
        remaining_total -= 1;
    }
    let take_b = k - take_a;

    let mut items = Vec::with_capacity(take_a + take_b);
    sample_without_replacement(a.items(), take_a, rng, &mut items);
    sample_without_replacement(b.items(), take_b, rng, &mut items);
    Reservoir::from_parts(capacity, items, a.weight() + b.weight())
}

/// Merge `k` reservoirs into one with the given output capacity — the
/// generalized (k-way) Algorithm 2.
///
/// §5.1's merge argument is associative: folding `merge_reservoirs` over a
/// list of pairwise-disjoint inputs yields a valid sample of the union, but
/// a fold re-draws the already-merged prefix at every step. This function
/// instead draws the per-source composition of the merged reservoir in one
/// sequential multi-source hypergeometric pass (a uniform `k`-subset of the
/// `Σ w_i` union tuples contains `C_i` tuples from source `i`, with the
/// `C_i` jointly multivariate-hypergeometric), then takes a uniform
/// `C_i`-subset of each source's retained items. For two inputs this
/// reproduces the pairwise `ProportionalSampling`/`ScaledPropSampling`
/// draw exactly.
///
/// Inputs that are complete populations (not full, `weight == len`) are
/// streamed in afterwards with plain reservoir sampling, mirroring the
/// pairwise `ReservoirSampling` case. The effective merged size is capped
/// at `min(capacity, min_i |R_i|)` over the sampled (non-population)
/// inputs, for the same unbiasedness reason as the pairwise merge.
///
/// Panics if `inputs` is empty.
///
/// ```
/// use laqy_sampling::{merge_reservoirs_k, Lehmer64, Reservoir};
///
/// let mut rng = Lehmer64::new(7);
/// let parts: Vec<Reservoir<u64>> = (0..3)
///     .map(|s| {
///         let mut r = Reservoir::new(8);
///         let mut rng = Lehmer64::new(s);
///         for i in (s * 100)..(s * 100 + 100) {
///             r.offer(i, &mut rng);
///         }
///         r
///     })
///     .collect();
/// let merged = merge_reservoirs_k(parts, 8, &mut rng);
/// assert_eq!(merged.weight(), 300);
/// assert_eq!(merged.len(), 8);
/// ```
pub fn merge_reservoirs_k<T: Clone>(
    inputs: Vec<Reservoir<T>>,
    capacity: usize,
    rng: &mut Lehmer64,
) -> Reservoir<T> {
    assert!(!inputs.is_empty(), "merge of zero reservoirs");
    // Complete populations stream in at the end; everything else takes
    // part in the weighted composition draw.
    let (populations, sampled): (Vec<Reservoir<T>>, Vec<Reservoir<T>>) = inputs
        .into_iter()
        .partition(|r| !r.is_full() && r.weight() == r.len() as u64);
    let mut out = match sampled.len() {
        0 => {
            let capacity = capacity.max(1);
            Reservoir::new(capacity)
        }
        1 => {
            let r = sampled.into_iter().next().expect("one sampled input");
            resize_owned(r, capacity, rng)
        }
        _ => {
            let k = capacity.min(sampled.iter().map(|r| r.len()).min().unwrap_or(0));
            let total_weight: u64 = sampled.iter().map(|r| r.weight()).sum();
            // Sequential multi-source hypergeometric draw of how many of
            // the k merged slots each source contributes.
            let mut remaining: Vec<u64> = sampled.iter().map(|r| r.weight()).collect();
            let mut remaining_total = total_weight;
            let mut take = vec![0usize; sampled.len()];
            for _ in 0..k {
                let mut x = rng.next_below(remaining_total);
                for (t, rem) in take.iter_mut().zip(remaining.iter_mut()) {
                    if x < *rem {
                        *t += 1;
                        *rem -= 1;
                        break;
                    }
                    x -= *rem;
                }
                remaining_total -= 1;
            }
            let mut items = Vec::with_capacity(k);
            for (r, t) in sampled.iter().zip(take) {
                sample_without_replacement(r.items(), t, rng, &mut items);
            }
            Reservoir::from_parts(capacity, items, total_weight)
        }
    };
    for p in populations {
        for item in p.into_items() {
            out.offer(item, rng);
        }
    }
    out
}

/// Append a uniform `count`-subset of `src` to `out` (partial Fisher–Yates
/// over an index array).
fn sample_without_replacement<T: Clone>(
    src: &[T],
    count: usize,
    rng: &mut Lehmer64,
    out: &mut Vec<T>,
) {
    debug_assert!(count <= src.len());
    if count == src.len() {
        out.extend_from_slice(src);
        return;
    }
    let mut idx: Vec<u32> = (0..src.len() as u32).collect();
    for i in 0..count {
        let j = i + rng.next_index(idx.len() - i);
        idx.swap(i, j);
        out.push(src[idx[i] as usize].clone());
    }
}

/// Copy a reservoir into a (possibly different) capacity.
///
/// Growing a full reservoir cannot recover items that were already sampled
/// out, so the items are carried over as-is with the original weight — the
/// sample stays valid, merely with less support than a native-capacity
/// sample would have. Shrinking downsamples uniformly.
fn resize_into<T: Clone>(r: &Reservoir<T>, capacity: usize, rng: &mut Lehmer64) -> Reservoir<T> {
    if capacity == r.capacity() {
        return r.clone();
    }
    if r.len() <= capacity {
        return Reservoir::from_parts(capacity, r.items().to_vec(), r.weight());
    }
    // Downsample uniformly: plain reservoir over the retained items.
    let mut out = Reservoir::new(capacity);
    out.offer_all(r.items(), rng);
    // The output represents the same considered population as the input;
    // offer_all recorded len() offers, so reconcile to the true weight.
    let already = out.weight();
    out.add_weight(r.weight() - already);
    out
}

/// Owned variant of [`resize_into`]: moves the items instead of cloning
/// when no downsampling is needed.
pub(crate) fn resize_owned<T: Clone>(
    r: Reservoir<T>,
    capacity: usize,
    rng: &mut Lehmer64,
) -> Reservoir<T> {
    if capacity == r.capacity() {
        return r;
    }
    if r.len() <= capacity {
        let weight = r.weight();
        return Reservoir::from_parts(capacity, r.into_items(), weight);
    }
    resize_into(&r, capacity, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_reservoir(k: usize, data: std::ops::Range<i64>, seed: u64) -> Reservoir<i64> {
        let mut rng = Lehmer64::new(seed);
        let mut r = Reservoir::new(k);
        for i in data {
            r.offer(i, &mut rng);
        }
        r
    }

    #[test]
    fn merged_weight_is_sum_of_weights() {
        let mut rng = Lehmer64::new(1);
        let a = full_reservoir(10, 0..500, 2);
        let b = full_reservoir(10, 500..1300, 3);
        let m = merge_reservoirs(Some(&a), Some(&b), &mut rng);
        assert_eq!(m.weight(), 1300);
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn single_defined_reservoir_is_identity() {
        let mut rng = Lehmer64::new(4);
        let a = full_reservoir(8, 0..100, 5);
        let m = merge_reservoirs(Some(&a), None, &mut rng);
        assert_eq!(m, a);
        let m2 = merge_reservoirs(None, Some(&a), &mut rng);
        assert_eq!(m2, a);
    }

    #[test]
    #[should_panic(expected = "undefined reservoirs")]
    fn both_undefined_panics() {
        let mut rng = Lehmer64::new(6);
        let _: Reservoir<i64> = merge_reservoirs(None, None, &mut rng);
    }

    #[test]
    fn not_full_side_streams_into_other() {
        let mut rng = Lehmer64::new(7);
        let a = full_reservoir(10, 0..1000, 8); // full
        let b = full_reservoir(10, 1000..1004, 9); // 4 items, population
        let m = merge_reservoirs(Some(&a), Some(&b), &mut rng);
        assert_eq!(m.weight(), 1004);
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn two_small_populations_concatenate() {
        let mut rng = Lehmer64::new(10);
        let a = full_reservoir(10, 0..3, 11);
        let b = full_reservoir(10, 3..6, 12);
        let m = merge_reservoirs(Some(&a), Some(&b), &mut rng);
        assert_eq!(m.weight(), 6);
        let mut items = m.into_items();
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn merged_items_come_from_inputs_without_duplicates() {
        let mut rng = Lehmer64::new(13);
        let a = full_reservoir(20, 0..5000, 14);
        let b = full_reservoir(20, 5000..9000, 15);
        let m = merge_reservoirs(Some(&a), Some(&b), &mut rng);
        let mut items = m.items().to_vec();
        let before = items.len();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), before, "merge must not duplicate items");
        for &x in &items {
            assert!(a.items().contains(&x) || b.items().contains(&x));
        }
    }

    #[test]
    fn proportional_representation_tracks_weights() {
        // R1 represents 9000 tuples, R2 represents 1000: after many merges
        // roughly 90% of merged items should come from R1's input domain.
        let trials = 1500;
        let mut from_a = 0usize;
        let mut total = 0usize;
        for t in 0..trials {
            let a = full_reservoir(20, 0..9000, 100 + t);
            let b = full_reservoir(20, 9000..10_000, 5000 + t);
            let mut rng = Lehmer64::new(9000 + t);
            let m = merge_reservoirs(Some(&a), Some(&b), &mut rng);
            from_a += m.items().iter().filter(|&&x| x < 9000).count();
            total += m.len();
        }
        let frac = from_a as f64 / total as f64;
        assert!(
            (frac - 0.9).abs() < 0.03,
            "fraction from R1 {frac} should track w1/(w1+w2) = 0.9"
        );
    }

    #[test]
    fn scaled_prop_sampling_handles_unequal_k() {
        // k1=30 over 3000 tuples, k2=10 over 3000 tuples. Both represent the
        // same input size, so each side should contribute ~half of the
        // merged sample despite unequal reservoir sizes.
        let trials = 1500;
        let mut from_a = 0usize;
        let mut total = 0usize;
        for t in 0..trials {
            let a = full_reservoir(30, 0..3000, 200 + t);
            let b = full_reservoir(10, 3000..6000, 7000 + t);
            let mut rng = Lehmer64::new(40_000 + t);
            let m = merge_reservoirs_with_capacity(Some(&a), Some(&b), 20, &mut rng);
            assert_eq!(m.weight(), 6000);
            // Effective size caps at the smaller side's support (10) so the
            // composition stays unbiased.
            assert_eq!(m.len(), 10);
            from_a += m.items().iter().filter(|&&x| x < 3000).count();
            total += m.len();
        }
        let frac = from_a as f64 / total as f64;
        assert!(
            (frac - 0.5).abs() < 0.03,
            "unequal-k merge should weight by represented input, got {frac}"
        );
    }

    #[test]
    fn merge_equals_full_resample_statistically() {
        // Key property from §5.1: merging two reservoirs over disjoint
        // inputs is statistically equivalent to one reservoir over the
        // union. Compare per-element inclusion frequency of a merged sample
        // against the analytic k/n.
        let k = 10;
        let n = 400; // 0..300 in R1, 300..400 in R2
        let trials = 6000;
        let mut incl_first = 0usize; // element 0 (in R1's domain)
        let mut incl_late = 0usize; // element 399 (in R2's domain)
        for t in 0..trials {
            let a = full_reservoir(k, 0..300, 3 * t + 1);
            let b = full_reservoir(k, 300..400, 3 * t + 2);
            let mut rng = Lehmer64::new(3 * t + 3);
            let m = merge_reservoirs(Some(&a), Some(&b), &mut rng);
            if m.items().contains(&0) {
                incl_first += 1;
            }
            if m.items().contains(&399) {
                incl_late += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64; // 150
        for c in [incl_first, incl_late] {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.15,
                "merged inclusion {c} deviates {dev:.3} from full-resample expectation {expected}"
            );
        }
    }

    #[test]
    fn k_way_matches_pairwise_for_two_inputs() {
        // The generalized draw must reproduce the pairwise proportional
        // merge exactly (same RNG consumption, same items) so k-way and
        // pairwise paths are interchangeable.
        let a = full_reservoir(12, 0..4000, 21);
        let b = full_reservoir(12, 4000..7000, 22);
        let mut rng1 = Lehmer64::new(23);
        let pairwise = merge_reservoirs(Some(&a), Some(&b), &mut rng1);
        let mut rng2 = Lehmer64::new(23);
        let kway = merge_reservoirs_k(vec![a, b], 12, &mut rng2);
        assert_eq!(pairwise, kway);
    }

    #[test]
    fn k_way_weight_is_sum_and_len_is_capped() {
        let mut rng = Lehmer64::new(30);
        let parts = vec![
            full_reservoir(10, 0..500, 31),
            full_reservoir(10, 500..900, 32),
            full_reservoir(10, 900..2000, 33),
            full_reservoir(10, 2000..2004, 34), // population: 4 items
        ];
        let m = merge_reservoirs_k(parts, 10, &mut rng);
        assert_eq!(m.weight(), 2004);
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn k_way_single_input_is_identity() {
        let mut rng = Lehmer64::new(35);
        let a = full_reservoir(8, 0..100, 36);
        let m = merge_reservoirs_k(vec![a.clone()], 8, &mut rng);
        assert_eq!(m, a);
    }

    #[test]
    fn k_way_all_populations_concatenate() {
        let mut rng = Lehmer64::new(37);
        let parts = vec![
            full_reservoir(10, 0..3, 38),
            full_reservoir(10, 3..5, 39),
            full_reservoir(10, 5..9, 40),
        ];
        let m = merge_reservoirs_k(parts, 10, &mut rng);
        assert_eq!(m.weight(), 9);
        let mut items = m.into_items();
        items.sort_unstable();
        assert_eq!(items, (0..9).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "zero reservoirs")]
    fn k_way_empty_input_panics() {
        let mut rng = Lehmer64::new(41);
        let _: Reservoir<i64> = merge_reservoirs_k(vec![], 4, &mut rng);
    }

    #[test]
    fn k_way_proportional_representation_tracks_weights() {
        // Three sources with weights 6000 / 3000 / 1000: merged composition
        // should track 60% / 30% / 10%.
        let trials = 1500;
        let mut from = [0usize; 3];
        let mut total = 0usize;
        for t in 0..trials {
            let parts = vec![
                full_reservoir(20, 0..6000, 300 + t),
                full_reservoir(20, 6000..9000, 9000 + t),
                full_reservoir(20, 9000..10_000, 18_000 + t),
            ];
            let mut rng = Lehmer64::new(27_000 + t);
            let m = merge_reservoirs_k(parts, 20, &mut rng);
            for &x in m.items() {
                let src = if x < 6000 {
                    0
                } else if x < 9000 {
                    1
                } else {
                    2
                };
                from[src] += 1;
            }
            total += m.len();
        }
        for (src, expect) in [(0usize, 0.6f64), (1, 0.3), (2, 0.1)] {
            let frac = from[src] as f64 / total as f64;
            assert!(
                (frac - expect).abs() < 0.03,
                "source {src} fraction {frac} should track weight share {expect}"
            );
        }
    }

    #[test]
    fn k_way_merge_equals_full_resample_statistically() {
        // §5.1 associativity: a 3-way merge over disjoint inputs matches
        // the analytic inclusion probability k/n of one reservoir over the
        // union.
        let k = 10;
        let n = 500; // 0..200, 200..450, 450..500
        let trials = 6000;
        let tracked = [0i64, 250, 499];
        let mut incl = [0usize; 3];
        for t in 0..trials {
            let parts = vec![
                full_reservoir(k, 0..200, 4 * t + 1),
                full_reservoir(k, 200..450, 4 * t + 2),
                full_reservoir(k, 450..500, 4 * t + 3),
            ];
            let mut rng = Lehmer64::new(4 * t + 4);
            let m = merge_reservoirs_k(parts, k, &mut rng);
            for (ci, &val) in tracked.iter().enumerate() {
                if m.items().contains(&val) {
                    incl[ci] += 1;
                }
            }
        }
        let expected = trials as f64 * k as f64 / n as f64; // 120
        for (ci, &c) in incl.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.15,
                "element {} inclusion {c} deviates {dev:.3} from {expected}",
                tracked[ci]
            );
        }
    }

    #[test]
    fn shrinking_resize_preserves_weight() {
        let mut rng = Lehmer64::new(50);
        let a = full_reservoir(20, 0..100, 51);
        let m = merge_reservoirs_with_capacity(Some(&a), None, 5, &mut rng);
        assert_eq!(m.len(), 5);
        assert_eq!(m.weight(), 100);
        assert_eq!(m.capacity(), 5);
    }
}
