//! Single-reservoir sampling with mergeable state.
//!
//! A [`Reservoir`] holds up to `k` sampled items plus the running *weight*
//! `w` — the number of elements considered so far (each qualifying input
//! element has importance weight one, paper §5.1). The `(R, w)` pair is the
//! complete state needed both to continue sampling and to merge reservoirs
//! later without touching the original input.

use crate::rng::Lehmer64;

/// A fixed-capacity uniform reservoir sample with Algorithm-R admission.
///
/// Invariants (checked by property tests):
/// - `len() == min(capacity, weight)` — until the reservoir fills, every
///   considered element is retained.
/// - `weight()` equals exactly the number of `offer` calls (plus weights
///   carried in via merging).
///
/// ```
/// use laqy_sampling::{Lehmer64, Reservoir};
///
/// let mut rng = Lehmer64::new(42);
/// let mut reservoir = Reservoir::new(8);
/// for item in 0..1000 {
///     reservoir.offer(item, &mut rng);
/// }
/// assert_eq!(reservoir.len(), 8);        // k retained...
/// assert_eq!(reservoir.weight(), 1000);  // ...representing 1000 considered
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir<T> {
    capacity: usize,
    /// Sampled items. Kept behind a `Vec` (pointer + len + cap) so the
    /// admission-control state a stratified sampler touches per tuple stays
    /// small, mirroring the paper's decoupling of admission state from
    /// reservoir storage (§4.1, §6.3).
    items: Vec<T>,
    /// Number of elements considered so far (running sum of unit importance
    /// weights).
    weight: u64,
}

impl<T> Reservoir<T> {
    /// Create an empty reservoir with capacity `k`. `k` must be nonzero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be nonzero");
        Self {
            capacity,
            items: Vec::new(),
            weight: 0,
        }
    }

    /// Reconstruct a reservoir from parts (used by merging and by sample
    /// stores that deserialize state). `items.len()` must not exceed
    /// `capacity`, and `weight` must be at least `items.len()`.
    pub fn from_parts(capacity: usize, items: Vec<T>, weight: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be nonzero");
        assert!(items.len() <= capacity, "more items than capacity");
        assert!(
            weight >= items.len() as u64,
            "weight smaller than item count"
        );
        Self {
            capacity,
            items,
            weight,
        }
    }

    /// Maximum number of retained items.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of retained items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items are retained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True once the reservoir holds `capacity` items and admission becomes
    /// probabilistic.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Number of elements considered so far.
    #[inline]
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Sampled items.
    #[inline]
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consume the reservoir, returning its items.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// Consider one element for inclusion (Algorithm R).
    ///
    /// While the reservoir is not full the element is always retained. Once
    /// full, the element replaces a uniformly random slot with probability
    /// `capacity / weight`.
    #[inline]
    pub fn offer(&mut self, item: T, rng: &mut Lehmer64) {
        self.weight += 1;
        if self.items.len() < self.capacity {
            // Reserve the full capacity on first use so admission never
            // reallocates mid-stream.
            if self.items.is_empty() {
                self.items.reserve_exact(self.capacity);
            }
            self.items.push(item);
        } else {
            let j = rng.next_below(self.weight);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Add `extra` to the recorded weight without offering items. Used when
    /// reconciling weights after merging paths that consumed items directly.
    pub(crate) fn add_weight(&mut self, extra: u64) {
        self.weight += extra;
    }

    /// Approximate heap footprint in bytes (items only), used by budgeted
    /// sample stores.
    pub fn heap_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<T>()
    }
}

impl<T: Clone> Reservoir<T> {
    /// Offer every element of a slice.
    pub fn offer_all(&mut self, items: &[T], rng: &mut Lehmer64) {
        for item in items {
            self.offer(item.clone(), rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_capacity_keeps_everything() {
        let mut rng = Lehmer64::new(1);
        let mut r = Reservoir::new(10);
        for i in 0..7 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.len(), 7);
        assert_eq!(r.weight(), 7);
        assert!(!r.is_full());
        assert_eq!(r.items(), &[0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn at_capacity_len_is_bounded() {
        let mut rng = Lehmer64::new(2);
        let mut r = Reservoir::new(5);
        for i in 0..1000 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.weight(), 1000);
        assert!(r.is_full());
        // All retained items must come from the offered stream.
        for &x in r.items() {
            assert!((0..1000).contains(&x));
        }
    }

    #[test]
    fn retained_items_are_distinct_positions() {
        // Offering distinct values must never duplicate a value: each slot
        // replacement overwrites, and each stream element is offered once.
        let mut rng = Lehmer64::new(3);
        let mut r = Reservoir::new(8);
        for i in 0..500 {
            r.offer(i, &mut rng);
        }
        let mut v = r.items().to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn inclusion_probability_is_uniform() {
        // Every stream element should end up in the reservoir with
        // probability k/n. Run many trials and chi-square the inclusion
        // counts of a few tracked positions (early, middle, late).
        let k = 10;
        let n = 200;
        let trials = 4000;
        let mut counts = [0usize; 3];
        let tracked = [0usize, n / 2, n - 1];
        for t in 0..trials {
            let mut rng = Lehmer64::new(1000 + t as u64);
            let mut r = Reservoir::new(k);
            for i in 0..n {
                r.offer(i, &mut rng);
            }
            for (ci, &pos) in tracked.iter().enumerate() {
                if r.items().contains(&pos) {
                    counts[ci] += 1;
                }
            }
        }
        // p = k/n = 0.05; sigma = sqrt(trials * p * (1 - p)) ~ 13.8.
        let expected = trials as f64 * k as f64 / n as f64; // 200
        let p = k as f64 / n as f64;
        let sigma = (trials as f64 * p * (1.0 - p)).sqrt();
        for (ci, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 4.5 * sigma,
                "position {} inclusion count {} too far from expected {} (sigma {:.1})",
                tracked[ci],
                c,
                expected,
                sigma
            );
        }
    }

    #[test]
    fn from_parts_roundtrip() {
        let r = Reservoir::from_parts(4, vec![1, 2, 3], 17);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.len(), 3);
        assert_eq!(r.weight(), 17);
    }

    #[test]
    #[should_panic(expected = "more items than capacity")]
    fn from_parts_rejects_overfull() {
        let _ = Reservoir::from_parts(2, vec![1, 2, 3], 3);
    }

    #[test]
    #[should_panic(expected = "weight smaller than item count")]
    fn from_parts_rejects_bad_weight() {
        let _ = Reservoir::from_parts(4, vec![1, 2, 3], 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _: Reservoir<i32> = Reservoir::new(0);
    }

    #[test]
    fn offer_all_matches_individual_offers() {
        let data: Vec<i64> = (0..100).collect();
        let mut r1 = Reservoir::new(7);
        let mut rng1 = Lehmer64::new(99);
        r1.offer_all(&data, &mut rng1);

        let mut r2 = Reservoir::new(7);
        let mut rng2 = Lehmer64::new(99);
        for &x in &data {
            r2.offer(x, &mut rng2);
        }
        assert_eq!(r1, r2);
    }
}
