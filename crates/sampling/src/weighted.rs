//! Weighted reservoir sampling (paper citation \[7\], \[41\]).
//!
//! [`WeightedReservoir`] implements the Efraimidis–Spirakis (A-Res) scheme:
//! each item draws key `u^(1/w)` for `u ~ U(0,1)` and the reservoir keeps
//! the `k` items with the largest keys. This yields exact
//! weighted-random-sampling-without-replacement semantics for arbitrary
//! per-item weights, including weights large enough that a naive
//! admit-with-probability implementation would have to clamp probabilities
//! above one (the case that arises when merging reservoirs with very
//! different represented populations).
//!
//! The reservoir *merge* path (paper Algorithm 2) does not stream through
//! this type — it uses the exact hypergeometric split in [`crate::merge`] —
//! but this sampler is exposed as a general primitive and is used by tests
//! to cross-check merge proportions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::rng::Lehmer64;

/// Heap entry: min-heap on key so the smallest key is evicted first.
struct Entry<T> {
    key: f64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap; we want the minimum key on top.
        other.key.partial_cmp(&self.key).unwrap_or(Ordering::Equal)
    }
}

/// Efraimidis–Spirakis weighted reservoir sampler.
pub struct WeightedReservoir<T> {
    capacity: usize,
    heap: BinaryHeap<Entry<T>>,
    total_weight: f64,
}

impl<T> WeightedReservoir<T> {
    /// Create an empty weighted reservoir with capacity `k`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be nonzero");
        Self {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
            total_weight: 0.0,
        }
    }

    /// Number of retained items.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no items are retained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Running sum of offered weights.
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Consider one item with the given positive weight.
    #[inline]
    pub fn offer(&mut self, item: T, weight: f64, rng: &mut Lehmer64) {
        debug_assert!(weight > 0.0, "weights must be positive");
        self.total_weight += weight;
        // Key u^(1/w); computed in log-space for numerical stability:
        // ln(key) = ln(u) / w, and comparing keys is equivalent to
        // comparing log-keys.
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        let log_key = u.ln() / weight;
        if self.heap.len() < self.capacity {
            self.heap.push(Entry { key: log_key, item });
        } else if let Some(min) = self.heap.peek() {
            if log_key > min.key {
                self.heap.pop();
                self.heap.push(Entry { key: log_key, item });
            }
        }
    }

    /// Consume the sampler, returning the retained items (unspecified order).
    pub fn into_items(self) -> Vec<T> {
        self.heap.into_iter().map(|e| e.item).collect()
    }

    /// Retained items, collected by reference (unspecified order).
    pub fn items(&self) -> Vec<&T> {
        self.heap.iter().map(|e| &e.item).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contains<T: PartialEq>(wr: &WeightedReservoir<T>, x: &T) -> bool {
        wr.heap.iter().any(|e| &e.item == x)
    }

    #[test]
    fn keeps_all_below_capacity() {
        let mut rng = Lehmer64::new(1);
        let mut wr = WeightedReservoir::new(5);
        for i in 0..3 {
            wr.offer(i, 1.0, &mut rng);
        }
        let mut items = wr.into_items();
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2]);
    }

    #[test]
    fn len_bounded_by_capacity() {
        let mut rng = Lehmer64::new(2);
        let mut wr = WeightedReservoir::new(4);
        for i in 0..1000 {
            wr.offer(i, 1.0 + (i % 7) as f64, &mut rng);
        }
        assert_eq!(wr.len(), 4);
    }

    #[test]
    fn total_weight_accumulates() {
        let mut rng = Lehmer64::new(3);
        let mut wr = WeightedReservoir::new(2);
        wr.offer(1, 2.5, &mut rng);
        wr.offer(2, 1.5, &mut rng);
        wr.offer(3, 6.0, &mut rng);
        assert!((wr.total_weight() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn unit_weights_behave_uniformly() {
        // With all weights equal, A-Res degenerates to uniform sampling
        // without replacement: inclusion probability k/n for every element.
        let k = 8;
        let n = 100;
        let trials = 5000;
        let mut count_first = 0usize;
        let mut count_last = 0usize;
        for t in 0..trials {
            let mut rng = Lehmer64::new(500 + t as u64);
            let mut wr = WeightedReservoir::new(k);
            for i in 0..n {
                wr.offer(i, 1.0, &mut rng);
            }
            if contains(&wr, &0) {
                count_first += 1;
            }
            if contains(&wr, &(n - 1)) {
                count_last += 1;
            }
        }
        // p = 0.08, sigma = sqrt(trials * p * (1-p)) ~ 19.2; allow 4.5 sigma.
        let expected = trials as f64 * k as f64 / n as f64;
        let sigma = (trials as f64 * 0.08 * 0.92).sqrt();
        for c in [count_first, count_last] {
            assert!(
                (c as f64 - expected).abs() < 4.5 * sigma,
                "inclusion {c} too far from {expected} (sigma {sigma:.1})"
            );
        }
    }

    #[test]
    fn heavier_items_dominate() {
        // Weight-9 vs weight-1 items in equal numbers: the heavy class
        // should fill most of the reservoir.
        let trials = 2000;
        let mut heavy_total = 0usize;
        for t in 0..trials {
            let mut rng = Lehmer64::new(91 + t as u64);
            let mut wr = WeightedReservoir::new(10);
            for i in 0..200 {
                let heavy = i % 2 == 0;
                wr.offer(heavy, if heavy { 9.0 } else { 1.0 }, &mut rng);
            }
            heavy_total += wr.items().iter().filter(|&&&h| h).count();
        }
        let frac = heavy_total as f64 / (trials * 10) as f64;
        assert!(frac > 0.8, "heavy fraction {frac} should dominate");
    }

    #[test]
    fn extreme_weights_always_survive() {
        // An item with overwhelming weight must essentially always be kept,
        // even when offered early (the case a clamped admit-probability
        // implementation gets wrong).
        let trials = 500;
        let mut kept = 0usize;
        for t in 0..trials {
            let mut rng = Lehmer64::new(7 + t as u64);
            let mut wr = WeightedReservoir::new(3);
            wr.offer(-1i64, 1e9, &mut rng);
            for i in 0..100 {
                wr.offer(i, 1.0, &mut rng);
            }
            if contains(&wr, &-1) {
                kept += 1;
            }
        }
        assert!(
            kept >= trials - 2,
            "heavy item evicted {} times",
            trials - kept
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _: WeightedReservoir<u8> = WeightedReservoir::new(0);
    }
}
