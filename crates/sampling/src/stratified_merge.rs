//! Stratified sample merging — paper **Algorithm 3**, generalized k-way.
//!
//! Merging stratified samples is a group-by over the union of their
//! strata keys whose aggregation function is reservoir merging
//! (Algorithm 2): strata present in several inputs merge proportionally;
//! strata present in only one input pass through via the
//! `DefinedReservoir` case. §5.1's merge argument is associative, so the
//! same construction extends from two inputs to `k` — the coverage
//! planner leans on this to combine several stored samples plus several
//! Δ fragments in one pass instead of a chain of pairwise merges.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::merge::{merge_reservoirs_k, resize_owned};
use crate::reservoir::Reservoir;
use crate::rng::Lehmer64;
use crate::stratified::{FxBuildHasher, StratifiedSampler, StratumKey};

/// Merge two stratified samples into a new one whose per-stratum reservoirs
/// are Algorithm-2 merges. The output capacity is the maximum of the two
/// input capacities (`ScaledPropSampling` reconciles unequal sizes).
pub fn merge_stratified<K: StratumKey, T: Clone>(
    a: StratifiedSampler<K, T>,
    b: StratifiedSampler<K, T>,
    rng: &mut Lehmer64,
) -> StratifiedSampler<K, T> {
    merge_stratified_k(vec![a, b], rng)
}

/// Merge `k` stratified samples into one — the k-way Algorithm 3.
///
/// A group-by over the union of all inputs' strata keys; each key's
/// reservoirs merge via [`merge_reservoirs_k`]. The output capacity is the
/// maximum input capacity. Strata held by a single input pass through with
/// their tuple storage moved, not copied (§6.3's zero-copy ownership
/// transfer). Key order is first-seen across inputs in order, so the merge
/// is deterministic given the inputs and the RNG seed.
///
/// Statistical validity requires the inputs' underlying populations to be
/// pairwise disjoint (the §5.1 non-overlap requirement) — the coverage
/// planner guarantees this by construction.
///
/// Panics if `inputs` is empty.
pub fn merge_stratified_k<K: StratumKey, T: Clone>(
    inputs: Vec<StratifiedSampler<K, T>>,
    rng: &mut Lehmer64,
) -> StratifiedSampler<K, T> {
    assert!(!inputs.is_empty(), "merge of zero stratified samples");
    let capacity = inputs
        .iter()
        .map(|s| s.capacity())
        .max()
        .expect("nonempty inputs");
    let hint: usize = inputs.iter().map(|s| s.num_strata()).sum();
    let mut out = StratifiedSampler::with_strata_hint(capacity, hint);

    // Gather each key's reservoirs across all inputs, preserving
    // first-seen key order for a deterministic merge order.
    let mut order: Vec<K> = Vec::with_capacity(hint);
    let mut gathered: HashMap<K, Vec<Reservoir<T>>, FxBuildHasher> =
        HashMap::with_capacity_and_hasher(hint, FxBuildHasher::default());
    for s in inputs {
        for (key, r) in s.into_strata() {
            match gathered.entry(key.clone()) {
                Entry::Occupied(mut e) => e.get_mut().push(r),
                Entry::Vacant(e) => {
                    e.insert(vec![r]);
                    order.push(key);
                }
            }
        }
    }
    for key in order {
        let rs = gathered.remove(&key).expect("gathered above");
        let merged = if rs.len() == 1 {
            // DefinedReservoir pass-through: move the stratum without
            // copying its tuple storage.
            let r = rs.into_iter().next().expect("one reservoir");
            resize_owned(r, capacity, rng)
        } else {
            merge_reservoirs_k(rs, capacity, rng)
        };
        out.insert_stratum(key, merged);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(keys: i64, n: i64, k: usize, seed: u64, offset: i64) -> StratifiedSampler<i64, i64> {
        let mut rng = Lehmer64::new(seed);
        let mut s = StratifiedSampler::new(k);
        for i in 0..n {
            s.offer(i % keys, offset + i, &mut rng);
        }
        s
    }

    #[test]
    fn union_of_strata_keys() {
        let mut rng = Lehmer64::new(1);
        let a = build(3, 300, 4, 2, 0); // strata 0,1,2
        let mut b = StratifiedSampler::new(4);
        let mut rng_b = Lehmer64::new(3);
        for i in 0..100 {
            b.offer(2 + (i % 3), 10_000 + i, &mut rng_b); // strata 2,3,4
        }
        let m = merge_stratified(a, b, &mut rng);
        assert_eq!(m.num_strata(), 5);
        assert_eq!(m.total_weight(), 400);
    }

    #[test]
    fn disjoint_strata_pass_through_unchanged() {
        let mut rng = Lehmer64::new(4);
        let a = build(2, 200, 5, 5, 0);
        let mut b = StratifiedSampler::new(5);
        let mut rng_b = Lehmer64::new(6);
        for i in 0..50 {
            b.offer(100 + (i % 2), i, &mut rng_b);
        }
        let a_items0: Vec<i64> = a.stratum(&0).unwrap().0.to_vec();
        let m = merge_stratified(a, b, &mut rng);
        let (items0, w0) = m.stratum(&0).unwrap();
        assert_eq!(items0, a_items0.as_slice());
        assert_eq!(w0, 100);
    }

    #[test]
    fn shared_strata_merge_weights() {
        let mut rng = Lehmer64::new(7);
        let a = build(4, 400, 3, 8, 0);
        let b = build(4, 800, 3, 9, 100_000);
        let m = merge_stratified(a, b, &mut rng);
        assert_eq!(m.num_strata(), 4);
        for key in 0..4 {
            let (_, w) = m.stratum(&key).unwrap();
            assert_eq!(w, 100 + 200, "per-stratum weights must add");
        }
    }

    #[test]
    fn unequal_capacities_take_max() {
        let mut rng = Lehmer64::new(10);
        let a = build(2, 1000, 8, 11, 0);
        let b = build(2, 1000, 4, 12, 50_000);
        let m = merge_stratified(a, b, &mut rng);
        assert_eq!(m.capacity(), 8);
        assert_eq!(m.total_weight(), 2000);
    }

    #[test]
    fn merged_stratum_tracks_proportions() {
        // Stratum 0: A considered 9000, B considered 1000 — merged stratum
        // should hold ~90% A items.
        let trials = 800;
        let mut from_a = 0usize;
        let mut total = 0usize;
        for t in 0..trials {
            let mut a = StratifiedSampler::new(10);
            let mut rng_a = Lehmer64::new(20 + t);
            for i in 0..9000 {
                a.offer(0i64, i, &mut rng_a);
            }
            let mut b = StratifiedSampler::new(10);
            let mut rng_b = Lehmer64::new(5000 + t);
            for i in 0..1000 {
                b.offer(0i64, 100_000 + i, &mut rng_b);
            }
            let mut rng = Lehmer64::new(90_000 + t);
            let m = merge_stratified(a, b, &mut rng);
            let (items, w) = m.stratum(&0).unwrap();
            assert_eq!(w, 10_000);
            from_a += items.iter().filter(|&&x| x < 100_000).count();
            total += items.len();
        }
        let frac = from_a as f64 / total as f64;
        assert!(
            (frac - 0.9).abs() < 0.03,
            "stratum merge should track weights, got {frac}"
        );
    }

    #[test]
    fn k_way_strata_union_and_weights() {
        let mut rng = Lehmer64::new(20);
        let parts = vec![
            build(2, 200, 4, 21, 0),       // strata 0,1
            build(3, 300, 4, 22, 10_000),  // strata 0,1,2
            build(4, 400, 4, 23, 100_000), // strata 0..4
        ];
        let m = merge_stratified_k(parts, &mut rng);
        assert_eq!(m.num_strata(), 4);
        assert_eq!(m.total_weight(), 900);
        // Stratum 0 saw 100 + 100 + 100 considered elements.
        let (_, w0) = m.stratum(&0).unwrap();
        assert_eq!(w0, 300);
        // Stratum 3 exists only in the third input.
        let (_, w3) = m.stratum(&3).unwrap();
        assert_eq!(w3, 100);
    }

    #[test]
    fn k_way_matches_chained_pairwise_statistically() {
        // A 3-way merge and a left-fold of pairwise merges are both valid
        // samples of the same union; their per-source compositions must
        // agree in distribution.
        let trials = 600;
        let mut kway_from_a = 0usize;
        let mut chain_from_a = 0usize;
        let mut kway_total = 0usize;
        let mut chain_total = 0usize;
        for t in 0..trials {
            let mk = || {
                vec![
                    build(1, 6000, 10, 50 + t, 0),
                    build(1, 3000, 10, 5000 + t, 100_000),
                    build(1, 1000, 10, 9000 + t, 200_000),
                ]
            };
            let mut rng1 = Lehmer64::new(70_000 + t);
            let m1 = merge_stratified_k(mk(), &mut rng1);
            let mut rng2 = Lehmer64::new(80_000 + t);
            let mut parts = mk().into_iter();
            let first = parts.next().unwrap();
            let m2 = parts.fold(first, |acc, s| merge_stratified(acc, s, &mut rng2));
            for (m, from_a, total) in [
                (&m1, &mut kway_from_a, &mut kway_total),
                (&m2, &mut chain_from_a, &mut chain_total),
            ] {
                let (items, w) = m.stratum(&0).unwrap();
                assert_eq!(w, 10_000);
                *from_a += items.iter().filter(|&&x| x < 100_000).count();
                *total += items.len();
            }
        }
        let kway = kway_from_a as f64 / kway_total as f64;
        let chain = chain_from_a as f64 / chain_total as f64;
        assert!(
            (kway - 0.6).abs() < 0.04,
            "k-way source-A share {kway} should be ~0.6"
        );
        assert!(
            (kway - chain).abs() < 0.05,
            "k-way ({kway}) and chained pairwise ({chain}) merges must agree in distribution"
        );
    }
}
