//! Stratified sample merging — paper **Algorithm 3**.
//!
//! Merging two stratified samples is a group-by over the union of their
//! strata keys whose aggregation function is reservoir merging
//! (Algorithm 2): strata present in both inputs merge proportionally;
//! strata present in only one input pass through via the
//! `DefinedReservoir` case.

use crate::merge::merge_reservoirs_with_capacity;
use crate::rng::Lehmer64;
use crate::stratified::{StratifiedSampler, StratumKey};

/// Merge two stratified samples into a new one whose per-stratum reservoirs
/// are Algorithm-2 merges. The output capacity is the maximum of the two
/// input capacities (`ScaledPropSampling` reconciles unequal sizes).
pub fn merge_stratified<K: StratumKey, T: Clone>(
    a: StratifiedSampler<K, T>,
    b: StratifiedSampler<K, T>,
    rng: &mut Lehmer64,
) -> StratifiedSampler<K, T> {
    let capacity = a.capacity().max(b.capacity());
    let mut out = StratifiedSampler::with_strata_hint(capacity, a.num_strata() + b.num_strata());

    // Index B's strata by key so we can pair them with A's.
    let mut b_strata: std::collections::HashMap<K, crate::reservoir::Reservoir<T>> =
        b.into_strata().collect();

    for (key, ra) in a.into_strata() {
        let merged = match b_strata.remove(&key) {
            Some(rb) => merge_reservoirs_with_capacity(Some(&ra), Some(&rb), capacity, rng),
            // DefinedReservoir pass-through: move the stratum without
            // copying its tuple storage (§6.3's zero-copy ownership
            // transfer matters here — merges touch only sample data, and
            // pass-through strata shouldn't even touch that).
            None => move_into_capacity(ra, capacity, rng),
        };
        out.insert_stratum(key, merged);
    }
    // Strata only present in B.
    for (key, rb) in b_strata {
        out.insert_stratum(key, move_into_capacity(rb, capacity, rng));
    }
    out
}

/// Move a reservoir into the output capacity without cloning its items;
/// downsample only if it holds more items than the target capacity allows.
fn move_into_capacity<T: Clone>(
    r: crate::reservoir::Reservoir<T>,
    capacity: usize,
    rng: &mut Lehmer64,
) -> crate::reservoir::Reservoir<T> {
    if r.capacity() == capacity {
        return r;
    }
    if r.len() <= capacity {
        let weight = r.weight();
        return crate::reservoir::Reservoir::from_parts(capacity, r.into_items(), weight);
    }
    merge_reservoirs_with_capacity(Some(&r), None, capacity, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(keys: i64, n: i64, k: usize, seed: u64, offset: i64) -> StratifiedSampler<i64, i64> {
        let mut rng = Lehmer64::new(seed);
        let mut s = StratifiedSampler::new(k);
        for i in 0..n {
            s.offer(i % keys, offset + i, &mut rng);
        }
        s
    }

    #[test]
    fn union_of_strata_keys() {
        let mut rng = Lehmer64::new(1);
        let a = build(3, 300, 4, 2, 0); // strata 0,1,2
        let mut b = StratifiedSampler::new(4);
        let mut rng_b = Lehmer64::new(3);
        for i in 0..100 {
            b.offer(2 + (i % 3), 10_000 + i, &mut rng_b); // strata 2,3,4
        }
        let m = merge_stratified(a, b, &mut rng);
        assert_eq!(m.num_strata(), 5);
        assert_eq!(m.total_weight(), 400);
    }

    #[test]
    fn disjoint_strata_pass_through_unchanged() {
        let mut rng = Lehmer64::new(4);
        let a = build(2, 200, 5, 5, 0);
        let mut b = StratifiedSampler::new(5);
        let mut rng_b = Lehmer64::new(6);
        for i in 0..50 {
            b.offer(100 + (i % 2), i, &mut rng_b);
        }
        let a_items0: Vec<i64> = a.stratum(&0).unwrap().0.to_vec();
        let m = merge_stratified(a, b, &mut rng);
        let (items0, w0) = m.stratum(&0).unwrap();
        assert_eq!(items0, a_items0.as_slice());
        assert_eq!(w0, 100);
    }

    #[test]
    fn shared_strata_merge_weights() {
        let mut rng = Lehmer64::new(7);
        let a = build(4, 400, 3, 8, 0);
        let b = build(4, 800, 3, 9, 100_000);
        let m = merge_stratified(a, b, &mut rng);
        assert_eq!(m.num_strata(), 4);
        for key in 0..4 {
            let (_, w) = m.stratum(&key).unwrap();
            assert_eq!(w, 100 + 200, "per-stratum weights must add");
        }
    }

    #[test]
    fn unequal_capacities_take_max() {
        let mut rng = Lehmer64::new(10);
        let a = build(2, 1000, 8, 11, 0);
        let b = build(2, 1000, 4, 12, 50_000);
        let m = merge_stratified(a, b, &mut rng);
        assert_eq!(m.capacity(), 8);
        assert_eq!(m.total_weight(), 2000);
    }

    #[test]
    fn merged_stratum_tracks_proportions() {
        // Stratum 0: A considered 9000, B considered 1000 — merged stratum
        // should hold ~90% A items.
        let trials = 800;
        let mut from_a = 0usize;
        let mut total = 0usize;
        for t in 0..trials {
            let mut a = StratifiedSampler::new(10);
            let mut rng_a = Lehmer64::new(20 + t);
            for i in 0..9000 {
                a.offer(0i64, i, &mut rng_a);
            }
            let mut b = StratifiedSampler::new(10);
            let mut rng_b = Lehmer64::new(5000 + t);
            for i in 0..1000 {
                b.offer(0i64, 100_000 + i, &mut rng_b);
            }
            let mut rng = Lehmer64::new(90_000 + t);
            let m = merge_stratified(a, b, &mut rng);
            let (items, w) = m.stratum(&0).unwrap();
            assert_eq!(w, 10_000);
            from_a += items.iter().filter(|&&x| x < 100_000).count();
            total += items.len();
        }
        let frac = from_a as f64 / total as f64;
        assert!(
            (frac - 0.9).abs() < 0.03,
            "stratum merge should track weights, got {frac}"
        );
    }
}
