//! # laqy-sampling
//!
//! Reservoir-based sampling primitives for the LAQy reproduction:
//!
//! - [`rng`]: low-overhead, inlineable random number generators. The hot
//!   sampling paths use a 128-bit multiplicative Lehmer generator, the same
//!   family the paper inlines into generated code to keep RNG state in
//!   registers (paper §6.2, citing Park & Miller).
//! - [`reservoir`]: single-reservoir sampling with Algorithm R admission and
//!   a running *weight* (the number of considered elements), the state that
//!   makes reservoirs mergeable (paper §5.1).
//! - [`weighted`]: weighted reservoir sampling (Chao's algorithm), the
//!   primitive behind proportional reservoir merging.
//! - [`merge`]: reservoir merging (paper Algorithm 2) — merging `{R1, w1}`
//!   and `{R2, w2}` yields `{Rm, w1 + w2}`, statistically equivalent to a
//!   full resample of the combined input. §5.1's argument is associative,
//!   so the module also provides a k-way merge used by the coverage
//!   planner to combine several stored samples and Δ fragments at once.
//! - [`stratified`]: stratified reservoir sampling — a hash table of strata
//!   keyed by the Query Column Set values, with admission state kept compact
//!   and reservoir storage held behind a pointer (paper §4.1, §6.3).
//! - [`stratified_merge`]: stratified sample merging (paper Algorithm 3) —
//!   a group-by over strata keys whose aggregation function is Algorithm 2.
//! - [`universe`]: hash-based universe sampling (Quickr-style), whose
//!   join-consistency complements reservoir samplers.
//!
//! All sampling is deterministic given a seed, which the paper also relies on
//! for repeatable experiments (§7, Workload).

#![forbid(unsafe_code)]
pub mod merge;
pub mod reservoir;
pub mod rng;
pub mod stratified;
pub mod stratified_merge;
pub mod universe;
pub mod weighted;

pub use merge::{merge_reservoirs, merge_reservoirs_k, merge_reservoirs_with_capacity};
pub use reservoir::Reservoir;
pub use rng::{Lehmer64, MinStd, SplitMix64};
pub use stratified::{StratifiedSampler, StratumKey};
pub use stratified_merge::{merge_stratified, merge_stratified_k};
pub use universe::UniverseSampler;
pub use weighted::WeightedReservoir;
