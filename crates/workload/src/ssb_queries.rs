//! The thirteen Star Schema Benchmark queries (Q1.1–Q4.3) as engine
//! plans.
//!
//! These exercise the exact execution path across the full benchmark
//! (flight 1: date-filtered scans with `sum(lo_extendedprice *
//! lo_discount)`; flights 2–4: progressively wider star joins), and give
//! approximate sessions realistic whole-benchmark workloads beyond the
//! paper's Q1/Q2 templates. Predicate values follow the SSB spec where our
//! generated domains allow; dictionary values use this generator's
//! spellings (e.g. `NATION_07`, `CITY_07_3`).

use laqy_engine::{AggSpec, ColRef, JoinSpec, Predicate, QueryPlan};

fn join_date() -> JoinSpec {
    JoinSpec {
        dim_table: "date".into(),
        dim_key: "d_datekey".into(),
        fact_key: "lo_orderdate".into(),
        predicate: Predicate::True,
    }
}

fn join_date_filtered(predicate: Predicate) -> JoinSpec {
    JoinSpec {
        predicate,
        ..join_date()
    }
}

fn join_supplier(predicate: Predicate) -> JoinSpec {
    JoinSpec {
        dim_table: "supplier".into(),
        dim_key: "s_suppkey".into(),
        fact_key: "lo_suppkey".into(),
        predicate,
    }
}

fn join_part(predicate: Predicate) -> JoinSpec {
    JoinSpec {
        dim_table: "part".into(),
        dim_key: "p_partkey".into(),
        fact_key: "lo_partkey".into(),
        predicate,
    }
}

fn join_customer(predicate: Predicate) -> JoinSpec {
    JoinSpec {
        dim_table: "customer".into(),
        dim_key: "c_custkey".into(),
        fact_key: "lo_custkey".into(),
        predicate,
    }
}

/// Q1.1: revenue from one year with mid-range discount and low quantity.
pub fn q1_1() -> QueryPlan {
    QueryPlan {
        fact: "lineorder".into(),
        predicate: Predicate::between("lo_discount", 1, 3).and(Predicate::between(
            "lo_quantity",
            1,
            24,
        )),
        joins: vec![join_date_filtered(Predicate::between("d_year", 1993, 1993))],
        group_by: vec![],
        aggs: vec![AggSpec::sum_product("lo_extendedprice", "lo_discount")],
    }
}

/// Q1.2: one month, tighter discount/quantity bands.
pub fn q1_2() -> QueryPlan {
    QueryPlan {
        fact: "lineorder".into(),
        predicate: Predicate::between("lo_discount", 4, 6).and(Predicate::between(
            "lo_quantity",
            26,
            35,
        )),
        joins: vec![join_date_filtered(Predicate::between(
            "d_yearmonthnum",
            199401,
            199401,
        ))],
        group_by: vec![],
        aggs: vec![AggSpec::sum_product("lo_extendedprice", "lo_discount")],
    }
}

/// Q1.3: one week approximated by one month slice (our date dim has no
/// week column; the shape — a very selective date filter — is preserved).
pub fn q1_3() -> QueryPlan {
    QueryPlan {
        fact: "lineorder".into(),
        predicate: Predicate::between("lo_discount", 5, 7).and(Predicate::between(
            "lo_quantity",
            26,
            35,
        )),
        joins: vec![join_date_filtered(Predicate::between(
            "d_yearmonthnum",
            199402,
            199402,
        ))],
        group_by: vec![],
        aggs: vec![AggSpec::sum_product("lo_extendedprice", "lo_discount")],
    }
}

/// Q2.1: revenue by year and brand for one part category and region.
pub fn q2_1() -> QueryPlan {
    QueryPlan {
        fact: "lineorder".into(),
        predicate: Predicate::True,
        joins: vec![
            join_date(),
            join_part(Predicate::eq_str("p_category", "MFGR#12")),
            join_supplier(Predicate::eq_str("s_region", "AMERICA")),
        ],
        group_by: vec![
            ColRef::dim("date", "d_year"),
            ColRef::dim("part", "p_brand1"),
        ],
        aggs: vec![AggSpec::sum("lo_revenue")],
    }
}

/// Q2.2: a brand range in ASIA.
pub fn q2_2() -> QueryPlan {
    let brands: Vec<Predicate> = (21..=28)
        .map(|b| Predicate::eq_str("p_brand1", format!("MFGR#22{b:02}")))
        .collect();
    QueryPlan {
        fact: "lineorder".into(),
        predicate: Predicate::True,
        joins: vec![
            join_date(),
            join_part(Predicate::Or(brands)),
            join_supplier(Predicate::eq_str("s_region", "ASIA")),
        ],
        group_by: vec![
            ColRef::dim("date", "d_year"),
            ColRef::dim("part", "p_brand1"),
        ],
        aggs: vec![AggSpec::sum("lo_revenue")],
    }
}

/// Q2.3: a single brand in EUROPE.
pub fn q2_3() -> QueryPlan {
    QueryPlan {
        fact: "lineorder".into(),
        predicate: Predicate::True,
        joins: vec![
            join_date(),
            join_part(Predicate::eq_str("p_brand1", "MFGR#2221")),
            join_supplier(Predicate::eq_str("s_region", "EUROPE")),
        ],
        group_by: vec![
            ColRef::dim("date", "d_year"),
            ColRef::dim("part", "p_brand1"),
        ],
        aggs: vec![AggSpec::sum("lo_revenue")],
    }
}

/// Q3.1: customer/supplier nation traffic within a region over 1992–1997.
pub fn q3_1() -> QueryPlan {
    QueryPlan {
        fact: "lineorder".into(),
        predicate: Predicate::True,
        joins: vec![
            join_customer(Predicate::eq_str("c_region", "ASIA")),
            join_supplier(Predicate::eq_str("s_region", "ASIA")),
            join_date_filtered(Predicate::between("d_year", 1992, 1997)),
        ],
        group_by: vec![
            ColRef::dim("customer", "c_nation"),
            ColRef::dim("supplier", "s_nation"),
            ColRef::dim("date", "d_year"),
        ],
        aggs: vec![AggSpec::sum("lo_revenue")],
    }
}

/// Q3.2: city-level within one nation.
pub fn q3_2() -> QueryPlan {
    QueryPlan {
        fact: "lineorder".into(),
        predicate: Predicate::True,
        joins: vec![
            join_customer(Predicate::eq_str("c_nation", "NATION_07")),
            join_supplier(Predicate::eq_str("s_nation", "NATION_07")),
            join_date_filtered(Predicate::between("d_year", 1992, 1997)),
        ],
        group_by: vec![
            ColRef::dim("customer", "c_city"),
            ColRef::dim("supplier", "s_city"),
            ColRef::dim("date", "d_year"),
        ],
        aggs: vec![AggSpec::sum("lo_revenue")],
    }
}

/// Q3.3: two specific cities.
pub fn q3_3() -> QueryPlan {
    let city_pair = |col: &str| {
        Predicate::Or(vec![
            Predicate::eq_str(col, "CITY_07_1"),
            Predicate::eq_str(col, "CITY_07_5"),
        ])
    };
    QueryPlan {
        fact: "lineorder".into(),
        predicate: Predicate::True,
        joins: vec![
            join_customer(city_pair("c_city")),
            join_supplier(city_pair("s_city")),
            join_date_filtered(Predicate::between("d_year", 1992, 1997)),
        ],
        group_by: vec![
            ColRef::dim("customer", "c_city"),
            ColRef::dim("supplier", "s_city"),
            ColRef::dim("date", "d_year"),
        ],
        aggs: vec![AggSpec::sum("lo_revenue")],
    }
}

/// Q3.4: the two cities in one month.
pub fn q3_4() -> QueryPlan {
    let mut plan = q3_3();
    plan.joins[2] = join_date_filtered(Predicate::between("d_yearmonthnum", 199712, 199712));
    plan
}

/// Q4.1: profit by year and customer nation for two manufacturers in the
/// AMERICA region. (Our lineorder lacks `lo_supplycost`; profit is
/// approximated by revenue, preserving the aggregation/join shape.)
pub fn q4_1() -> QueryPlan {
    let mfgrs = Predicate::Or(vec![
        Predicate::eq_str("p_mfgr", "MFGR#1"),
        Predicate::eq_str("p_mfgr", "MFGR#2"),
    ]);
    QueryPlan {
        fact: "lineorder".into(),
        predicate: Predicate::True,
        joins: vec![
            join_date(),
            join_customer(Predicate::eq_str("c_region", "AMERICA")),
            join_supplier(Predicate::eq_str("s_region", "AMERICA")),
            join_part(mfgrs),
        ],
        group_by: vec![
            ColRef::dim("date", "d_year"),
            ColRef::dim("customer", "c_nation"),
        ],
        aggs: vec![AggSpec::sum("lo_revenue")],
    }
}

/// Q4.2: drill into two years, grouping by supplier nation and category.
pub fn q4_2() -> QueryPlan {
    let mut plan = q4_1();
    plan.joins[0] = join_date_filtered(Predicate::between("d_year", 1997, 1998));
    plan.group_by = vec![
        ColRef::dim("date", "d_year"),
        ColRef::dim("supplier", "s_nation"),
        ColRef::dim("part", "p_category"),
    ];
    plan
}

/// Q4.3: drill into one nation and category, grouping by city and brand.
pub fn q4_3() -> QueryPlan {
    QueryPlan {
        fact: "lineorder".into(),
        predicate: Predicate::True,
        joins: vec![
            join_date_filtered(Predicate::between("d_year", 1997, 1998)),
            join_customer(Predicate::eq_str("c_region", "AMERICA")),
            join_supplier(Predicate::eq_str("s_nation", "NATION_02")),
            join_part(Predicate::eq_str("p_category", "MFGR#14")),
        ],
        group_by: vec![
            ColRef::dim("date", "d_year"),
            ColRef::dim("supplier", "s_city"),
            ColRef::dim("part", "p_brand1"),
        ],
        aggs: vec![AggSpec::sum("lo_revenue")],
    }
}

/// All thirteen queries with their names, in flight order.
pub fn all_queries() -> Vec<(&'static str, QueryPlan)> {
    vec![
        ("Q1.1", q1_1()),
        ("Q1.2", q1_2()),
        ("Q1.3", q1_3()),
        ("Q2.1", q2_1()),
        ("Q2.2", q2_2()),
        ("Q2.3", q2_3()),
        ("Q3.1", q3_1()),
        ("Q3.2", q3_2()),
        ("Q3.3", q3_3()),
        ("Q3.4", q3_4()),
        ("Q4.1", q4_1()),
        ("Q4.2", q4_2()),
        ("Q4.3", q4_3()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssb::{generate, SsbConfig};
    use laqy_engine::{execute_exact, validate_plan};

    #[test]
    fn all_queries_validate_and_run() {
        let catalog = generate(&SsbConfig {
            scale_factor: 0.005,
            seed: 0x55B,
        });
        for (name, plan) in all_queries() {
            validate_plan(&catalog, &plan).unwrap_or_else(|e| panic!("{name}: {e}"));
            let result =
                execute_exact(&catalog, &plan, 2).unwrap_or_else(|e| panic!("{name}: {e}"));
            // Flight 1 is a global aggregate; the rest group.
            if name.starts_with("Q1") {
                assert_eq!(result.rows.len(), 1, "{name}");
            }
            // Non-negative revenue everywhere.
            for row in &result.rows {
                assert!(row.values[0] >= 0.0, "{name}: negative aggregate");
            }
        }
    }

    #[test]
    fn flight1_filters_reduce_results() {
        let catalog = generate(&SsbConfig {
            scale_factor: 0.005,
            seed: 0x55B,
        });
        // Q1.1 (one year) should see more revenue than Q1.2 (one month).
        let r11 = execute_exact(&catalog, &q1_1(), 2).unwrap().rows[0].values[0];
        let r12 = execute_exact(&catalog, &q1_2(), 2).unwrap().rows[0].values[0];
        assert!(r11 > 0.0);
        assert!(
            r11 > r12,
            "year slice {r11} should exceed month slice {r12}"
        );
    }

    #[test]
    fn q2_groups_are_year_brand_pairs() {
        let catalog = generate(&SsbConfig {
            scale_factor: 0.005,
            seed: 0x55B,
        });
        let result = execute_exact(&catalog, &q2_1(), 2).unwrap();
        assert!(!result.rows.is_empty());
        // ≤ 7 years × 40 brands in the category.
        assert!(result.rows.len() <= 7 * 40);
    }

    #[test]
    fn q3_nation_filter_limits_groups() {
        let catalog = generate(&SsbConfig {
            scale_factor: 0.005,
            seed: 0x55B,
        });
        let result = execute_exact(&catalog, &q3_2(), 2).unwrap();
        // ≤ 10 cities × 10 cities × 6 years.
        assert!(result.rows.len() <= 600);
    }
}
