//! Serving-mix generator for the multi-tenant load generator.
//!
//! Models a fleet of analysts hammering the serving layer: each client
//! replays a deterministic stream of operations — mostly Q1-shaped
//! range queries whose focus regions follow a Zipf distribution (a few
//! hot regions absorb most traffic, so stored samples get real reuse),
//! with periodic ingest batches mixed in. Streams are pure functions of
//! `(config, seed)`, so a load test replays exactly and two runs are
//! comparable point-for-point.

use laqy_sampling::Lehmer64;

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A Q1-template range query over `lo_intkey ∈ [lo, hi]`.
    Query {
        /// Inclusive range start.
        lo: i64,
        /// Inclusive range end.
        hi: i64,
    },
    /// An append of `rows` fresh lineorder rows.
    Ingest {
        /// Batch size in rows.
        rows: usize,
    },
}

/// Mix parameters.
#[derive(Debug, Clone)]
pub struct MixConfig {
    /// `lo_intkey` domain: keys live in `[0, key_space)`.
    pub key_space: i64,
    /// Number of focus regions clients rotate through.
    pub regions: usize,
    /// Zipf exponent over region ranks (0 = uniform; ~1 = strongly
    /// skewed toward a handful of hot regions).
    pub zipf_s: f64,
    /// Query range width, in keys.
    pub window: i64,
    /// Every `ingest_every`-th operation is an ingest (0 = query-only).
    pub ingest_every: usize,
    /// Rows per ingest batch.
    pub ingest_rows: usize,
}

impl MixConfig {
    /// A mix sized for an SSB catalog with `rows` lineorder rows:
    /// 20 regions under moderate skew, 5%-of-domain windows, one
    /// small ingest per 16 operations.
    pub fn for_rows(rows: usize) -> Self {
        let key_space = rows.max(20) as i64;
        Self {
            key_space,
            regions: 20,
            zipf_s: 1.0,
            window: (key_space / 20).max(1),
            ingest_every: 16,
            ingest_rows: (rows / 100).clamp(1, 5_000),
        }
    }
}

/// Cumulative Zipf weights over ranks `1..=n` with exponent `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(n);
    for rank in 1..=n {
        acc += 1.0 / (rank as f64).powf(s);
        cdf.push(acc);
    }
    for w in cdf.iter_mut() {
        *w /= acc;
    }
    cdf
}

/// Generate one client's deterministic operation stream.
pub fn op_stream(cfg: &MixConfig, seed: u64, len: usize) -> Vec<Op> {
    let mut rng = Lehmer64::new(seed);
    let cdf = zipf_cdf(cfg.regions.max(1), cfg.zipf_s);
    // Region ranks map onto shuffled (seed-stable) positions so "hot"
    // does not always mean "leftmost keys".
    let mut positions: Vec<usize> = (0..cfg.regions.max(1)).collect();
    for i in (1..positions.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        positions.swap(i, j);
    }
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        if cfg.ingest_every > 0 && (i + 1) % cfg.ingest_every == 0 {
            out.push(Op::Ingest {
                rows: cfg.ingest_rows,
            });
            continue;
        }
        let u = rng.next_f64();
        let rank = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
        let region = positions[rank];
        let span = cfg.key_space.max(1);
        let center = (region as i64 * 2 + 1) * span / (2 * cfg.regions.max(1) as i64);
        // Jitter within half a region width keeps ranges overlapping
        // (reuse) without being identical (Δ-scans stay exercised).
        let half_region = span / (2 * cfg.regions.max(1) as i64);
        let jitter = if half_region > 0 {
            rng.next_range_i64(-half_region, half_region)
        } else {
            0
        };
        let lo = (center + jitter - cfg.window / 2).clamp(0, span - 1);
        let hi = (lo + cfg.window - 1).clamp(lo, span - 1);
        out.push(Op::Query { lo, hi });
    }
    out
}

/// The Q1 template as SQL over an inclusive `lo_intkey` range, for the
/// serving wire (which carries SQL text, planned server-side).
pub fn q1_sql(lo: i64, hi: i64) -> String {
    format!(
        "SELECT lo_orderdate, SUM(lo_revenue), COUNT(*) FROM lineorder \
         WHERE lo_intkey BETWEEN {lo} AND {hi} GROUP BY lo_orderdate"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MixConfig {
        MixConfig::for_rows(6_000)
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        assert_eq!(op_stream(&cfg(), 7, 200), op_stream(&cfg(), 7, 200));
        assert_ne!(op_stream(&cfg(), 7, 200), op_stream(&cfg(), 8, 200));
    }

    #[test]
    fn ranges_stay_inside_the_key_space() {
        let c = cfg();
        for op in op_stream(&c, 3, 500) {
            if let Op::Query { lo, hi } = op {
                assert!(
                    0 <= lo && lo <= hi && hi < c.key_space,
                    "bad range [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn ingest_cadence_is_respected() {
        let c = cfg();
        let ops = op_stream(&c, 5, 160);
        let ingests = ops
            .iter()
            .filter(|o| matches!(o, Op::Ingest { .. }))
            .count();
        assert_eq!(ingests, 160 / c.ingest_every);
        let query_only = MixConfig {
            ingest_every: 0,
            ..c
        };
        assert!(op_stream(&query_only, 5, 160)
            .iter()
            .all(|o| matches!(o, Op::Query { .. })));
    }

    #[test]
    fn zipf_mix_is_skewed_toward_hot_regions() {
        let c = MixConfig {
            zipf_s: 1.2,
            ingest_every: 0,
            ..cfg()
        };
        let ops = op_stream(&c, 11, 4_000);
        // Bucket query midpoints by region; the hottest region must see
        // well over the uniform share (4000 / 20 = 200).
        let mut counts = vec![0usize; c.regions];
        for op in &ops {
            if let Op::Query { lo, hi } = op {
                let mid = (lo + hi) / 2;
                let region =
                    (mid * c.regions as i64 / c.key_space).clamp(0, c.regions as i64 - 1) as usize;
                counts[region] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 600, "expected a hot region under zipf 1.2, max {max}");
    }

    #[test]
    fn q1_sql_plans_as_the_q1_template() {
        let catalog = crate::ssb::generate(&crate::ssb::SsbConfig::tiny());
        let q = laqy::approx_query(&catalog, &q1_sql(100, 900), 64).expect("plans");
        let built = crate::queries::q1(laqy::Interval::new(100, 900), 64);
        assert_eq!(q.range_column, built.range_column);
        assert_eq!(q.range, built.range);
        assert_eq!(q.plan.group_by, built.plan.group_by);
    }
}
