//! Star Schema Benchmark data generator (paper §7, Dataset).
//!
//! Generates `lineorder` plus the `date`, `supplier`, `part`, and
//! `customer` dimensions with the SSB value domains, and — following the
//! paper — adds a **`lo_intkey`** column to `lineorder`: a unique 8-byte
//! integer in `[0, n)`, randomly shuffled, "to enable fine-grained
//! selectivity control without implying a specific data ordering".
//!
//! The scale factor is continuous: `rows(lineorder) = 6,000,000 × SF`
//! (the paper runs SF 1000 ≈ 6 B tuples on a 384 GB server; this
//! laptop-scale build defaults to fractional SF — every evaluation claim
//! reproduced here is a shape claim that is scale-free, see DESIGN.md).
//! Dimension cardinalities scale with SF but keep the SSB *domain*
//! cardinalities fixed (5 regions, 25 categories, 1000 brands, ...), since
//! those domains determine stratification cost.

use std::sync::Arc;

use laqy_engine::{Catalog, Column, Table};
use laqy_sampling::Lehmer64;

/// SSB regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Cardinalities the paper's Table 1 relies on.
pub mod domains {
    /// `lo_quantity` ∈ [1, 50].
    pub const QUANTITY: i64 = 50;
    /// `lo_discount` ∈ [0, 10].
    pub const DISCOUNT: i64 = 11;
    /// `lo_tax` ∈ [0, 8].
    pub const TAX: i64 = 9;
    /// Days in the 7-year SSB date dimension (1992-01-01 .. 1998-12-31,
    /// including the 1992 and 1996 leap days; SSB literature often quotes
    /// 2556 from a non-leap-aware dategen).
    pub const DATE_DAYS: usize = 2557;
    /// Part categories (`MFGR#11` .. `MFGR#55`).
    pub const CATEGORIES: usize = 25;
    /// Part brands (`p_category` × 40).
    pub const BRANDS: usize = 1000;
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SsbConfig {
    /// Scale factor; `lineorder` gets `6,000,000 × SF` rows.
    pub scale_factor: f64,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl SsbConfig {
    /// A scale factor suitable for unit tests (~6k fact rows).
    pub fn tiny() -> Self {
        Self {
            scale_factor: 0.001,
            seed: 0x55B,
        }
    }

    /// Laptop-scale default (~600k fact rows).
    pub fn small() -> Self {
        Self {
            scale_factor: 0.1,
            seed: 0x55B,
        }
    }

    /// Number of `lineorder` rows at this scale factor.
    pub fn lineorder_rows(&self) -> usize {
        ((6_000_000.0 * self.scale_factor).round() as usize).max(1)
    }

    /// Number of supplier rows (SSB: 2,000 × SF, floored for tiny scales).
    pub fn supplier_rows(&self) -> usize {
        ((2_000.0 * self.scale_factor).round() as usize).max(20)
    }

    /// Number of customer rows (SSB: 30,000 × SF, floored).
    pub fn customer_rows(&self) -> usize {
        ((30_000.0 * self.scale_factor).round() as usize).max(50)
    }

    /// Number of part rows. SSB specifies `200,000 × (1 + log2(SF))` for
    /// SF ≥ 1; below 1 this scales linearly with a floor that still covers
    /// every brand.
    pub fn part_rows(&self) -> usize {
        if self.scale_factor >= 1.0 {
            (200_000.0 * (1.0 + self.scale_factor.log2().max(0.0))).round() as usize
        } else {
            ((200_000.0 * self.scale_factor).round() as usize).max(domains::BRANDS)
        }
    }
}

/// Generate the full SSB catalog.
pub fn generate(config: &SsbConfig) -> Catalog {
    let mut rng = Lehmer64::new(config.seed);
    let mut catalog = Catalog::new();

    let date = generate_date();
    let date_keys: Vec<i64> = match date.column("d_datekey").unwrap() {
        Column::Int32(v) => v.iter().map(|&x| x as i64).collect(),
        _ => unreachable!("d_datekey is Int32"),
    };
    catalog.register(date);
    catalog.register(generate_supplier(config, &mut rng));
    catalog.register(generate_part(config, &mut rng));
    catalog.register(generate_customer(config, &mut rng));
    catalog.register(generate_lineorder(config, &date_keys, &mut rng));
    catalog
}

/// The `date` dimension: one row per day over 1992–1998.
pub fn generate_date() -> Table {
    let days_per_month = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    let mut datekey = Vec::with_capacity(domains::DATE_DAYS);
    let mut year = Vec::with_capacity(domains::DATE_DAYS);
    let mut yearmonthnum = Vec::with_capacity(domains::DATE_DAYS);
    let mut month = Vec::with_capacity(domains::DATE_DAYS);
    for y in 1992..=1998i32 {
        let leap = y % 4 == 0;
        for (m, &dm) in days_per_month.iter().enumerate() {
            let dm = if m == 1 && leap { 29 } else { dm };
            for d in 1..=dm {
                datekey.push(y * 10_000 + (m as i32 + 1) * 100 + d);
                year.push(y);
                yearmonthnum.push(y * 100 + m as i32 + 1);
                month.push(m as i32 + 1);
            }
        }
    }
    Table::new(
        "date",
        vec![
            ("d_datekey".into(), Column::Int32(datekey)),
            ("d_year".into(), Column::Int32(year)),
            ("d_yearmonthnum".into(), Column::Int32(yearmonthnum)),
            ("d_month".into(), Column::Int32(month)),
        ],
    )
    .expect("date columns aligned")
}

fn generate_supplier(config: &SsbConfig, rng: &mut Lehmer64) -> Table {
    let n = config.supplier_rows();
    let mut suppkey = Vec::with_capacity(n);
    let mut region_codes = Vec::with_capacity(n);
    let mut nation_codes = Vec::with_capacity(n);
    let mut city_codes = Vec::with_capacity(n);
    for i in 0..n {
        suppkey.push(i as i64 + 1);
        let region = rng.next_index(REGIONS.len());
        region_codes.push(region as u32);
        // 5 nations per region, as in SSB's 25 nations; 10 cities per
        // nation, as in SSB's 250 cities.
        let nation = region * 5 + rng.next_index(5);
        nation_codes.push(nation as u32);
        city_codes.push((nation * 10 + rng.next_index(10)) as u32);
    }
    let nations: Vec<String> = (0..25).map(|i| format!("NATION_{i:02}")).collect();
    let cities: Vec<String> = (0..250)
        .map(|i| format!("CITY_{:02}_{}", i / 10, i % 10))
        .collect();
    Table::new(
        "supplier",
        vec![
            ("s_suppkey".into(), Column::Int64(suppkey)),
            (
                "s_region".into(),
                Column::Dict {
                    codes: region_codes,
                    dict: Arc::new(REGIONS.iter().map(|s| s.to_string()).collect()),
                },
            ),
            (
                "s_nation".into(),
                Column::Dict {
                    codes: nation_codes,
                    dict: Arc::new(nations),
                },
            ),
            (
                "s_city".into(),
                Column::Dict {
                    codes: city_codes,
                    dict: Arc::new(cities),
                },
            ),
        ],
    )
    .expect("supplier columns aligned")
}

fn generate_customer(config: &SsbConfig, rng: &mut Lehmer64) -> Table {
    let n = config.customer_rows();
    let mut custkey = Vec::with_capacity(n);
    let mut region_codes = Vec::with_capacity(n);
    let mut nation_codes = Vec::with_capacity(n);
    let mut city_codes = Vec::with_capacity(n);
    for i in 0..n {
        custkey.push(i as i64 + 1);
        let region = rng.next_index(REGIONS.len());
        region_codes.push(region as u32);
        let nation = region * 5 + rng.next_index(5);
        nation_codes.push(nation as u32);
        city_codes.push((nation * 10 + rng.next_index(10)) as u32);
    }
    let nations: Vec<String> = (0..25).map(|i| format!("NATION_{i:02}")).collect();
    let cities: Vec<String> = (0..250)
        .map(|i| format!("CITY_{:02}_{}", i / 10, i % 10))
        .collect();
    Table::new(
        "customer",
        vec![
            ("c_custkey".into(), Column::Int64(custkey)),
            (
                "c_region".into(),
                Column::Dict {
                    codes: region_codes,
                    dict: Arc::new(REGIONS.iter().map(|s| s.to_string()).collect()),
                },
            ),
            (
                "c_nation".into(),
                Column::Dict {
                    codes: nation_codes,
                    dict: Arc::new(nations),
                },
            ),
            (
                "c_city".into(),
                Column::Dict {
                    codes: city_codes,
                    dict: Arc::new(cities),
                },
            ),
        ],
    )
    .expect("customer columns aligned")
}

fn generate_part(config: &SsbConfig, rng: &mut Lehmer64) -> Table {
    let n = config.part_rows();
    // Dictionaries: 25 categories ("MFGR#11".."MFGR#55"), 1000 brands
    // ("MFGR#1101".."MFGR#5540" style).
    let categories: Vec<String> = (1..=5)
        .flat_map(|m| (1..=5).map(move |c| format!("MFGR#{m}{c}")))
        .collect();
    let brands: Vec<String> = categories
        .iter()
        .flat_map(|cat| (1..=40).map(move |b| format!("{cat}{b:02}")))
        .collect();
    let mfgrs: Vec<String> = (1..=5).map(|m| format!("MFGR#{m}")).collect();
    let mut partkey = Vec::with_capacity(n);
    let mut mfgr_codes = Vec::with_capacity(n);
    let mut cat_codes = Vec::with_capacity(n);
    let mut brand_codes = Vec::with_capacity(n);
    for i in 0..n {
        partkey.push(i as i64 + 1);
        // Ensure every brand appears at least once (round-robin prefix),
        // then uniform.
        let brand = if i < domains::BRANDS {
            i
        } else {
            rng.next_index(domains::BRANDS)
        };
        brand_codes.push(brand as u32);
        cat_codes.push((brand / 40) as u32);
        mfgr_codes.push((brand / 200) as u32);
    }
    Table::new(
        "part",
        vec![
            ("p_partkey".into(), Column::Int64(partkey)),
            (
                "p_mfgr".into(),
                Column::Dict {
                    codes: mfgr_codes,
                    dict: Arc::new(mfgrs),
                },
            ),
            (
                "p_category".into(),
                Column::Dict {
                    codes: cat_codes,
                    dict: Arc::new(categories),
                },
            ),
            (
                "p_brand1".into(),
                Column::Dict {
                    codes: brand_codes,
                    dict: Arc::new(brands),
                },
            ),
        ],
    )
    .expect("part columns aligned")
}

fn generate_lineorder(config: &SsbConfig, date_keys: &[i64], rng: &mut Lehmer64) -> Table {
    let n = config.lineorder_rows();
    Table::new("lineorder", lineorder_columns(config, date_keys, rng, n, 0))
        .expect("lineorder columns aligned")
}

/// A freshly generated `lineorder` append batch: `rows` rows whose
/// `lo_intkey`/`lo_orderkey` ids continue from `start_row`, with every
/// other column drawn from the same distributions as [`generate`]. Ids
/// cover `[start_row, start_row + rows)` — shuffled within the batch for
/// `lo_intkey`, clustered for `lo_orderkey` — so appending the batch to
/// a catalog generated with `start_row` resident fact rows keeps both
/// keys unique across the grown table.
pub fn lineorder_batch(config: &SsbConfig, start_row: usize, rows: usize) -> Vec<(String, Column)> {
    let date_keys: Vec<i64> = match generate_date().column("d_datekey").unwrap() {
        Column::Int32(v) => v.iter().map(|&x| x as i64).collect(),
        _ => unreachable!("d_datekey is Int32"),
    };
    let mut rng = Lehmer64::new(config.seed);
    lineorder_columns(config, &date_keys, &mut rng, rows, start_row as i64)
}

fn lineorder_columns(
    config: &SsbConfig,
    date_keys: &[i64],
    rng: &mut Lehmer64,
    n: usize,
    key_start: i64,
) -> Vec<(String, Column)> {
    let suppliers = config.supplier_rows() as u64;
    let parts = config.part_rows() as u64;
    let customers = config.customer_rows() as u64;

    // lo_intkey: shuffled unique ids (Fisher–Yates).
    let mut intkey: Vec<i64> = (key_start..key_start + n as i64).collect();
    for i in (1..n).rev() {
        let j = rng.next_index(i + 1);
        intkey.swap(i, j);
    }
    // lo_orderkey: the same unique ids in storage order — a *clustered*
    // surrogate key (rows arrive in order-entry sequence, as they would
    // from an append-only load). Range predicates on it are the best case
    // for per-morsel zone-map pruning, giving experiments a clustered
    // counterpart to the deliberately shuffled lo_intkey.
    let orderkey: Vec<i64> = (key_start..key_start + n as i64).collect();

    let mut orderdate = Vec::with_capacity(n);
    let mut quantity = Vec::with_capacity(n);
    let mut discount = Vec::with_capacity(n);
    let mut tax = Vec::with_capacity(n);
    let mut extendedprice = Vec::with_capacity(n);
    let mut revenue = Vec::with_capacity(n);
    let mut suppkey = Vec::with_capacity(n);
    let mut partkey = Vec::with_capacity(n);
    let mut custkey = Vec::with_capacity(n);
    for _ in 0..n {
        orderdate.push(date_keys[rng.next_index(date_keys.len())] as i32);
        let q = 1 + rng.next_below(domains::QUANTITY as u64) as i32;
        quantity.push(q);
        let d = rng.next_below(domains::DISCOUNT as u64) as i32;
        discount.push(d);
        tax.push(rng.next_below(domains::TAX as u64) as i32);
        let price = 90_000 + rng.next_below(20_000) as i64;
        extendedprice.push(price);
        revenue.push(price * q as i64 * (100 - d as i64) / 100);
        suppkey.push(1 + rng.next_below(suppliers) as i64);
        partkey.push(1 + rng.next_below(parts) as i64);
        custkey.push(1 + rng.next_below(customers) as i64);
    }
    vec![
        ("lo_intkey".into(), Column::Int64(intkey)),
        ("lo_orderkey".into(), Column::Int64(orderkey)),
        ("lo_orderdate".into(), Column::Int32(orderdate)),
        ("lo_quantity".into(), Column::Int32(quantity)),
        ("lo_discount".into(), Column::Int32(discount)),
        ("lo_tax".into(), Column::Int32(tax)),
        ("lo_extendedprice".into(), Column::Int64(extendedprice)),
        ("lo_revenue".into(), Column::Int64(revenue)),
        ("lo_suppkey".into(), Column::Int64(suppkey)),
        ("lo_partkey".into(), Column::Int64(partkey)),
        ("lo_custkey".into(), Column::Int64(custkey)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn catalog() -> Catalog {
        generate(&SsbConfig::tiny())
    }

    #[test]
    fn lineorder_has_expected_rows_and_columns() {
        let cat = catalog();
        let lo = cat.table("lineorder").unwrap();
        assert_eq!(lo.num_rows(), 6_000);
        for col in [
            "lo_intkey",
            "lo_orderkey",
            "lo_orderdate",
            "lo_quantity",
            "lo_discount",
            "lo_tax",
            "lo_extendedprice",
            "lo_revenue",
            "lo_suppkey",
            "lo_partkey",
            "lo_custkey",
        ] {
            assert!(lo.has_column(col), "missing column {col}");
        }
    }

    #[test]
    fn intkey_is_a_shuffled_permutation() {
        let cat = catalog();
        let lo = cat.table("lineorder").unwrap();
        let col = lo.column("lo_intkey").unwrap();
        let n = lo.num_rows();
        let mut seen: Vec<i64> = (0..n).map(|i| col.i64_at(i)).collect();
        // Not identity order.
        assert!(seen.windows(2).any(|w| w[0] > w[1]), "intkey not shuffled");
        seen.sort_unstable();
        assert_eq!(seen, (0..n as i64).collect::<Vec<_>>());
    }

    #[test]
    fn lineorder_batch_continues_the_key_space() {
        let config = SsbConfig::tiny();
        let cat = generate(&config);
        let lo = cat.table("lineorder").unwrap();
        let n = lo.num_rows();
        let batch = lineorder_batch(&config, n, 500);
        // Same schema, in the same column order, as the generated table.
        assert_eq!(
            batch
                .iter()
                .map(|(name, _)| name.to_string())
                .collect::<Vec<_>>(),
            lo.schema()
                .iter()
                .map(|(name, _)| name.to_string())
                .collect::<Vec<_>>()
        );
        // lo_intkey: a shuffled permutation of the next 500 ids.
        let Column::Int64(intkey) = &batch[0].1 else {
            panic!("lo_intkey is Int64");
        };
        let mut seen = intkey.clone();
        assert!(seen.windows(2).any(|w| w[0] > w[1]), "intkey not shuffled");
        seen.sort_unstable();
        assert_eq!(seen, (n as i64..(n + 500) as i64).collect::<Vec<_>>());
        // lo_orderkey: the same ids, clustered.
        let Column::Int64(orderkey) = &batch[1].1 else {
            panic!("lo_orderkey is Int64");
        };
        assert_eq!(orderkey, &(n as i64..(n + 500) as i64).collect::<Vec<_>>());
        // Deterministic in the config seed.
        let again = lineorder_batch(&config, n, 500);
        let Column::Int64(intkey_again) = &again[0].1 else {
            panic!("lo_intkey is Int64");
        };
        assert_eq!(intkey, intkey_again);
    }

    #[test]
    fn orderkey_is_clustered_identity() {
        let cat = catalog();
        let lo = cat.table("lineorder").unwrap();
        let col = lo.column("lo_orderkey").unwrap();
        for i in 0..lo.num_rows() {
            assert_eq!(col.i64_at(i), i as i64);
        }
    }

    #[test]
    fn table1_domain_cardinalities() {
        // The exact |QCS| sizes from the paper's Table 1.
        let cat = generate(&SsbConfig {
            scale_factor: 0.01,
            seed: 7,
        });
        let lo = cat.table("lineorder").unwrap();
        let distinct = |name: &str| -> usize {
            let c = lo.column(name).unwrap();
            (0..lo.num_rows())
                .map(|i| c.i64_at(i))
                .collect::<HashSet<_>>()
                .len()
        };
        assert_eq!(distinct("lo_quantity"), 50);
        assert_eq!(distinct("lo_tax"), 9);
        assert_eq!(distinct("lo_discount"), 11);
        // Combined QCS cardinalities: 450 and 4950.
        let two: HashSet<(i64, i64)> = {
            let q = lo.column("lo_quantity").unwrap();
            let t = lo.column("lo_tax").unwrap();
            (0..lo.num_rows())
                .map(|i| (q.i64_at(i), t.i64_at(i)))
                .collect()
        };
        assert_eq!(two.len(), 450);
    }

    #[test]
    fn value_ranges_match_ssb() {
        let cat = catalog();
        let lo = cat.table("lineorder").unwrap();
        let (q, d, t) = (
            lo.column("lo_quantity").unwrap(),
            lo.column("lo_discount").unwrap(),
            lo.column("lo_tax").unwrap(),
        );
        for i in 0..lo.num_rows() {
            assert!((1..=50).contains(&q.i64_at(i)));
            assert!((0..=10).contains(&d.i64_at(i)));
            assert!((0..=8).contains(&t.i64_at(i)));
        }
    }

    #[test]
    fn date_dimension_shape() {
        let d = generate_date();
        assert_eq!(d.num_rows(), domains::DATE_DAYS);
        let years: HashSet<i64> = {
            let y = d.column("d_year").unwrap();
            (0..d.num_rows()).map(|i| y.i64_at(i)).collect()
        };
        assert_eq!(years.len(), 7);
    }

    #[test]
    fn foreign_keys_join_cleanly() {
        let cat = catalog();
        let lo = cat.table("lineorder").unwrap();
        let date_keys: HashSet<i64> = {
            let d = cat.table("date").unwrap();
            let c = d.column("d_datekey").unwrap();
            (0..d.num_rows()).map(|i| c.i64_at(i)).collect()
        };
        let od = lo.column("lo_orderdate").unwrap();
        for i in 0..lo.num_rows().min(1000) {
            assert!(date_keys.contains(&od.i64_at(i)));
        }
        let sup = cat.table("supplier").unwrap();
        let sk = lo.column("lo_suppkey").unwrap();
        for i in 0..lo.num_rows().min(1000) {
            let k = sk.i64_at(i);
            assert!(k >= 1 && k <= sup.num_rows() as i64);
        }
    }

    #[test]
    fn part_covers_all_brands_and_categories() {
        let cat = catalog();
        let p = cat.table("part").unwrap();
        let brands: HashSet<i64> = {
            let c = p.column("p_brand1").unwrap();
            (0..p.num_rows()).map(|i| c.i64_at(i)).collect()
        };
        assert_eq!(brands.len(), domains::BRANDS);
        let cats: HashSet<i64> = {
            let c = p.column("p_category").unwrap();
            (0..p.num_rows()).map(|i| c.i64_at(i)).collect()
        };
        assert_eq!(cats.len(), domains::CATEGORIES);
        // The category the paper filters on exists.
        assert!(p
            .column("p_category")
            .unwrap()
            .dict_code("p_category", "MFGR#12")
            .is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SsbConfig::tiny());
        let b = generate(&SsbConfig::tiny());
        let (la, lb) = (a.table("lineorder").unwrap(), b.table("lineorder").unwrap());
        let (ca, cb) = (
            la.column("lo_intkey").unwrap(),
            lb.column("lo_intkey").unwrap(),
        );
        for i in 0..la.num_rows() {
            assert_eq!(ca.i64_at(i), cb.i64_at(i));
        }
    }

    #[test]
    fn scaling_rules() {
        let c = SsbConfig {
            scale_factor: 1.0,
            seed: 1,
        };
        assert_eq!(c.lineorder_rows(), 6_000_000);
        assert_eq!(c.supplier_rows(), 2_000);
        assert_eq!(c.customer_rows(), 30_000);
        assert_eq!(c.part_rows(), 200_000);
        let c4 = SsbConfig {
            scale_factor: 4.0,
            seed: 1,
        };
        assert_eq!(c4.part_rows(), 600_000);
    }
}
