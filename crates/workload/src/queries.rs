//! The paper's query templates (§7, Workload) as [`ApproxQuery`] builders.
//!
//! - **Strat**: isolated stratified sampling over `lineorder`, grouping on
//!   1–3 QCS columns, with an optional selectivity-controlling predicate on
//!   the QVS column (`lo_intkey`) or on the QCS column (`lo_quantity`).
//! - **Q1**: scan-heavy — the sampler is pushed down to the `lineorder`
//!   scan; `GROUP BY lo_orderdate`.
//! - **Q2**: join-heavy — `lineorder ⋈ date ⋈ supplier ⋈ part` with fixed
//!   dimension predicates (`s_region = 'AMERICA'`,
//!   `p_category = 'MFGR#12'`); the sampler sits above the joins, grouping
//!   on `(d_year, p_brand1)`.

use laqy::{ApproxQuery, Interval};
use laqy_engine::{AggSpec, ColRef, JoinSpec, Predicate, QueryPlan};

/// QCS column sets from Table 1: 1 → {lo_quantity} (50 strata),
/// 2 → +lo_tax (450), 3 → +lo_discount (4950).
pub fn qcs_columns(n: usize) -> Vec<&'static str> {
    match n {
        1 => vec!["lo_quantity"],
        2 => vec!["lo_quantity", "lo_tax"],
        3 => vec!["lo_quantity", "lo_tax", "lo_discount"],
        _ => panic!("QCS column count must be 1..=3"),
    }
}

/// Expected stratum count for an n-column QCS (Table 1).
pub fn qcs_cardinality(n: usize) -> usize {
    match n {
        1 => 50,
        2 => 450,
        3 => 4950,
        _ => panic!("QCS column count must be 1..=3"),
    }
}

/// The `Strat` template: stratified aggregation over `lineorder` with
/// `qcs_cols` grouping columns. `range` applies to `range_column`
/// (`lo_intkey` for QVS-selectivity experiments, `lo_quantity` for
/// QCS-selectivity experiments).
pub fn strat(qcs_cols: usize, range_column: &str, range: Interval, k: usize) -> ApproxQuery {
    ApproxQuery {
        plan: QueryPlan {
            fact: "lineorder".into(),
            predicate: Predicate::True,
            joins: vec![],
            group_by: qcs_columns(qcs_cols)
                .into_iter()
                .map(ColRef::fact)
                .collect(),
            aggs: vec![AggSpec::sum("lo_revenue"), AggSpec::count()],
        },
        range_column: range_column.into(),
        range,
        k,
    }
}

/// The Q1 template: sampler pushed down to the scan.
///
/// ```sql
/// SELECT lo_orderdate, SUM(lo_revenue), COUNT(*) FROM lineorder
/// WHERE lo_intkey BETWEEN lower AND upper
/// GROUP BY lo_orderdate
/// ```
pub fn q1(range: Interval, k: usize) -> ApproxQuery {
    ApproxQuery {
        plan: QueryPlan {
            fact: "lineorder".into(),
            predicate: Predicate::True,
            joins: vec![],
            group_by: vec![ColRef::fact("lo_orderdate")],
            aggs: vec![AggSpec::sum("lo_revenue"), AggSpec::count()],
        },
        range_column: "lo_intkey".into(),
        range,
        k,
    }
}

/// The Q2 template: sampler above the star join.
///
/// ```sql
/// SELECT d_year, p_brand1, SUM(lo_revenue) FROM lineorder, date, supplier, part
/// WHERE lo_intkey BETWEEN lower AND upper
///   AND s_region = 'AMERICA' AND p_category = 'MFGR#12' AND (JOIN)
/// GROUP BY d_year, p_brand1
/// ```
pub fn q2(range: Interval, k: usize) -> ApproxQuery {
    ApproxQuery {
        plan: QueryPlan {
            fact: "lineorder".into(),
            predicate: Predicate::True,
            joins: vec![
                JoinSpec {
                    dim_table: "date".into(),
                    dim_key: "d_datekey".into(),
                    fact_key: "lo_orderdate".into(),
                    predicate: Predicate::True,
                },
                JoinSpec {
                    dim_table: "supplier".into(),
                    dim_key: "s_suppkey".into(),
                    fact_key: "lo_suppkey".into(),
                    predicate: Predicate::eq_str("s_region", "AMERICA"),
                },
                JoinSpec {
                    dim_table: "part".into(),
                    dim_key: "p_partkey".into(),
                    fact_key: "lo_partkey".into(),
                    predicate: Predicate::eq_str("p_category", "MFGR#12"),
                },
            ],
            group_by: vec![
                ColRef::dim("date", "d_year"),
                ColRef::dim("part", "p_brand1"),
            ],
            aggs: vec![AggSpec::sum("lo_revenue"), AggSpec::count()],
        },
        range_column: "lo_intkey".into(),
        range,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssb::{generate, SsbConfig};
    use laqy::LaqySession;

    #[test]
    fn qcs_mappings_match_table1() {
        assert_eq!(qcs_columns(1), vec!["lo_quantity"]);
        assert_eq!(qcs_cardinality(1), 50);
        assert_eq!(qcs_cardinality(2), 450);
        assert_eq!(qcs_cardinality(3), 4950);
    }

    #[test]
    #[should_panic(expected = "1..=3")]
    fn qcs_out_of_range_panics() {
        let _ = qcs_columns(4);
    }

    #[test]
    fn q1_runs_end_to_end() {
        let catalog = generate(&SsbConfig::tiny());
        let mut session = LaqySession::new(catalog);
        let q = q1(Interval::new(0, 2999), 64);
        let result = session.run(&q).unwrap();
        assert!(!result.groups.is_empty());
        // Grouping on lo_orderdate: strata bounded by the date dimension.
        assert!(result.groups.len() <= crate::ssb::domains::DATE_DAYS);
    }

    #[test]
    fn q2_runs_end_to_end() {
        let catalog = generate(&SsbConfig::tiny());
        let mut session = LaqySession::new(catalog);
        let q = q2(Interval::new(0, 5999), 64);
        let result = session.run(&q).unwrap();
        assert!(!result.groups.is_empty());
        let keys = session.decode_keys(&q, &result).unwrap();
        // d_year decodes to 1992..=1998; p_brand1 to MFGR#12xx strings.
        for key in &keys {
            let year = key[0].as_i64().unwrap();
            assert!((1992..=1998).contains(&year));
            match &key[1] {
                laqy_engine::Value::Str(s) => assert!(s.starts_with("MFGR#12")),
                other => panic!("expected brand string, got {other:?}"),
            }
        }
    }

    #[test]
    fn strat_template_stratifies_on_qcs() {
        let catalog = generate(&SsbConfig::tiny());
        let mut session = LaqySession::new(catalog);
        let q = strat(2, "lo_intkey", Interval::new(0, 5999), 16);
        let result = session.run(&q).unwrap();
        assert_eq!(result.groups.len(), 450);
    }
}
