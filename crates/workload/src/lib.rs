//! # laqy-workload
//!
//! Workload substrate for the LAQy reproduction: a Star Schema Benchmark
//! data generator with the paper's added `lo_intkey` selectivity-control
//! column ([`ssb`]), the exploratory query-sequence generators driving the
//! reuse evaluation ([`sequences`]), the paper's query templates Strat,
//! Q1, and Q2 ([`queries`]), and the zipf-skewed multi-tenant serving mix
//! ([`serving`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queries;
pub mod sequences;
pub mod serving;
pub mod ssb;
pub mod ssb_queries;

pub use queries::{q1, q2, qcs_cardinality, qcs_columns, strat};
pub use sequences::{long_running, selectivity, short_running, ExploreConfig};
pub use serving::{op_stream, q1_sql, MixConfig, Op};
pub use ssb::{generate, lineorder_batch, SsbConfig, REGIONS};
pub use ssb_queries::all_queries;
