//! Exploratory query-sequence generators (paper §7, Workload).
//!
//! Two sequence shapes drive the reuse evaluation:
//!
//! - **Long-running analysis**: one user runs the query template over 50
//!   iterations, progressively extending the value range, narrowing it, or
//!   keeping it, with rate `r = 0.3` for same-or-narrower steps.
//! - **Short-running analyses**: 60 queries split into 3 × 20 batches; each
//!   batch restarts the analysis at a fresh uniformly-random focus region
//!   (the "user changes the focus of interest" scenario — cold starts at
//!   queries 0, 20, 40 in Figure 13).
//!
//! As in the paper: "We select the starting point uniformly at random in
//! the value interval, use geometric distribution to instantiate the
//! per-query value range around the starting point, and use r = 0.3 as the
//! rate when the same or narrower value range occurs." Generator seeds are
//! fixed for repeatable, mutually-comparable experiments.

use laqy::Interval;
use laqy_sampling::Lehmer64;

/// Sequence generator parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Number of queries (per batch for the short-running shape).
    pub n_queries: usize,
    /// Value domain of the explored column (`lo_intkey` ∈ [0, n)).
    pub domain: Interval,
    /// Rate `r` of same-or-narrower steps (paper: 0.3).
    pub rate_same_or_narrower: f64,
    /// Success probability of the geometric step distribution; smaller
    /// values mean larger range extensions.
    pub growth_p: f64,
    /// Step unit as a fraction of the domain (each geometric draw extends
    /// a range edge by `draw × unit_fraction × |domain|`).
    pub unit_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ExploreConfig {
    /// The paper's long-running setup: 50 queries, r = 0.3.
    pub fn long_running(domain: Interval, seed: u64) -> Self {
        Self {
            n_queries: 50,
            domain,
            rate_same_or_narrower: 0.3,
            growth_p: 0.5,
            unit_fraction: 0.01,
            seed,
        }
    }

    /// One short-running batch: 20 queries, r = 0.3.
    pub fn short_batch(domain: Interval, seed: u64) -> Self {
        Self {
            n_queries: 20,
            domain,
            rate_same_or_narrower: 0.3,
            growth_p: 0.5,
            unit_fraction: 0.01,
            seed,
        }
    }
}

/// Draw from a geometric distribution with success probability `p`
/// (support 1, 2, ...), via inversion.
fn geometric(rng: &mut Lehmer64, p: f64) -> u64 {
    debug_assert!(p > 0.0 && p < 1.0);
    let u = rng.next_f64().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
}

/// Generate a long-running exploration: per-query inclusive ranges on the
/// domain.
pub fn long_running(cfg: &ExploreConfig) -> Vec<Interval> {
    let mut rng = Lehmer64::new(cfg.seed);
    let mut out = Vec::with_capacity(cfg.n_queries);
    if cfg.n_queries == 0 {
        return out;
    }
    let domain_width = cfg.domain.width() as f64;
    let unit = ((domain_width * cfg.unit_fraction).round() as i64).max(1);

    // Initial range around a uniform starting point, geometric width.
    let start = rng.next_range_i64(cfg.domain.lo, cfg.domain.hi);
    let half = geometric(&mut rng, cfg.growth_p) as i64 * unit / 2;
    let mut lo = (start - half).max(cfg.domain.lo);
    let mut hi = (start + half).min(cfg.domain.hi);
    out.push(Interval::new(lo, hi));

    for _ in 1..cfg.n_queries {
        if rng.next_f64() < cfg.rate_same_or_narrower {
            // Same or narrower: half the time identical, otherwise shrink
            // each edge by up to a quarter of the current width.
            if rng.next_f64() < 0.5 {
                out.push(Interval::new(lo, hi));
                continue;
            }
            let width = hi - lo;
            let shrink_lo = rng.next_below((width / 4 + 1) as u64) as i64;
            let shrink_hi = rng.next_below((width / 4 + 1) as u64) as i64;
            let (nlo, nhi) = (lo + shrink_lo, hi - shrink_hi);
            // A narrower query does not move the running extent.
            out.push(Interval::new(nlo.min(nhi), nhi.max(nlo)));
        } else {
            // Extend: geometric increments on one or both edges.
            let grow_lo = geometric(&mut rng, cfg.growth_p) as i64 * unit;
            let grow_hi = geometric(&mut rng, cfg.growth_p) as i64 * unit;
            match rng.next_below(3) {
                0 => lo = (lo - grow_lo).max(cfg.domain.lo),
                1 => hi = (hi + grow_hi).min(cfg.domain.hi),
                _ => {
                    lo = (lo - grow_lo).max(cfg.domain.lo);
                    hi = (hi + grow_hi).min(cfg.domain.hi);
                }
            }
            out.push(Interval::new(lo, hi));
        }
    }
    out
}

/// Generate a short-running exploration: `batches` independent analyses of
/// `cfg.n_queries` each, every batch restarting at a fresh focus region.
pub fn short_running(cfg: &ExploreConfig, batches: usize) -> Vec<Interval> {
    let mut out = Vec::with_capacity(batches * cfg.n_queries);
    for b in 0..batches {
        let batch_cfg = ExploreConfig {
            seed: cfg.seed.wrapping_add(0x9E37 * (b as u64 + 1)),
            ..cfg.clone()
        };
        out.extend(long_running(&batch_cfg));
    }
    out
}

/// Selectivity of a range over the domain (Figure 9's y-axis).
pub fn selectivity(range: &Interval, domain: &Interval) -> f64 {
    range
        .intersect(domain)
        .map(|iv| iv.width() as f64 / domain.width() as f64)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Interval {
        Interval::new(0, 599_999)
    }

    #[test]
    fn long_sequence_shape() {
        let cfg = ExploreConfig::long_running(domain(), 42);
        let seq = long_running(&cfg);
        assert_eq!(seq.len(), 50);
        for iv in &seq {
            assert!(iv.lo >= domain().lo && iv.hi <= domain().hi);
        }
    }

    #[test]
    fn ranges_mostly_grow() {
        let cfg = ExploreConfig::long_running(domain(), 7);
        let seq = long_running(&cfg);
        // The final extent should be significantly wider than the initial
        // range — extensions dominate at r = 0.3.
        let first = seq[0].width();
        let max_width = seq.iter().map(|iv| iv.width()).max().unwrap();
        assert!(
            max_width > first * 2,
            "extent should grow: first {first}, max {max_width}"
        );
    }

    #[test]
    fn some_steps_repeat_or_narrow() {
        let cfg = ExploreConfig::long_running(domain(), 3);
        let seq = long_running(&cfg);
        let non_growing = seq
            .windows(2)
            .filter(|w| w[1].width() <= w[0].width())
            .count();
        assert!(
            non_growing >= 5,
            "expect same/narrower steps at r=0.3, got {non_growing}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ExploreConfig::long_running(domain(), 11);
        assert_eq!(long_running(&cfg), long_running(&cfg));
        let cfg2 = ExploreConfig {
            seed: 12,
            ..cfg.clone()
        };
        assert_ne!(long_running(&cfg), long_running(&cfg2));
    }

    #[test]
    fn short_running_has_batches() {
        let cfg = ExploreConfig::short_batch(domain(), 21);
        let seq = short_running(&cfg, 3);
        assert_eq!(seq.len(), 60);
        // Batch starts (0, 20, 40) should target different focus regions:
        // their midpoints should not coincide.
        let mid = |iv: &Interval| (iv.lo + iv.hi) / 2;
        let m0 = mid(&seq[0]);
        let m1 = mid(&seq[20]);
        let m2 = mid(&seq[40]);
        assert!(m0 != m1 && m1 != m2 && m0 != m2);
    }

    #[test]
    fn selectivity_computation() {
        let d = Interval::new(0, 99);
        assert_eq!(selectivity(&Interval::new(0, 49), &d), 0.5);
        assert_eq!(selectivity(&Interval::new(0, 99), &d), 1.0);
        assert_eq!(selectivity(&Interval::new(200, 300), &d), 0.0);
    }

    #[test]
    fn geometric_draws_have_expected_mean() {
        let mut rng = Lehmer64::new(5);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| geometric(&mut rng, 0.5)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "geometric(0.5) mean {mean} != 2");
    }

    #[test]
    fn cumulative_extent_is_monotone_under_extension() {
        // The running [lo, hi] extent never shrinks across the sequence
        // (narrow steps report a sub-range but do not move the extent).
        let cfg = ExploreConfig::long_running(domain(), 99);
        let seq = long_running(&cfg);
        let mut extent = seq[0];
        for iv in &seq[1..] {
            let new_extent = Interval::new(extent.lo.min(iv.lo), extent.hi.max(iv.hi));
            assert!(new_extent.width() >= extent.width());
            extent = new_extent;
        }
    }
}
