#!/usr/bin/env bash
# Regenerate every paper table/figure (plus the repo's own ablation and
# sensitivity experiments) into figures_sf<SF>.txt. Run on an otherwise
# idle machine: the harness measures wall time.
set -euo pipefail
SF="${1:-0.1}"
cd "$(dirname "$0")/.."
cargo build --release -p laqy-bench
./target/release/figures --sf "$SF" all seeds rates > "figures_sf${SF}.txt"
echo "wrote figures_sf${SF}.txt"
