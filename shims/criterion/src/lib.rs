//! Offline shim for the `criterion` crate. See `shims/README.md`.
//!
//! A lightweight wall-clock benchmark harness exposing the subset of the
//! criterion API the workspace's benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with throughput annotations,
//! `Bencher::iter` / `iter_with_setup`, and `BenchmarkId`. Results are
//! printed as `ns/iter` (plus derived element throughput) with a
//! median-of-samples measurement; there is no statistical analysis, HTML
//! report, or CLI filtering.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input elements processed per iteration.
    Elements(u64),
    /// Input bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration of the measured routine.
    result_ns: f64,
}

impl Bencher {
    /// Measure `routine`, called in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the iteration count until one sample takes long
        // enough for the timer to resolve it meaningfully.
        let mut iters: u64 = 1;
        let min_sample = Duration::from_millis(2);
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= min_sample || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }

    /// Measure `routine` with a fresh, untimed `setup` product per call.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            per_iter.push(t.elapsed().as_nanos() as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b);
        report(&self.name, &id.label, b.result_ns, self.throughput);
        self.criterion.benches_run += 1;
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    benches_run: usize,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = id.label.clone();
        self.benchmark_group(label).bench_function(id, f);
        self
    }

    /// Hook for CLI configuration (accepted for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

fn report(group: &str, bench: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / ns_per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / ns_per_iter * 1e9 / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{group}/{bench}: {ns_per_iter:.0} ns/iter{rate}");
}

/// Collect benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3).throughput(Throughput::Elements(100));
        let mut ran = false;
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        assert!(ran);
        assert_eq!(c.benches_run, 2);
    }

    #[test]
    fn iter_with_setup_gets_fresh_input() {
        let mut c = Criterion::default();
        c.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u8; 16], |v| v.len());
        });
    }

    criterion_group!(self_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        self_group();
    }
}
