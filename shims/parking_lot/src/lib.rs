//! Offline shim for the `parking_lot` crate: non-poisoning [`Mutex`],
//! [`RwLock`], and [`Condvar`] with parking_lot's guard-based API, built on
//! `std::sync`. See `shims/README.md`.
//!
//! Poisoning is deliberately swallowed (`PoisonError::into_inner`): like
//! the real parking_lot, a panic while holding a lock leaves the data
//! accessible to other threads. Tests that assert panics while peers hold
//! locks rely on this.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds the lock until dropped.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // and put the re-acquired one back, matching parking_lot's
    // `wait(&mut MutexGuard)` signature.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new readers-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Block until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        result.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guard_derefs() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
            assert!(l.try_write().is_none(), "readers must block the writer");
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock must stay usable after a panic");
    }
}
