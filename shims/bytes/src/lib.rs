//! Offline shim for the `bytes` crate: the [`Buf`]/[`BufMut`] subset the
//! workspace's persistence layer uses (little-endian integer get/put over
//! `&[u8]` readers and `Vec<u8>` writers). See `shims/README.md`.

/// Read-side cursor over a contiguous byte buffer.
///
/// Like the real crate, the `get_*` methods panic when the buffer has
/// fewer bytes than requested; callers are expected to check
/// [`Buf::remaining`] first when the input is untrusted.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write-side growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_i64_le(-42);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i64_le(), -42);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn works_through_mut_reference() {
        let data = vec![1u8, 0, 0, 0];
        let mut slice: &[u8] = &data;
        let r = &mut slice;
        assert_eq!(r.remaining(), 4);
        assert_eq!(r.get_u32_le(), 1);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
