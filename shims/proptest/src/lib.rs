//! Offline shim for the `proptest` crate. See `shims/README.md`.
//!
//! Provides the subset of the proptest API this workspace uses:
//!
//! - the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - integer-range, tuple, `prop::collection::vec`, `prop::sample::select`,
//!   `any::<T>()`, `Just`, and `.prop_map` strategies,
//! - string strategies for the regex forms `".*"` and `"[<class>]{m,n}"`.
//!
//! Differences from the real crate: generation is deterministic (seeded
//! from the test path), there is **no shrinking**, and failures simply
//! panic with the case number so the deterministic seed re-derives the
//! inputs.

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration: how many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic split-mix RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG; the same seed replays the same case.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Seed derived stably from a test's module path and name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(width) as $wide) as $t
            }
        }
    )*};
}

int_range_strategy! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64,
    usize => u64, isize => i64,
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}

/// `&str` as a pattern strategy: supports exactly `".*"` (arbitrary short
/// strings over a fuzzing alphabet) and `"[<class>]{m,n}"` (character
/// class with a repetition count), the two forms used in this repo.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    /// Alphabet for `".*"`: printable ASCII plus newline, tab, and a few
    /// multi-byte characters so tokenizers meet non-ASCII input.
    const ANY: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '(', ')', ',', '.', '*', '=', '<', '>',
        '\'', '"', '-', '+', '_', ';', '%', 'é', 'λ', '→', '💥',
    ];

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        if pattern == ".*" {
            let len = rng.below(33) as usize;
            return (0..len)
                .map(|_| ANY[rng.below(ANY.len() as u64) as usize])
                .collect();
        }
        if let Some(parsed) = parse_class_repeat(pattern) {
            let (chars, lo, hi) = parsed;
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            return (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect();
        }
        panic!("proptest shim: unsupported string pattern {pattern:?} (see shims/README.md)");
    }

    /// Parse `[<class>]{m,n}` where `<class>` is literals and `a-z` style
    /// ranges. Returns the expanded alphabet and the repetition bounds.
    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let counts = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .split_once(',')?;
        let lo: usize = counts.0.trim().parse().ok()?;
        let hi: usize = counts.1.trim().parse().ok()?;
        if lo > hi {
            return None;
        }
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                for c in a..=b {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        Some((chars, lo, hi))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of `len` elements generated by `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy picking one element of a fixed set.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Pick uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty set");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// The usual glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// Module-style access (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Assert a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn` runs its body for many generated
/// inputs. Accepts an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one plain `#[test]` per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let case_seed = base ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
                let mut rng = $crate::TestRng::new(case_seed);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let run = || { $body };
                if let Err(payload) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest shim: property {} failed at case {case} (seed {case_seed:#x})",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(-50i64..7), &mut rng);
            assert!((-50..7).contains(&v));
            let u = crate::Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let strat = prop::collection::vec((0i64..100, 0i64..10).prop_map(|(a, b)| a + b), 1..20);
        let a: Vec<i64> = crate::Strategy::generate(&strat, &mut crate::TestRng::new(9));
        let b: Vec<i64> = crate::Strategy::generate(&strat, &mut crate::TestRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn class_pattern_generates_in_class() {
        let mut rng = crate::TestRng::new(5);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn select_picks_from_options() {
        let mut rng = crate::TestRng::new(6);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&prop::sample::select(vec!["x", "y"]), &mut rng);
            assert!(v == "x" || v == "y");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_wires_strategies(a in 0i64..100, b in 1i64..10, flip in any::<bool>()) {
            prop_assert!((0..100).contains(&a));
            prop_assert!((1..10).contains(&b));
            prop_assert!(usize::from(flip) <= 1);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config_runs(v in prop::collection::vec(0u8..255, 0..8)) {
            prop_assert!(v.len() < 8);
        }
    }
}
