//! Offline shim for the `crossbeam` crate: the `crossbeam::thread::scope`
//! scoped-thread API, implemented over `std::thread::scope` (stable since
//! Rust 1.63). See `shims/README.md`.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    /// Result of joining a scoped thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope in which threads borrowing the environment can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its value or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that borrow from the caller's
    /// stack. All threads are joined before `scope` returns.
    ///
    /// crossbeam returns `Err` when an unjoined child panicked; with the
    /// std backend an unjoined child's panic resumes on the scope owner
    /// instead, so the `Err` arm here is only reachable through a caller
    /// that catches and rethrows — callers in this workspace `.expect()`
    /// the result either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let counter = AtomicUsize::new(0);
            let counter = &counter;
            let results = super::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|i| {
                        s.spawn(move |_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                            i * 2
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panic"))
                    .collect::<Vec<_>>()
            })
            .expect("scope");
            assert_eq!(results, vec![0, 2, 4, 6]);
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }

        #[test]
        fn child_panic_is_captured_by_join() {
            let joined = super::scope(|s| {
                let h = s.spawn(|_| -> usize { panic!("boom") });
                h.join()
            })
            .expect("scope itself succeeds");
            assert!(joined.is_err(), "panic payload must surface via join()");
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let v = super::scope(|s| {
                s.spawn(|inner| inner.spawn(|_| 7).join().expect("inner"))
                    .join()
                    .expect("outer")
            })
            .expect("scope");
            assert_eq!(v, 7);
        }
    }
}
