//! Accuracy validation: LAQy accelerates sampling *without loss of
//! approximation guarantees* — merged (partially reused) samples must be
//! as accurate as freshly built online samples. This example measures
//! relative error and 95 % CI coverage for both, over repeated seeds.
//!
//! ```text
//! cargo run --release --example accuracy_bounds [trials]
//! ```

use laqy::{Interval, LaqySession, SessionConfig};
use laqy_engine::Value;
use laqy_workload::{generate, q1, SsbConfig};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let catalog = generate(&SsbConfig {
        scale_factor: 0.01,
        seed: 5,
    });
    let n = catalog.table("lineorder").unwrap().num_rows() as i64;
    // The evaluation query: SUM(lo_revenue) per lo_orderdate over [0, 70% n).
    // k=8 per stratum (~23 qualifying rows per date) so sampling is real.
    let target = q1(Interval::new(0, (n as f64 * 0.7) as i64 - 1), 8);

    // Ground truth once.
    let session = LaqySession::new(catalog.clone());
    let (exact, _) = session.run_exact(&target).expect("exact");

    let report = |label: &str, merged_path: bool| {
        let mut rel_err_sum = 0.0f64;
        let (mut covered, mut groups_total) = (0usize, 0usize);
        for t in 0..trials {
            let mut s = LaqySession::with_config(
                catalog.clone(),
                SessionConfig {
                    seed: 1000 + t as u64,
                    ..Default::default()
                },
            );
            if merged_path {
                // Force the partial-reuse path: sample 0..40% first, so the
                // target query needs a Δ on [40%, 70%) plus a merge.
                let warm = q1(Interval::new(0, (n as f64 * 0.4) as i64 - 1), 8);
                s.run(&warm).expect("warmup");
            }
            let r = s.run(&target).expect("target");
            if merged_path {
                assert_eq!(
                    r.stats.reuse.unwrap().label(),
                    "partial",
                    "warmup should force the merge path"
                );
            }
            for g in &r.groups {
                let est = &g.values[0];
                let truth = exact
                    .row_by_key(&[Value::Int(g.key[0])])
                    .map(|row| row.values[0])
                    .unwrap_or(0.0);
                if truth == 0.0 {
                    continue;
                }
                rel_err_sum += (est.value - truth).abs() / truth;
                if (est.value - truth).abs() <= est.ci_half_width {
                    covered += 1;
                }
                groups_total += 1;
            }
        }
        println!(
            "{label:32} mean |rel err| = {:.4}   95% CI coverage = {:.1}% ({covered}/{groups_total})",
            rel_err_sum / groups_total as f64,
            100.0 * covered as f64 / groups_total as f64
        );
    };

    println!("query: Q1, SUM(lo_revenue) GROUP BY lo_orderdate, {trials} trials\n");
    report("fresh online sample:", false);
    report("partially reused + merged:", true);
    println!(
        "\nBoth paths should show comparable error and coverage near 95% —\n\
         merging preserves the sample's statistical properties (paper §5.1)."
    );
}
