//! Quickstart: approximate a grouped aggregation with LAQy and watch the
//! lazy sampler reuse its work across overlapping queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use laqy::{ApproxQuery, Interval, LaqySession};
use laqy_engine::{AggSpec, Catalog, ColRef, Column, Predicate, QueryPlan, Table};

fn main() {
    // 1. Build a table: one million rows, a shuffled unique key for
    //    selectivity control, seven groups, and a value column.
    let n: i64 = 1_000_000;
    let mut key: Vec<i64> = (0..n).collect();
    // Cheap deterministic shuffle.
    let mut rng = laqy_sampling::Lehmer64::new(7);
    for i in (1..n as usize).rev() {
        key.swap(i, rng.next_index(i + 1));
    }
    let mut catalog = Catalog::new();
    catalog.register(
        Table::new(
            "events",
            vec![
                ("key".into(), Column::Int64(key)),
                ("grp".into(), Column::Int64((0..n).map(|i| i % 7).collect())),
                (
                    "val".into(),
                    Column::Float64((0..n).map(|i| (i % 1000) as f64).collect()),
                ),
            ],
        )
        .expect("aligned columns"),
    );

    let mut session = LaqySession::new(catalog);
    let query = |lo: i64, hi: i64| ApproxQuery {
        plan: QueryPlan {
            fact: "events".into(),
            predicate: Predicate::True,
            joins: vec![],
            group_by: vec![ColRef::fact("grp")],
            aggs: vec![AggSpec::sum("val"), AggSpec::count()],
        },
        range_column: "key".into(),
        range: Interval::new(lo, hi),
        k: 512,
    };

    // 2. First query: cold store, full online sampling.
    let q = query(0, 399_999);
    let r1 = session.run(&q).expect("query 1");
    println!(
        "query 1 [0, 400k):    reuse = {:7}   total = {:>9.3?}   (sampled {} rows)",
        r1.stats.reuse.unwrap().label(),
        r1.stats.total,
        r1.stats.sampled_input_rows
    );

    // 3. The user zooms out: only the uncovered [400k, 600k) is sampled.
    let q = query(0, 599_999);
    let r2 = session.run(&q).expect("query 2");
    println!(
        "query 2 [0, 600k):    reuse = {:7}   total = {:>9.3?}   (sampled {} rows — the delta)",
        r2.stats.reuse.unwrap().label(),
        r2.stats.total,
        r2.stats.sampled_input_rows
    );

    // 4. The user zooms back in: fully covered, not even a scan is needed.
    let q = query(100_000, 299_999);
    let r3 = session.run(&q).expect("query 3");
    println!(
        "query 3 [100k, 300k): reuse = {:7}   total = {:>9.3?}   (no scan at all)",
        r3.stats.reuse.unwrap().label(),
        r3.stats.total
    );

    // 5. Compare the estimate against the exact answer.
    let (exact, exact_stats) = session.run_exact(&q).expect("exact");
    println!(
        "\nexact execution of query 3 took {:?}\n",
        exact_stats.total
    );
    println!("group | estimate ±95% CI        | exact        | within CI?");
    for g in &r3.groups {
        let grp = g.key[0];
        let est = &g.values[0];
        let exact_sum = exact
            .row_by_key(&[laqy_engine::Value::Int(grp)])
            .map(|r| r.values[0])
            .unwrap_or(f64::NAN);
        println!(
            "{grp:>5} | {:>12.0} ± {:>8.0} | {exact_sum:>12.0} | {}",
            est.value,
            est.ci_half_width,
            if (est.value - exact_sum).abs() <= est.ci_half_width {
                "yes"
            } else {
                "no (CI is 95%, misses happen)"
            }
        );
    }
}
