//! Exploratory analysis over SSB: replay the paper's long-running query
//! sequence (50 progressively-changing range queries, template Q1) and
//! compare LAQy's lazy sampling against workload-oblivious online sampling
//! and exact execution — the scenario behind Figures 12a/14a.
//!
//! ```text
//! cargo run --release --example exploratory_session [scale_factor]
//! ```

use laqy::{Interval, LaqySession, ReuseClass, SessionConfig};
use laqy_workload::{generate, long_running, q1, ExploreConfig, SsbConfig};

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!(
        "generating SSB data at SF {sf} (~{} fact rows)...",
        (6e6 * sf) as u64
    );
    let catalog = generate(&SsbConfig {
        scale_factor: sf,
        seed: 42,
    });
    let n = catalog.table("lineorder").unwrap().num_rows() as i64;
    let domain = Interval::new(0, n - 1);
    let sequence = long_running(&ExploreConfig::long_running(domain, 7));

    let mut lazy_session = LaqySession::with_config(catalog.clone(), SessionConfig::default());
    let mut online_session = LaqySession::with_config(catalog, SessionConfig::default());

    println!("\n#  | range sel | reuse   | LAQy       | online     | exact");
    println!("---+-----------+---------+------------+------------+-----------");
    let (mut lazy_total, mut online_total, mut exact_total) = (0.0f64, 0.0f64, 0.0f64);
    let mut reuse_counts = [0usize; 3]; // full, partial, online
    for (i, &range) in sequence.iter().enumerate() {
        let query = q1(range, 128);
        let lazy = lazy_session.run(&query).expect("lazy run");
        let online = online_session
            .run_online_oblivious(&query)
            .expect("online run");
        let (_, exact) = online_session.run_exact(&query).expect("exact run");

        lazy_total += lazy.stats.total.as_secs_f64();
        online_total += online.stats.total.as_secs_f64();
        exact_total += exact.total.as_secs_f64();
        match lazy.stats.reuse.unwrap() {
            ReuseClass::Full => reuse_counts[0] += 1,
            ReuseClass::Partial => reuse_counts[1] += 1,
            _ => reuse_counts[2] += 1,
        }
        println!(
            "{i:>2} | {:>8.4}  | {:7} | {:>9.2?} | {:>9.2?} | {:>9.2?}",
            range.width() as f64 / domain.width() as f64,
            lazy.stats.reuse.unwrap().label(),
            lazy.stats.total,
            online.stats.total,
            exact.total,
        );
    }

    println!(
        "\nreuse classes: {} full, {} partial, {} online",
        reuse_counts[0], reuse_counts[1], reuse_counts[2]
    );
    println!("cumulative: LAQy {lazy_total:.3}s | online sampling {online_total:.3}s | exact {exact_total:.3}s");
    println!(
        "LAQy speedup over online sampling: {:.1}x (paper reports 2.5x-19.3x across workloads)",
        online_total / lazy_total.max(1e-9)
    );
    println!(
        "sample store: {} samples, {:.1} MiB",
        lazy_session.store().len(),
        lazy_session.store().total_bytes() as f64 / (1024.0 * 1024.0)
    );
}
