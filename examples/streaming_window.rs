//! Streaming extension: sliding-window approximate aggregation.
//!
//! The paper's related-work discussion (§8) notes LAQy adapts to sliding
//! windows by treating time as an extra sample predicate and merging
//! per-slice samples. This example streams synthetic sensor readings into
//! a [`laqy::SlidingSampler`], answers hopping-window queries from merged
//! per-pane reservoirs, and compares against exact window answers.
//!
//! ```text
//! cargo run --release --example streaming_window
//! ```

use laqy::{SampleSchema, SampleTuple, SlidingSampler, SlotKind};
use laqy_engine::{AggSpec, GroupKey};
use laqy_sampling::Lehmer64;

fn main() {
    // 3 sensors emit readings for 100k ticks; slice = 1000 ticks.
    let sensors = 3i64;
    let ticks = 100_000u64;
    let schema = SampleSchema::new(vec![("reading".into(), SlotKind::Float)]);
    let mut sampler = SlidingSampler::new(64, 1_000, schema, 7);
    let mut rng = Lehmer64::new(11);

    // Keep the raw stream only to compute exact answers for comparison.
    let mut raw: Vec<(u64, i64, f64)> = Vec::with_capacity(ticks as usize * sensors as usize);
    for t in 0..ticks {
        for sensor in 0..sensors {
            // Sensor s reads around 10·(s+1) with noise and a slow drift.
            let reading =
                10.0 * (sensor + 1) as f64 + (t as f64 / 20_000.0) + rng.next_f64() * 2.0 - 1.0;
            sampler.ingest(
                t,
                GroupKey::new(&[sensor]),
                SampleTuple::from_slice(&[reading.to_bits() as i64]),
            );
            raw.push((t, sensor, reading));
        }
    }
    println!(
        "ingested {} readings into {} slices ({} retained tuples max/stratum/slice)",
        raw.len(),
        sampler.num_slices(),
        64
    );

    // Hopping windows: width 20k ticks, hop 10k.
    println!("\nwindow          sensor | est AVG ±95% CI  | exact AVG | err%");
    for start in (0..=ticks - 20_000).step_by(10_000) {
        let end = start + 20_000;
        let ests = sampler
            .window_estimate(start, end, &[AggSpec::avg("reading")])
            .expect("window estimate");
        for e in &ests {
            let sensor = e.key[0];
            let exact: Vec<f64> = raw
                .iter()
                .filter(|(t, s, _)| (start..end).contains(t) && *s == sensor)
                .map(|(_, _, r)| *r)
                .collect();
            let exact_avg = exact.iter().sum::<f64>() / exact.len() as f64;
            let est = &e.values[0];
            println!(
                "[{start:>6},{end:>6}) {sensor:>6} | {:>7.3} ± {:>6.3} | {exact_avg:>9.3} | {:+.2}%",
                est.value,
                est.ci_half_width,
                100.0 * (est.value - exact_avg) / exact_avg
            );
        }
    }

    // Expire panes older than 50k ticks and show memory shrink.
    let before = sampler.num_slices();
    sampler.expire_before(50_000);
    println!(
        "\nexpired panes before t=50000: {} slices -> {} slices",
        before,
        sampler.num_slices()
    );
}
