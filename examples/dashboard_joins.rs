//! Linked-dashboard scenario: the sampler sits *above* a star join
//! (template Q2 — `lineorder ⋈ date ⋈ supplier ⋈ part` with fixed
//! dimension filters), and three dashboard panels issue short bursts of
//! range queries over different focus regions — the paper's short-running
//! sequence (§7.3.2: "this could happen if there are multiple linked query
//! dashboards issuing different query patterns").
//!
//! Because the sampler is placed past the joins, a Δ sample saves not just
//! sampling work but the join work feeding it (Figures 13b/15b).
//!
//! ```text
//! cargo run --release --example dashboard_joins [scale_factor]
//! ```

use laqy::{Interval, LaqySession, SessionConfig};
use laqy_workload::{generate, q2, short_running, ExploreConfig, SsbConfig};

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("generating SSB data at SF {sf}...");
    let catalog = generate(&SsbConfig {
        scale_factor: sf,
        seed: 99,
    });
    let n = catalog.table("lineorder").unwrap().num_rows() as i64;
    let domain = Interval::new(0, n - 1);
    // 3 dashboards × 20 queries, each over its own focus region.
    let sequence = short_running(&ExploreConfig::short_batch(domain, 1234), 3);

    let mut session = LaqySession::with_config(catalog, SessionConfig::default());
    let (mut lazy_total, mut online_total) = (0.0f64, 0.0f64);
    println!("\npanel | query | reuse   | LAQy time  | online time");
    println!("------+-------+---------+------------+------------");
    for (i, &range) in sequence.iter().enumerate() {
        let query = q2(range, 64);
        let lazy = session.run(&query).expect("lazy run");
        // Run the oblivious baseline in a throwaway session so its samples
        // don't pollute the store.
        let online = session
            .run_online_oblivious(&query)
            .expect("online baseline");
        lazy_total += lazy.stats.total.as_secs_f64();
        online_total += online.stats.total.as_secs_f64();
        if i % 5 == 0 || i % 20 == 0 {
            println!(
                "{:>5} | {i:>5} | {:7} | {:>9.2?} | {:>9.2?}{}",
                i / 20 + 1,
                lazy.stats.reuse.unwrap().label(),
                lazy.stats.total,
                online.stats.total,
                if i % 20 == 0 {
                    "   <- new focus region (cold start)"
                } else {
                    ""
                }
            );
        }
    }

    println!(
        "\ncumulative: LAQy {lazy_total:.3}s vs online {online_total:.3}s  ({:.1}x)",
        online_total / lazy_total.max(1e-9)
    );

    // Show a few estimated result rows with their confidence intervals.
    let query = q2(Interval::new(0, n / 2), 64);
    let result = session.run(&query).expect("final query");
    let keys = session.decode_keys(&query, &result).expect("decode");
    println!("\nsample answer for Q2 over the first half of the key domain:");
    println!("d_year | p_brand1  | SUM(lo_revenue) ±95% CI");
    for (g, key) in result.groups.iter().zip(keys.iter()).take(8) {
        println!(
            "{:>6} | {:9} | {:>14.0} ± {:>10.0}",
            key[0], key[1], g.values[0].value, g.values[0].ci_half_width
        );
    }
    println!("... ({} groups total)", result.groups.len());
}
