//! SQL front-end: write the paper's query templates as SQL and let LAQy
//! approximate them with lazy sampling. The `BETWEEN` range predicate is
//! detected as the explored dimension; consecutive overlapping statements
//! reuse each other's samples.
//!
//! ```text
//! cargo run --release --example sql_session
//! ```

use laqy::{approx_query, LaqySession};
use laqy_workload::{generate, SsbConfig};

fn main() {
    let catalog = generate(&SsbConfig {
        scale_factor: 0.02,
        seed: 3,
    });
    let n = catalog.table("lineorder").unwrap().num_rows() as i64;
    let mut session = LaqySession::new(catalog.clone());

    // An exploration session written as SQL; ranges grow then zoom in.
    let statements = [
        format!(
            "SELECT lo_orderdate, SUM(lo_revenue), COUNT(*) FROM lineorder \
             WHERE lo_intkey BETWEEN 0 AND {} GROUP BY lo_orderdate",
            n / 4
        ),
        format!(
            "SELECT lo_orderdate, SUM(lo_revenue), COUNT(*) FROM lineorder \
             WHERE lo_intkey BETWEEN 0 AND {} GROUP BY lo_orderdate",
            n / 2
        ),
        format!(
            "SELECT lo_orderdate, SUM(lo_revenue), COUNT(*) FROM lineorder \
             WHERE lo_intkey BETWEEN {} AND {} GROUP BY lo_orderdate",
            n / 8,
            n / 3
        ),
    ];
    println!("scan-heavy exploration (sampler at the lineorder scan):\n");
    for sql in &statements {
        let query = approx_query(&catalog, sql, 64).expect("valid approximate SQL");
        let result = session.run(&query).expect("execution");
        println!(
            "  reuse = {:7}  time = {:>9.2?}  groups = {:4}   {}",
            result.stats.reuse.unwrap().label(),
            result.stats.total,
            result.groups.len(),
            &sql[..sql.find("FROM").unwrap()].trim()
        );
    }

    // The join-heavy template (paper's Q2) as SQL: the sampler sits above
    // the star join; dimension predicates filter the join build sides.
    let q2_sql = format!(
        "SELECT d_year, p_brand1, SUM(lo_revenue) \
         FROM lineorder, date, supplier, part \
         WHERE lo_intkey BETWEEN 0 AND {} \
           AND lo_orderdate = d_datekey AND lo_suppkey = s_suppkey \
           AND lo_partkey = p_partkey \
           AND s_region = 'AMERICA' AND p_category = 'MFGR#12' \
         GROUP BY d_year, p_brand1",
        2 * n / 3
    );
    println!("\njoin-heavy dashboard query (sampler above the star join):\n");
    for _ in 0..2 {
        let query = approx_query(&catalog, &q2_sql, 32).expect("valid Q2 SQL");
        let result = session.run(&query).expect("execution");
        let keys = session.decode_keys(&query, &result).expect("decode");
        println!(
            "  reuse = {:7}  time = {:>9.2?}  groups = {}",
            result.stats.reuse.unwrap().label(),
            result.stats.total,
            result.groups.len()
        );
        if let (Some(g), Some(k)) = (result.groups.first(), keys.first()) {
            println!(
                "    e.g. d_year={} p_brand1={} SUM(lo_revenue) ≈ {:.0} ± {:.0}",
                k[0], k[1], g.values[0].value, g.values[0].ci_half_width
            );
        }
    }
    println!("\nsecond run answered from the stored sample — no scan, no joins, no sampling.");
}
