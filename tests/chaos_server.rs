//! Chaos suite for the serving layer, driven by the `laqy-faults`
//! registry (`--cfg laqy_faults` builds only). Three invariants, each
//! swept over 32 seeds:
//!
//! - **No hangs under wire faults.** With `net.read` / `net.write` /
//!   `net.accept` / `net.latency` faults live on both sides of the
//!   socket, every client operation resolves — a typed response or an
//!   I/O error — and once the plan is cleared the same server answers
//!   cleanly. (The proof of "no hang" is the test returning: every
//!   client request is bounded by its I/O timeout.)
//! - **Kill-mid-drain loses nothing acked.** A persist-path fault
//!   injected into drain's snapshot may tear the snapshot, but every
//!   WAL-durable acked ingest survives recovery on a fresh server over
//!   the same data directory.
//! - **A worker panic is a typed error, not a blast radius.** A morsel
//!   panic in one tenant's query surfaces as `WorkerPanic` on that
//!   request; the other tenant — and the panicking tenant's next
//!   request — answer normally.
#![cfg(laqy_faults)]

use std::time::Duration;

use laqy_faults::{FaultKind, FaultPlan};
use laqy_server::protocol::{ErrorCode, Request, Response};
use laqy_server::{Client, Server, ServerConfig};
use laqy_sync::Mutex;
use laqy_workload::ssb::SsbConfig;

/// The fault plan is process-global: every chaos test serializes on
/// this lock so one schedule never bleeds into another test.
static CHAOS_LOCK: Mutex<()> = Mutex::named("chaos.server.lock", ());

const SEEDS: u64 = 32;
/// Bounds every request even when a fault eats the response.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

fn start(config: ServerConfig) -> Server {
    let catalog = laqy_workload::generate(&SsbConfig::tiny());
    Server::start(catalog, config).expect("server binds")
}

fn q1(tenant: &str, lo: i64, hi: i64) -> Request {
    Request::Query {
        tenant: tenant.to_string(),
        sql: laqy_workload::q1_sql(lo, hi),
        k: 64,
        timeout_ms: 0,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("laqy-chaos-server-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn wire_faults_yield_typed_outcomes_or_io_errors_never_hangs() {
    let _guard = CHAOS_LOCK.lock();
    for seed in 0..SEEDS {
        laqy_faults::clear();
        let server = start(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        });
        let addr = server.addr();

        // Rotate the faulted surface with the seed; probabilities are
        // high enough that most seeds hit at least one injection.
        let plan = match seed % 4 {
            0 => FaultPlan::new(seed).fail_prob("net.read", FaultKind::Io, 0.2),
            1 => FaultPlan::new(seed).fail_prob("net.write", FaultKind::Io, 0.2),
            2 => FaultPlan::new(seed).fail_prob("net.accept", FaultKind::Io, 0.5),
            _ => FaultPlan::new(seed).fail_prob(
                "net.latency",
                FaultKind::Latency(Duration::from_millis(10)),
                0.3,
            ),
        };
        laqy_faults::install(plan);

        let mut typed = 0u32;
        let mut io_errors = 0u32;
        let mut client = Client::connect(addr, IO_TIMEOUT).expect("connect");
        for i in 0..12 {
            let lo = (i % 6) * 500;
            match client.request(&q1("chaos", lo, lo + 499)) {
                Ok(Response::Answer(_))
                | Ok(Response::Overloaded { .. })
                | Ok(Response::Error { .. }) => typed += 1,
                Ok(other) => panic!("seed {seed}: unexpected response {other:?}"),
                Err(_) => {
                    // A faulted read/write tears the connection; the
                    // only legal client-visible shape is an I/O error.
                    io_errors += 1;
                    client = Client::connect(addr, IO_TIMEOUT).expect("reconnect");
                }
            }
        }
        assert_eq!(typed + io_errors, 12, "seed {seed}: every op resolved");

        // Cleared plan: the same server answers a fresh client cleanly.
        laqy_faults::clear();
        let mut clean = Client::connect(addr, IO_TIMEOUT).expect("post-chaos connect");
        let resp = clean
            .request(&q1("chaos", 0, 999))
            .expect("post-chaos query");
        assert!(
            matches!(resp, Response::Answer(_)),
            "seed {seed}: post-chaos query must answer: {resp:?}"
        );
        server.shutdown();
    }
    laqy_faults::clear();
}

#[test]
fn kill_mid_drain_never_loses_an_acked_ingest() {
    let _guard = CHAOS_LOCK.lock();
    const PERSIST_POINTS: [&str; 5] = [
        "persist.create",
        "persist.write_all",
        "persist.sync_file",
        "persist.rename",
        "persist.sync_dir",
    ];
    let base_rows = SsbConfig::tiny().lineorder_rows();
    for seed in 0..SEEDS {
        laqy_faults::clear();
        let dir = temp_dir(&format!("drain-{seed}"));
        let config = ServerConfig {
            threads: 2,
            data_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let server = start(config.clone());
        let mut client = Client::connect(server.addr(), IO_TIMEOUT).expect("connect");

        // Two acked batches; the ack means WAL-durable.
        let mut acked_watermark = 0u64;
        for b in 0..2usize {
            let columns =
                laqy_workload::lineorder_batch(&SsbConfig::tiny(), base_rows + b * 64, 64);
            let ack = client
                .request(&Request::Ingest {
                    tenant: "durable".to_string(),
                    table: "lineorder".to_string(),
                    columns,
                })
                .expect("ingest");
            let Response::IngestAck { watermark } = ack else {
                panic!("seed {seed}: expected ack, got {ack:?}");
            };
            acked_watermark = watermark;
        }
        assert_eq!(acked_watermark, base_rows as u64 + 128);

        // The kill lands inside drain's snapshot: sweep which persist
        // fault point dies, and how deep into the write sequence.
        let point = PERSIST_POINTS[(seed % 5) as usize];
        let nth = 1 + seed / 5 % 3;
        laqy_faults::install(FaultPlan::new(seed).fail_nth(point, FaultKind::Io, nth));
        let report = server.drain();
        assert!(report.idle, "seed {seed}: drain waited out in-flight work");
        laqy_faults::clear();
        // Whether or not the snapshot tore, drain must report a typed
        // outcome per tenant rather than panic or hang.
        assert_eq!(report.snapshots.len(), 1, "seed {seed}: {report:?}");
        server.shutdown();

        // Recovery over the same directory: the acked ingest is intact
        // (from the snapshot if it landed, else from WAL replay).
        let revived = start(config);
        let tenant = revived
            .registry()
            .get_or_create("durable")
            .expect("recovers");
        let recovered = tenant
            .service
            .catalog()
            .table("lineorder")
            .expect("table")
            .num_rows() as u64;
        assert!(
            recovered >= acked_watermark,
            "seed {seed} ({point}, nth {nth}): acked ingest lost: \
             recovered {recovered} < acked {acked_watermark}"
        );
        // And the revived tenant still answers over the wire.
        let mut client = Client::connect(revived.addr(), IO_TIMEOUT).expect("reconnect");
        let resp = client.request(&q1("durable", 0, 999)).expect("query");
        assert!(matches!(resp, Response::Answer(_)), "seed {seed}: {resp:?}");
        revived.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    laqy_faults::clear();
}

#[test]
fn morsel_panic_is_a_typed_error_scoped_to_one_request() {
    let _guard = CHAOS_LOCK.lock();
    for seed in 0..SEEDS {
        laqy_faults::clear();
        let server = start(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        });
        let mut client = Client::connect(server.addr(), IO_TIMEOUT).expect("connect");

        // Warm both tenants so the panic hits a query morsel, not
        // tenant creation.
        for tenant in ["victim", "bystander"] {
            let resp = client.request(&q1(tenant, 0, 999)).expect("warm query");
            assert!(matches!(resp, Response::Answer(_)), "seed {seed}: {resp:?}");
        }

        // The first morsel of the victim's next query panics its
        // worker (small windows may scan a single morsel, so a deeper
        // nth could miss); the seed varies which window gets hit.
        let lo = 1_000 + (seed as i64 % 4) * 1_000;
        laqy_faults::install(FaultPlan::new(seed).fail_nth("pool.morsel", FaultKind::Panic, 1));
        let resp = client
            .request(&q1("victim", lo, lo + 999))
            .expect("typed response");
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::WorkerPanic,
                    ..
                }
            ),
            "seed {seed} (window {lo}): a worker panic must surface typed: {resp:?}"
        );
        laqy_faults::clear();

        // The bystander tenant answers, and so does the victim's next
        // request — the panic was scoped to one query.
        for tenant in ["bystander", "victim"] {
            let resp = client.request(&q1(tenant, 0, 999)).expect("query");
            assert!(
                matches!(resp, Response::Answer(_)),
                "seed {seed}: {tenant} must recover: {resp:?}"
            );
        }
        server.shutdown();
    }
    laqy_faults::clear();
}
