//! Crash-safety regression suite for the snapshot persistence path,
//! driven by the `laqy-faults` registry (`--cfg laqy_faults` builds
//! only).
//!
//! The core invariant: killing a snapshot save at *every* fault point in
//! the write sequence (`create → write_all → sync_file → rename →
//! sync_dir`) must leave the previous good generation loadable. The
//! tmp-then-fsync-then-rename discipline makes each stage either
//! invisible (the target is untouched) or complete (the rename already
//! happened), so recovery never observes a half-written snapshot under
//! its real name.
#![cfg(laqy_faults)]

use std::path::PathBuf;

use laqy::{Interval, LaqyService, ReuseClass, SessionConfig};
use laqy_engine::Catalog;
use laqy_faults::{FaultKind, FaultPlan};
use laqy_sync::Mutex;
use laqy_workload::{generate, q1, SsbConfig};

/// The fault plan is process-global: every chaos test serializes on
/// this lock so one schedule never bleeds into another test.
static CHAOS_LOCK: Mutex<()> = Mutex::named("chaos.persist.lock", ());

/// Every fault point in the atomic-write sequence, in call order.
const WRITE_POINTS: &[&str] = &[
    "persist.create",
    "persist.write_all",
    "persist.sync_file",
    "persist.rename",
    "persist.sync_dir",
];

fn catalog() -> Catalog {
    generate(&SsbConfig {
        scale_factor: 0.005, // 30k fact rows
        seed: 0xC0C0,
    })
}

fn service(cat: &Catalog) -> LaqyService {
    LaqyService::with_config(
        cat.clone(),
        SessionConfig {
            threads: 1,
            seed: 0x5EED,
            ..Default::default()
        },
    )
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("laqy-chaos-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killing_save_at_every_fault_point_keeps_last_good_generation() {
    let _guard = CHAOS_LOCK.lock();
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;

    for (i, point) in WRITE_POINTS.iter().enumerate() {
        laqy_faults::clear();
        let dir = scratch_dir(&format!("kill-{i}"));
        let service = service(&cat);
        service.run(&q1(Interval::new(0, n / 2), 24)).unwrap();
        let good = service.save_snapshot(&dir).unwrap();
        let good_descriptors = service.store().len();

        // Grow the store, then kill the next save at this fault point.
        service.run(&q1(Interval::new(0, n - 1), 24)).unwrap();
        laqy_faults::install(FaultPlan::new(i as u64).fail_nth(point, FaultKind::Io, 1));
        let err = service
            .save_snapshot(&dir)
            .expect_err("the injected fault must surface as an error");
        assert!(
            err.to_string().contains("injected I/O fault"),
            "{point}: unexpected error {err}"
        );
        laqy_faults::clear();

        // Recovery must land on a complete generation, never on a torn
        // or half-renamed file. Faults up to and including the rename
        // leave the previous generation in place; a fault *after* the
        // rename (`persist.sync_dir`) means the new generation is already
        // complete on disk, and loading it is the correct outcome.
        let fresh = LaqyService::with_config(
            cat.clone(),
            SessionConfig {
                threads: 1,
                seed: 0xFEED,
                ..Default::default()
            },
        );
        let report = fresh.recover_from_dir(&dir).unwrap();
        let expected = if *point == "persist.sync_dir" {
            good + 1
        } else {
            good
        };
        assert_eq!(report.loaded, Some(expected), "fault at {point}");
        assert!(
            report.discarded.is_empty(),
            "no generation file may be corrupt after a killed save at {point}: {:?}",
            report.discarded
        );
        if expected == good {
            assert_eq!(fresh.store().len(), good_descriptors, "fault at {point}");
        }
        // No stray tmp file may linger under the snapshot name either:
        // a second recovery sees a clean directory.
        let (_, again) = laqy::recover_snapshot(&dir).unwrap();
        assert_eq!(again.tmp_removed, 0, "fault at {point}");

        // The recovered store answers: the warmed range is a full hit.
        let r = fresh.run(&q1(Interval::new(n / 8, n / 4), 24)).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Full), "fault at {point}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn repeated_injected_crashes_never_lose_the_newest_durable_generation() {
    let _guard = CHAOS_LOCK.lock();
    laqy_faults::clear();
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let dir = scratch_dir("repeat");
    let service = service(&cat);

    // Alternate good saves and killed saves; after each kill, recovery
    // must land exactly on the newest successful generation.
    let mut last_good = None;
    for (round, &point) in WRITE_POINTS.iter().enumerate() {
        service
            .run(&q1(Interval::new(0, n / 4 + (round as i64) * n / 8), 24))
            .unwrap();
        if round % 2 == 0 {
            last_good = Some(service.save_snapshot(&dir).unwrap());
        } else {
            laqy_faults::install(FaultPlan::new(round as u64).fail_nth(point, FaultKind::Io, 1));
            assert!(service.save_snapshot(&dir).is_err());
            laqy_faults::clear();
        }
        let (_, report) = laqy::recover_snapshot(&dir).unwrap();
        assert_eq!(report.loaded, last_good, "round {round}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_counter_advances_when_falling_back_past_corruption() {
    let _guard = CHAOS_LOCK.lock();
    laqy_faults::clear();
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let dir = scratch_dir("fallback");
    let service = service(&cat);
    service.run(&q1(Interval::new(0, n / 2), 24)).unwrap();
    let good = service.save_snapshot(&dir).unwrap();

    // Plant a corrupt newer generation, as if a crash landed mid-write
    // on a filesystem without atomic rename semantics.
    std::fs::write(dir.join(format!("store.snap.{}", good + 1)), b"garbage").unwrap();

    let fresh = LaqyService::with_config(
        cat.clone(),
        SessionConfig {
            threads: 1,
            seed: 0xFEED,
            ..Default::default()
        },
    );
    assert_eq!(fresh.stats().snapshots_recovered, 0);
    let report = fresh.recover_from_dir(&dir).unwrap();
    assert!(report.fell_back());
    assert_eq!(report.loaded, Some(good));
    assert_eq!(fresh.stats().snapshots_recovered, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
