//! Model-based property test for the sample store: random sequences of
//! absorb / merge-delta / classify operations are checked against a simple
//! reference model (a coverage `IntervalSet` per sample family).
//!
//! The invariants under test are the ones Algorithm 1's correctness rests
//! on:
//! - `Full` is returned iff some stored sample's coverage subsumes the
//!   query range;
//! - `Partial` implies the returned Δ equals `query − coverage` of the
//!   chosen sample and is strictly smaller than the query;
//! - `None` implies no stored same-family sample overlaps usefully;
//! - stored weights always equal the number of tuples absorbed into the
//!   family region (no tuple is ever double-counted by a merge).

use std::collections::HashSet;

use laqy::{
    Interval, IntervalSet, Predicates, ReuseDecision, SampleDescriptor, SampleId, SampleSchema,
    SampleStore, SampleTuple, SlotKind,
};
use laqy_engine::GroupKey;
use laqy_sampling::{Lehmer64, StratifiedSampler};
use proptest::prelude::*;

const K: usize = 4;

fn descriptor(set: IntervalSet) -> SampleDescriptor {
    SampleDescriptor::new(
        "t",
        vec!["g".into()],
        vec!["x".into()],
        Predicates::on("x", set),
        K,
    )
}

fn schema() -> SampleSchema {
    SampleSchema::new(vec![("x".into(), SlotKind::Int)])
}

/// Build a sample whose tuples are exactly the integers of `set` (one
/// stratum), so weights are checkable against interval measures.
fn sample_for(set: &IntervalSet, rng: &mut Lehmer64) -> StratifiedSampler<GroupKey, SampleTuple> {
    let mut s = StratifiedSampler::new(K);
    for iv in set.intervals() {
        for x in iv.lo..=iv.hi {
            s.offer(GroupKey::new(&[0]), SampleTuple::from_slice(&[x]), rng);
        }
    }
    s
}

fn interval() -> impl Strategy<Value = Interval> {
    (0i64..300, 0i64..80).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn classify_agrees_with_coverage_model(
        ops in prop::collection::vec(interval(), 1..12),
        queries in prop::collection::vec(interval(), 1..8),
    ) {
        let mut rng = Lehmer64::new(7);
        let mut store = SampleStore::new();

        // Drive the store exactly as the executor would: classify, then
        // absorb/merge according to the decision. The model tracks total
        // covered ground.
        let mut model_coverage = IntervalSet::empty();
        for iv in &ops {
            let q = IntervalSet::of(*iv);
            let desc = descriptor(q.clone());
            match store.classify(&desc) {
                ReuseDecision::Full { .. } => {
                    // Model: already covered.
                    prop_assert!(model_coverage.subsumes(&q));
                }
                ReuseDecision::Partial { id, delta, varying } => {
                    let delta_set = delta.get(&varying).cloned().unwrap_or_default();
                    prop_assert!(!delta_set.overlaps(&model_coverage) ||
                        // The chosen sample's coverage may be a subset of the
                        // union model when several families split coverage;
                        // but single-family workloads keep them equal.
                        store.len() > 1);
                    let delta_sample = sample_for(&delta_set, &mut rng);
                    store.merge_delta(id, delta_sample, &delta, &varying, 0, &mut rng);
                }
                ReuseDecision::None => {
                    let s = sample_for(&q, &mut rng);
                    store.absorb(desc, schema(), s, 0, &mut rng);
                }
            }
            model_coverage = model_coverage.union(&q);
        }

        // The union of stored coverages must equal the model's coverage.
        let mut stored_union = IntervalSet::empty();
        for (_, d) in store.descriptors() {
            stored_union = stored_union.union(d.predicates.get("x").unwrap());
        }
        prop_assert_eq!(&stored_union, &model_coverage);

        // Total stored weight equals covered ground: every integer was
        // absorbed exactly once (no double sampling from merges).
        let total_weight: u64 = store.iter_samples().map(|s| s.sample.total_weight()).sum();
        prop_assert_eq!(total_weight, model_coverage.measure());

        // Classification of arbitrary queries agrees with the model.
        for q in &queries {
            let qset = IntervalSet::of(*q);
            match store.classify(&descriptor(qset.clone())) {
                ReuseDecision::Full { id } => {
                    let stored = store.peek(id).unwrap();
                    prop_assert!(stored.descriptor.predicates.get("x").unwrap().subsumes(&qset));
                }
                ReuseDecision::Partial { id, delta, varying } => {
                    let stored_set = store
                        .peek(id)
                        .unwrap()
                        .descriptor
                        .predicates
                        .get("x")
                        .unwrap()
                        .clone();
                    let delta_set = delta.get(&varying).cloned().unwrap_or_default();
                    prop_assert_eq!(&delta_set, &qset.difference(&stored_set));
                    prop_assert!(delta_set.measure() < qset.measure());
                }
                ReuseDecision::None => {
                    // No single stored sample may subsume or usefully
                    // overlap the query.
                    for (_, d) in store.descriptors() {
                        let set = d.predicates.get("x").unwrap();
                        prop_assert!(!set.subsumes(&qset));
                        prop_assert!(!set.overlaps(&qset));
                    }
                }
            }
        }
    }
}

// Coverage-planner model: for arbitrary fragmented stores (raw-inserted,
// possibly overlapping boxes on up to two columns) and arbitrary query
// boxes, `plan_coverage` must produce a plan that exactly tiles the
// query region:
//
// - at most `cap` selected samples, with pairwise-disjoint populations;
// - residual fragments pairwise disjoint and disjoint from every
//   selected sample's population;
// - measures add up: |query| = Σ|selected ∩ query| + Σ|fragment| — the
//   plan neither double-covers nor drops any part of the query region;
// - an empty residual means the selection alone covers the query.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn coverage_plans_tile_the_query_region(
        stored in prop::collection::vec((interval(), interval(), any::<bool>()), 1..10),
        queries in prop::collection::vec((interval(), interval(), any::<bool>()), 1..8),
        cap in 1usize..6,
    ) {
        fn boxed(x: &Interval, y: &Interval, constrain_y: bool) -> Predicates {
            let p = Predicates::on("x", IntervalSet::of(*x));
            if constrain_y {
                p.with("y", IntervalSet::of(*y))
            } else {
                p
            }
        }
        fn descriptor2(preds: Predicates) -> SampleDescriptor {
            SampleDescriptor::new(
                "t",
                vec!["g".into()],
                vec!["x".into(), "y".into()],
                preds,
                K,
            )
        }

        let mut rng = Lehmer64::new(23);
        let mut store = SampleStore::new();
        for (x, y, cy) in &stored {
            let p = boxed(x, y, *cy);
            let s = sample_for(p.get("x").unwrap(), &mut rng);
            store.insert_raw(descriptor2(p), schema(), s, 0);
        }

        for (x, y, cy) in &queries {
            let qp = boxed(x, y, *cy);
            let plan = store.plan_coverage(&descriptor2(qp.clone()), cap);
            prop_assert!(plan.samples.len() <= cap);

            let selected: Vec<Predicates> = plan
                .samples
                .iter()
                .map(|id| store.peek(*id).unwrap().descriptor.predicates.clone())
                .collect();
            // Selected populations pairwise disjoint (merging two
            // overlapping samples would double-count their shared rows).
            for i in 0..selected.len() {
                for j in i + 1..selected.len() {
                    prop_assert!(selected[i].intersect(&selected[j]).is_none());
                }
            }
            // Fragments pairwise disjoint and disjoint from every
            // selected population.
            for i in 0..plan.fragments.len() {
                for j in i + 1..plan.fragments.len() {
                    prop_assert!(plan.fragments[i].intersect(&plan.fragments[j]).is_none());
                }
                for s in &selected {
                    prop_assert!(plan.fragments[i].intersect(s).is_none());
                }
                // Fragments live inside the query box.
                let inside = plan.fragments[i].intersect(&qp);
                prop_assert_eq!(
                    inside.map(|p| p.box_measure()),
                    Some(plan.fragments[i].box_measure())
                );
            }
            // Exact tiling: covered + residual measures sum to the query
            // box measure.
            let covered: u128 = selected
                .iter()
                .map(|s| s.intersect(&qp).map(|p| p.box_measure()).unwrap_or(0))
                .sum();
            let residual: u128 = plan.fragments.iter().map(|f| f.box_measure()).sum();
            prop_assert_eq!(covered + residual, qp.box_measure());
            prop_assert_eq!(plan.residual_measure(), residual);
            if plan.fragments.is_empty() {
                prop_assert_eq!(covered, qp.box_measure());
            }
        }
    }
}

// Second model: arbitrary interleavings of query-driven absorb/merge,
// raw insertion (snapshot restore), and explicit eviction, optionally
// under a byte budget with LRU eviction. The reference model tracks,
// after every single operation:
//
// - the just-written sample is never evicted by its own insertion;
// - the byte budget holds (down to a single protected sample);
// - budget evictions remove exactly the least-recently-used samples;
// - every surviving sample's total weight equals its coverage measure
//   (no interleaving of merges and evictions double-counts or loses a
//   tuple);
// - nothing is ever stored that was not requested.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn interleavings_with_eviction_preserve_model(
        ops in prop::collection::vec((0u8..4, 0i64..300, 0i64..80, 0u64..8), 1..20),
        budgeted in any::<bool>(),
    ) {
        let mut rng = Lehmer64::new(11);
        // Roughly three full reservoirs fit: eviction pressure is real but
        // not degenerate.
        let budget =
            sample_for(&IntervalSet::of(Interval::new(0, 299)), &mut Lehmer64::new(1))
                .heap_bytes()
                * 3;
        let mut store = if budgeted {
            SampleStore::with_budget(budget)
        } else {
            SampleStore::new()
        };
        let mut requested = IntervalSet::empty();
        // Front = most recently used; mirrors the store's LRU stamps.
        let mut mru: Vec<SampleId> = Vec::new();

        for (kind, lo, w, pick) in &ops {
            let q = IntervalSet::of(Interval::new(*lo, lo + w));
            let evictions_before = store.evictions();
            // The sample this op writes or touches; protected from the
            // op's own budget enforcement.
            let mut subject: Option<SampleId> = None;
            match kind {
                // Query-driven, exactly as the executor behaves: classify,
                // then reuse / Δ-merge / absorb per the decision.
                0 | 1 => {
                    requested = requested.union(&q);
                    match store.classify(&descriptor(q.clone())) {
                        ReuseDecision::Full { id } => {
                            store.get(id); // full reuse touches the LRU stamp
                            subject = Some(id);
                        }
                        ReuseDecision::Partial { id, delta, varying } => {
                            let dset = delta.get(&varying).cloned().unwrap_or_default();
                            let dsample = sample_for(&dset, &mut rng);
                            prop_assert!(store.merge_delta(id, dsample, &delta, &varying, 0, &mut rng));
                            subject = Some(id);
                        }
                        ReuseDecision::None => {
                            let s = sample_for(&q, &mut rng);
                            subject = Some(store.absorb(descriptor(q.clone()), schema(), s, 0, &mut rng));
                        }
                    }
                }
                // Raw insertion (snapshot restore): bypasses merge/replace,
                // may duplicate coverage across samples.
                2 => {
                    requested = requested.union(&q);
                    let s = sample_for(&q, &mut rng);
                    subject = Some(store.insert_raw(descriptor(q.clone()), schema(), s, 0));
                }
                // Explicit eviction of an arbitrary stored sample.
                _ => {
                    if !mru.is_empty() {
                        let victim = mru[(*pick as usize) % mru.len()];
                        prop_assert!(store.remove(victim));
                        prop_assert!(store.peek(victim).is_none());
                        mru.retain(|i| *i != victim);
                    }
                }
            }
            if let Some(id) = subject {
                mru.retain(|i| *i != id);
                mru.insert(0, id);
                // Protected from its own insertion's budget enforcement.
                prop_assert!(store.peek(id).is_some());
            }

            if budgeted {
                prop_assert!(
                    store.total_bytes() <= budget || store.len() <= 1,
                    "budget violated: {} bytes across {} samples",
                    store.total_bytes(),
                    store.len()
                );
            } else {
                prop_assert_eq!(store.evictions(), 0);
            }

            // Budget evictions must take exactly the least-recently-used
            // samples (never the subject).
            let alive: HashSet<SampleId> = store.descriptors().map(|(i, _)| i).collect();
            let gone: Vec<SampleId> =
                mru.iter().copied().filter(|i| !alive.contains(i)).collect();
            prop_assert_eq!(gone.len() as u64, store.evictions() - evictions_before);
            let mut expected: Vec<SampleId> = mru
                .iter()
                .rev()
                .copied()
                .filter(|i| Some(*i) != subject)
                .take(gone.len())
                .collect();
            expected.sort();
            let mut gone_sorted = gone;
            gone_sorted.sort();
            prop_assert_eq!(gone_sorted, expected);
            mru.retain(|i| alive.contains(i));

            // Weight conservation per sample, under any interleaving.
            for s in store.iter_samples() {
                let cover = s.descriptor.predicates.get("x").unwrap();
                prop_assert_eq!(s.sample.total_weight(), cover.measure());
            }
            // Nothing stored that was never requested.
            let mut union = IntervalSet::empty();
            for (_, d) in store.descriptors() {
                union = union.union(d.predicates.get("x").unwrap());
            }
            prop_assert!(requested.subsumes(&union));
        }

        // Surviving coverage still classifies consistently.
        for (_, lo, w, _) in &ops {
            let qset = IntervalSet::of(Interval::new(*lo, lo + w));
            match store.classify(&descriptor(qset.clone())) {
                ReuseDecision::Full { id } => {
                    let stored = store.peek(id).unwrap();
                    prop_assert!(stored.descriptor.predicates.get("x").unwrap().subsumes(&qset));
                }
                ReuseDecision::Partial { id, delta, varying } => {
                    let stored_set = store
                        .peek(id)
                        .unwrap()
                        .descriptor
                        .predicates
                        .get("x")
                        .unwrap()
                        .clone();
                    let delta_set = delta.get(&varying).cloned().unwrap_or_default();
                    prop_assert_eq!(&delta_set, &qset.difference(&stored_set));
                    prop_assert!(delta_set.measure() < qset.measure());
                }
                ReuseDecision::None => {
                    for (_, d) in store.descriptors() {
                        let set = d.predicates.get("x").unwrap();
                        prop_assert!(!set.subsumes(&qset));
                    }
                }
            }
        }
    }
}
