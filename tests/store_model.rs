//! Model-based property test for the sample store: random sequences of
//! absorb / merge-delta / classify operations are checked against a simple
//! reference model (a coverage `IntervalSet` per sample family).
//!
//! The invariants under test are the ones Algorithm 1's correctness rests
//! on:
//! - `Full` is returned iff some stored sample's coverage subsumes the
//!   query range;
//! - `Partial` implies the returned Δ equals `query − coverage` of the
//!   chosen sample and is strictly smaller than the query;
//! - `None` implies no stored same-family sample overlaps usefully;
//! - stored weights always equal the number of tuples absorbed into the
//!   family region (no tuple is ever double-counted by a merge).

use laqy::{
    Interval, IntervalSet, Predicates, ReuseDecision, SampleDescriptor, SampleSchema,
    SampleStore, SampleTuple, SlotKind,
};
use laqy_engine::GroupKey;
use laqy_sampling::{Lehmer64, StratifiedSampler};
use proptest::prelude::*;

const K: usize = 4;

fn descriptor(set: IntervalSet) -> SampleDescriptor {
    SampleDescriptor::new(
        "t",
        vec!["g".into()],
        vec!["x".into()],
        Predicates::on("x", set),
        K,
    )
}

fn schema() -> SampleSchema {
    SampleSchema::new(vec![("x".into(), SlotKind::Int)])
}

/// Build a sample whose tuples are exactly the integers of `set` (one
/// stratum), so weights are checkable against interval measures.
fn sample_for(set: &IntervalSet, rng: &mut Lehmer64) -> StratifiedSampler<GroupKey, SampleTuple> {
    let mut s = StratifiedSampler::new(K);
    for iv in set.intervals() {
        for x in iv.lo..=iv.hi {
            s.offer(GroupKey::new(&[0]), SampleTuple::from_slice(&[x]), rng);
        }
    }
    s
}

fn interval() -> impl Strategy<Value = Interval> {
    (0i64..300, 0i64..80).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn classify_agrees_with_coverage_model(
        ops in prop::collection::vec(interval(), 1..12),
        queries in prop::collection::vec(interval(), 1..8),
    ) {
        let mut rng = Lehmer64::new(7);
        let mut store = SampleStore::new();

        // Drive the store exactly as the executor would: classify, then
        // absorb/merge according to the decision. The model tracks total
        // covered ground.
        let mut model_coverage = IntervalSet::empty();
        for iv in &ops {
            let q = IntervalSet::of(*iv);
            let desc = descriptor(q.clone());
            match store.classify(&desc) {
                ReuseDecision::Full { .. } => {
                    // Model: already covered.
                    prop_assert!(model_coverage.subsumes(&q));
                }
                ReuseDecision::Partial { id, delta, varying } => {
                    let delta_set = delta.get(&varying).cloned().unwrap_or_default();
                    prop_assert!(!delta_set.overlaps(&model_coverage) ||
                        // The chosen sample's coverage may be a subset of the
                        // union model when several families split coverage;
                        // but single-family workloads keep them equal.
                        store.len() > 1);
                    let delta_sample = sample_for(&delta_set, &mut rng);
                    store.merge_delta(id, delta_sample, &delta, &varying, &mut rng);
                }
                ReuseDecision::None => {
                    let s = sample_for(&q, &mut rng);
                    store.absorb(desc, schema(), s, &mut rng);
                }
            }
            model_coverage = model_coverage.union(&q);
        }

        // The union of stored coverages must equal the model's coverage.
        let mut stored_union = IntervalSet::empty();
        for (_, d) in store.descriptors() {
            stored_union = stored_union.union(d.predicates.get("x").unwrap());
        }
        prop_assert_eq!(&stored_union, &model_coverage);

        // Total stored weight equals covered ground: every integer was
        // absorbed exactly once (no double sampling from merges).
        let total_weight: u64 = store.iter_samples().map(|s| s.sample.total_weight()).sum();
        prop_assert_eq!(total_weight, model_coverage.measure());

        // Classification of arbitrary queries agrees with the model.
        for q in &queries {
            let qset = IntervalSet::of(*q);
            match store.classify(&descriptor(qset.clone())) {
                ReuseDecision::Full { id } => {
                    let stored = store.peek(id).unwrap();
                    prop_assert!(stored.descriptor.predicates.get("x").unwrap().subsumes(&qset));
                }
                ReuseDecision::Partial { id, delta, varying } => {
                    let stored_set = store
                        .peek(id)
                        .unwrap()
                        .descriptor
                        .predicates
                        .get("x")
                        .unwrap()
                        .clone();
                    let delta_set = delta.get(&varying).cloned().unwrap_or_default();
                    prop_assert_eq!(&delta_set, &qset.difference(&stored_set));
                    prop_assert!(delta_set.measure() < qset.measure());
                }
                ReuseDecision::None => {
                    // No single stored sample may subsume or usefully
                    // overlap the query.
                    for (_, d) in store.descriptors() {
                        let set = d.predicates.get("x").unwrap();
                        prop_assert!(!set.subsumes(&qset));
                        prop_assert!(!set.overlaps(&qset));
                    }
                }
            }
        }
    }
}
