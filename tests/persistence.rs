//! Persistence integration: sample stores survive a session restart and
//! keep answering with full/partial reuse — online samples become offline
//! samples.

use laqy::{Interval, LaqySession, ReuseClass, SessionConfig};
use laqy_engine::Catalog;
use laqy_workload::{generate, q1, q2, SsbConfig};

fn catalog() -> Catalog {
    generate(&SsbConfig {
        scale_factor: 0.003,
        seed: 0x9E,
    })
}

fn session(cat: &Catalog, seed: u64) -> LaqySession {
    LaqySession::with_config(
        cat.clone(),
        SessionConfig {
            threads: 1,
            seed,
            ..Default::default()
        },
    )
}

#[test]
fn snapshot_roundtrip_preserves_reuse_behaviour() {
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;

    // Session 1: build coverage of [0, n/2) for both Q1 and Q2 shapes.
    let mut s1 = session(&cat, 1);
    s1.run(&q1(Interval::new(0, n / 2), 32)).unwrap();
    s1.run(&q2(Interval::new(0, n / 2), 32)).unwrap();
    let snapshot = s1.export_samples();
    assert_eq!(s1.store().len(), 2);

    // Session 2 ("restart"): import and verify all three reuse classes.
    let mut s2 = session(&cat, 2);
    s2.import_samples(&snapshot).unwrap();
    assert_eq!(s2.store().len(), 2);

    let r = s2.run(&q1(Interval::new(0, n / 4), 32)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
    let r = s2.run(&q1(Interval::new(0, 3 * n / 4), 32)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Partial));
    let r = s2.run(&q2(Interval::new(n / 8, n / 3), 32)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
}

#[test]
fn snapshot_estimates_match_pre_restart_estimates() {
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let query = q1(Interval::new(0, n / 2), 64);

    let mut s1 = session(&cat, 3);
    s1.run(&query).unwrap();
    // Full-reuse answers are deterministic functions of the stored sample.
    let before = s1.run(&query).unwrap();
    let snapshot = s1.export_samples();

    let mut s2 = session(&cat, 999); // different executor seed: no resampling happens
    s2.import_samples(&snapshot).unwrap();
    let after = s2.run(&query).unwrap();
    assert_eq!(after.stats.reuse, Some(ReuseClass::Full));
    assert_eq!(
        before.groups, after.groups,
        "estimates must survive restart"
    );
}

#[test]
fn corrupt_snapshot_is_rejected_not_panicking() {
    let cat = catalog();
    let mut s = session(&cat, 4);
    let mut snapshot = s.export_samples();
    snapshot[0] ^= 0xFF;
    assert!(s.import_samples(&snapshot).is_err());
    // The session keeps working after a failed import.
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    assert!(s.run(&q1(Interval::new(0, n / 2), 16)).is_ok());
}
