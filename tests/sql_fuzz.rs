//! SQL front-end robustness: arbitrary input must never panic, and
//! generated-valid statements must round-trip through plan + execution
//! with results matching directly-constructed plans.

use laqy_engine::sql::{parse, plan, tokenize};
use laqy_engine::{execute_exact, AggSpec, Catalog, ColRef, Column, Predicate, QueryPlan};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register(
        laqy_engine::Table::new(
            "f",
            vec![
                ("id".into(), Column::Int64((0..500).collect())),
                ("g".into(), Column::Int64((0..500).map(|i| i % 6).collect())),
                ("v".into(), Column::Int64((0..500).map(|i| i * 3).collect())),
            ],
        )
        .unwrap(),
    );
    cat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn tokenizer_never_panics(input in ".*") {
        let _ = tokenize(&input);
    }

    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_sqlish_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "GROUP", "BY", "AND", "BETWEEN", "IN",
                "SUM", "COUNT", "(", ")", ",", "*", "=", "<", ">=", "t", "a", "b",
                "'x'", "42", "-7", "3.5", ".",
            ]),
            0..24,
        )
    ) {
        let input = words.join(" ");
        let _ = parse(&input);
        let _ = plan(&catalog(), &input);
    }

    #[test]
    fn planner_never_panics_on_valid_parse_invalid_schema(
        tbl in "[a-z]{1,6}",
        col in "[a-z]{1,6}",
    ) {
        let sql = format!("SELECT SUM({col}) FROM {tbl} WHERE {col} BETWEEN 0 AND 9");
        let _ = plan(&catalog(), &sql);
    }

    #[test]
    fn generated_valid_queries_roundtrip(
        lo in 0i64..400,
        w in 0i64..200,
        use_group in any::<bool>(),
    ) {
        let cat = catalog();
        let hi = lo + w;
        let sql = if use_group {
            format!("SELECT g, SUM(v), COUNT(*) FROM f WHERE id BETWEEN {lo} AND {hi} GROUP BY g")
        } else {
            format!("SELECT SUM(v), COUNT(*) FROM f WHERE id BETWEEN {lo} AND {hi}")
        };
        let planned = plan(&cat, &sql).unwrap();
        let direct = QueryPlan {
            fact: "f".into(),
            predicate: Predicate::between("id", lo, hi),
            joins: vec![],
            group_by: if use_group { vec![ColRef::fact("g")] } else { vec![] },
            aggs: vec![AggSpec::sum("v"), AggSpec::count()],
        };
        let a = execute_exact(&cat, &planned, 1).unwrap();
        let b = execute_exact(&cat, &direct, 1).unwrap();
        prop_assert_eq!(a, b);
    }
}
