//! Seeded chaos suite for the concurrent shared-store service
//! (`--cfg laqy_faults` builds only).
//!
//! Sweeps ≥32 deterministic fault seeds over the 8-thread stress
//! workload, injecting worker panics, I/O-shaped morsel failures, and
//! artificial morsel latency. The invariant under every schedule: each
//! query returns a valid estimate, a degraded answer with a widened CI,
//! or a *typed* `LaqyError` — never a hang, an escaped panic, or a
//! corrupted store. Schedules are replayable: whether trigger `n` of a
//! point fires is a pure function of `(seed, point, n)`, so a failure at
//! seed 17 reproduces at seed 17.

#![cfg(laqy_faults)]

use std::sync::Barrier;
use std::time::Duration;

use laqy::{Interval, LaqyError, LaqyService, QueryBudget, SessionConfig};
use laqy_engine::Catalog;
use laqy_faults::{FaultKind, FaultPlan};
use laqy_sync::Mutex;
use laqy_workload::{generate, q1, SsbConfig};

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 4;
const SEEDS: u64 = 32;

/// The fault plan is process-global: every chaos test serializes on
/// this lock so one schedule never bleeds into another test.
static CHAOS_LOCK: Mutex<()> = Mutex::named("chaos.service.lock", ());

fn catalog() -> Catalog {
    generate(&SsbConfig {
        scale_factor: 0.005, // 30k fact rows
        seed: 0xC0C0,
    })
}

fn service(cat: &Catalog, seed: u64) -> LaqyService {
    LaqyService::with_config(
        cat.clone(),
        SessionConfig {
            seed,
            ..Default::default() // thread count from LAQY_THREADS / cores
        },
    )
}

/// Deterministic, heavily overlapping range for client `t`, query `j`
/// (same shape as the tier-1 stress suite, so chaos replays that
/// workload under fault schedules).
fn range_for(n: i64, t: usize, j: usize) -> Interval {
    let lo = ((t * 3 + j * 5) % 8) as i64 * n / 10;
    let hi = (lo + n / 4 + ((t + j) % 3) as i64 * n / 10).min(n - 1);
    Interval::new(lo, hi)
}

#[test]
fn fault_seed_sweep_yields_answers_or_typed_errors() {
    let _guard = CHAOS_LOCK.lock();
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;

    for seed in 0..SEEDS {
        laqy_faults::install(
            FaultPlan::new(seed)
                .fail_prob("pool.morsel", FaultKind::Panic, 0.02)
                .fail_prob("pool.morsel", FaultKind::Io, 0.02)
                .fail_prob(
                    "pool.morsel",
                    FaultKind::Latency(Duration::from_micros(200)),
                    0.05,
                ),
        );
        let service = service(&cat, 0x5EED ^ seed);
        let barrier = Barrier::new(THREADS);
        let outcomes: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let service = service.clone();
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        (0..QUERIES_PER_THREAD)
                            .map(|j| service.run(&q1(range_for(n, t, j), 24)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        let (mut answers, mut typed_errors) = (0u64, 0u64);
        for thread_outcome in outcomes {
            // A `join` Err means a panic escaped the per-morsel isolation
            // into a client thread — exactly what must never happen.
            let results = thread_outcome
                .unwrap_or_else(|_| panic!("seed {seed}: worker panic escaped isolation"));
            for r in results {
                match r {
                    Ok(result) => {
                        answers += 1;
                        for g in &result.groups {
                            for v in &g.values {
                                assert!(
                                    v.value.is_finite(),
                                    "seed {seed}: non-finite estimate {v:?}"
                                );
                            }
                        }
                    }
                    Err(LaqyError::Injected(_)) | Err(LaqyError::WorkerPanic(_)) => {
                        typed_errors += 1
                    }
                    Err(other) => panic!("seed {seed}: unexpected error class: {other}"),
                }
            }
        }
        assert_eq!(
            answers + typed_errors,
            (THREADS * QUERIES_PER_THREAD) as u64,
            "seed {seed}: every query must answer or fail typed"
        );
        let stats = service.stats();
        assert_eq!(stats.queries, (THREADS * QUERIES_PER_THREAD) as u64);
        assert_eq!(
            stats.faults_injected, typed_errors,
            "seed {seed}: the service counter tracks fault-failed queries"
        );

        // The store must stay usable after the storm: with faults off,
        // a clean query over the full range answers from it.
        laqy_faults::clear();
        let r = service
            .run(&q1(Interval::new(0, n - 1), 24))
            .expect("post-chaos query");
        assert!(r
            .groups
            .iter()
            .all(|g| g.values.iter().all(|v| v.value.is_finite())));
    }
    laqy_faults::clear();
}

#[test]
fn latency_injection_keeps_online_scans_exactly_once() {
    let _guard = CHAOS_LOCK.lock();
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;

    // Stretch every morsel by 20ms: the in-flight owner's scan stays
    // open long enough that all other clients must hit the dedup path.
    laqy_faults::install(FaultPlan::new(7).fail_every(
        "pool.morsel",
        FaultKind::Latency(Duration::from_millis(20)),
        1,
    ));
    let service = service(&cat, 0xDE_D00);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let service = service.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    service.run(&q1(Interval::new(0, n / 2), 24)).unwrap()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    laqy_faults::clear();

    let stats = service.stats();
    assert_eq!(stats.queries, THREADS as u64);
    // Exactly-once Δ/online accounting: one client scanned, everyone
    // else answered by full reuse — either by piggybacking on the
    // in-flight scan or by planning against the absorbed sample.
    assert_eq!(stats.online_scans, 1);
    assert_eq!(stats.full_hits, (THREADS - 1) as u64);
    assert!(stats.online_deduped <= (THREADS - 1) as u64);
}

#[test]
fn deadline_under_latency_injection_degrades_instead_of_hanging() {
    let _guard = CHAOS_LOCK.lock();
    // A multi-morsel synthetic table (the SSB sf=0.005 fact fits in one
    // morsel, which a deadline can never split), scanned serially so the
    // second morsel's admission happens after the first's injected sleep.
    let n: i64 = 200_000;
    let mut cat = Catalog::new();
    cat.register(
        laqy_engine::Table::new(
            "t",
            vec![
                ("key".into(), laqy_engine::Column::Int64((0..n).collect())),
                (
                    "g".into(),
                    laqy_engine::Column::Int64((0..n).map(|i| i % 4).collect()),
                ),
                (
                    "v".into(),
                    laqy_engine::Column::Int64((0..n).map(|i| i % 100).collect()),
                ),
            ],
        )
        .unwrap(),
    );
    let query = laqy::ApproxQuery {
        plan: laqy_engine::QueryPlan {
            fact: "t".into(),
            predicate: laqy_engine::Predicate::True,
            joins: vec![],
            group_by: vec![laqy_engine::ColRef::fact("g")],
            aggs: vec![
                laqy_engine::AggSpec::sum("v"),
                laqy_engine::AggSpec::count(),
            ],
        },
        range_column: "key".into(),
        range: Interval::new(0, n - 1),
        k: 64,
    };

    // Every morsel sleeps far past the deadline: the first admission
    // after expiry must finalize a degraded answer, not keep scanning.
    laqy_faults::install(FaultPlan::new(3).fail_every(
        "pool.morsel",
        FaultKind::Latency(Duration::from_millis(30)),
        1,
    ));
    let service = LaqyService::with_config(
        cat,
        SessionConfig {
            threads: 1,
            seed: 0xBEEF,
            ..Default::default()
        },
    );
    let result = service
        .run_with_budget(
            &query,
            QueryBudget::with_deadline(Duration::from_millis(10)),
        )
        .expect("degraded answer, not an error");
    laqy_faults::clear();

    let deg = result
        .stats
        .degraded
        .expect("the injected latency must trip the deadline");
    assert!(deg.coverage < 1.0);
    assert!(deg.ci_inflation > 1.0);
    assert_eq!(service.stats().degraded_answers, 1);
    // A degraded sample never enters the shared store.
    assert!(service.store().is_empty());
}
