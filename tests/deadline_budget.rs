//! Deadline- and row-budget-bounded degraded answers (normal build).
//!
//! The contract: a budgeted query returns *something* — a full-fidelity
//! estimate when the budget suffices, otherwise a degraded answer
//! finalized from the partial reservoir with extrapolated extensive
//! aggregates and widened confidence intervals — and a degraded sample
//! never pollutes the shared store's coverage metadata.

use std::time::{Duration, Instant};

use laqy::{
    ApproxQuery, DegradeReason, Interval, LaqyService, QueryBudget, ReuseClass, SessionConfig,
};
use laqy_engine::{AggSpec, Catalog, ColRef, Column, Predicate, QueryPlan, Table, Value};

/// Rows chosen to span several 64Ki-row morsels, so budgets can split a
/// scan mid-flight.
const N: i64 = 200_000;

fn catalog(n: i64) -> Catalog {
    let mut cat = Catalog::new();
    cat.register(
        Table::new(
            "t",
            vec![
                ("key".into(), Column::Int64((0..n).collect())),
                ("g".into(), Column::Int64((0..n).map(|i| i % 4).collect())),
                ("v".into(), Column::Int64((0..n).map(|i| i % 100).collect())),
            ],
        )
        .unwrap(),
    );
    cat
}

fn query(lo: i64, hi: i64) -> ApproxQuery {
    ApproxQuery {
        plan: QueryPlan {
            fact: "t".into(),
            predicate: Predicate::True,
            joins: vec![],
            group_by: vec![ColRef::fact("g")],
            aggs: vec![AggSpec::sum("v"), AggSpec::count()],
        },
        range_column: "key".into(),
        range: Interval::new(lo, hi),
        k: 64,
    }
}

fn service(n: i64) -> LaqyService {
    LaqyService::with_config(
        catalog(n),
        SessionConfig {
            threads: 1,
            seed: 0xB0D9E7,
            ..Default::default()
        },
    )
}

#[test]
fn row_cap_degrades_and_extrapolates_within_widened_ci() {
    let service = service(N);
    let q = query(0, N - 1);
    let (exact, _) = service.run_exact(&q).unwrap();

    // Cap below the table size: the scan stops after ~2 morsels.
    let result = service
        .run_with_budget(&q, QueryBudget::with_row_cap(70_000))
        .unwrap();
    let deg = result.stats.degraded.expect("row cap must trip");
    assert_eq!(deg.reason, DegradeReason::RowBudgetExhausted);
    assert!(deg.coverage > 0.0 && deg.coverage < 1.0);
    assert!(deg.ci_inflation > 1.0);

    // Extensive aggregates are extrapolated to the full region; the
    // widened CI must still cover the exact answer generously (the key
    // column is a shuffled-exchangeable identity here, so the scanned
    // prefix is representative).
    for g in &result.groups {
        let est = &g.values[0];
        if est.support == 0 || !est.ci_half_width.is_finite() || est.ci_half_width <= 0.0 {
            continue;
        }
        let truth = exact.row_by_key(&[Value::Int(g.key[0])]).unwrap();
        let err = (est.value - truth.values[0]).abs();
        assert!(
            err <= 6.0 * est.ci_half_width,
            "group {:?}: extrapolated estimate off by {err}, widened CI {}",
            g.key,
            est.ci_half_width
        );
    }

    // The partial sample never enters the store, and the service counted
    // the degraded answer.
    assert!(service.store().is_empty());
    assert_eq!(service.stats().degraded_answers, 1);

    // The same query unbudgeted absorbs as usual.
    let full = service.run(&q).unwrap();
    assert!(full.stats.degraded.is_none());
    assert_eq!(service.store().len(), 1);
    assert_eq!(service.stats().degraded_answers, 1);
}

#[test]
fn coverage_reuse_under_budget_degrades_without_polluting_the_store() {
    let service = service(N);
    // Warm the first half: one stored sample.
    service.run(&query(0, N / 2 - 1)).unwrap();
    assert_eq!(service.store().len(), 1);

    // Full-range query under a row cap: partial reuse of the stored
    // half plus a budget-cut Δ-scan of the rest.
    let result = service
        .run_with_budget(&query(0, N - 1), QueryBudget::with_row_cap(70_000))
        .unwrap();
    assert_eq!(result.stats.reuse, Some(ReuseClass::Partial));
    let deg = result.stats.degraded.expect("the Δ-scan must degrade");
    // Blended coverage: the reused half at full fidelity, the Δ half
    // partial — strictly between the Δ-only and full coverage.
    assert!(deg.coverage > 0.4 && deg.coverage < 1.0);

    // No consolidation, no new fragment sample: the store still holds
    // exactly the warm first-half sample.
    let store = service.store();
    assert_eq!(store.len(), 1);
    let (_, d) = store.descriptors().next().unwrap();
    assert_eq!(
        d.predicates.get("key").unwrap(),
        &laqy::IntervalSet::of(Interval::new(0, N / 2 - 1))
    );
    drop(store);
    assert_eq!(service.stats().degraded_answers, 1);
}

#[test]
fn unbounded_budget_is_the_plain_path() {
    let service = service(N);
    let result = service
        .run_with_budget(&query(0, N - 1), QueryBudget::unbounded())
        .unwrap();
    assert!(result.stats.degraded.is_none());
    assert_eq!(service.stats().degraded_answers, 0);
    assert_eq!(service.store().len(), 1);
}

#[test]
fn deadline_answers_within_twice_the_budget() {
    // Grow the table until the unbudgeted scan is slow enough that an
    // eighth of it is a meaningful deadline on this machine. Deadline
    // checks are cooperative — once per morsel at admission — so the
    // overshoot past expiry is bounded by one morsel's scan time; the 2×
    // bound below therefore also needs enough morsels (≥12) that a
    // single morsel fits comfortably inside a t_full/8 budget.
    let mut n: i64 = N;
    loop {
        let service = service(n);
        let q = query(0, n - 1);
        let t0 = Instant::now();
        let full = service.run_online_oblivious(&q).unwrap();
        let t_full = t0.elapsed();
        assert!(full.stats.degraded.is_none());
        if (t_full < Duration::from_millis(40) || n < (12 << 16)) && n < (1 << 23) {
            n *= 2;
            continue;
        }

        let budget = t_full / 8 + Duration::from_millis(3);
        let t1 = Instant::now();
        let degraded = service
            .run_with_budget(&q, QueryBudget::with_deadline(budget))
            .unwrap();
        let t_deg = t1.elapsed();

        let deg = degraded
            .stats
            .degraded
            .expect("an eighth of the full scan time must trip the deadline");
        assert_eq!(deg.reason, DegradeReason::DeadlineExceeded);
        assert!(deg.coverage < 1.0);
        // The degraded answer lands within 2× the budget (the overshoot
        // is bounded by one morsel past expiry plus finalization)...
        assert!(
            t_deg <= budget * 2,
            "degraded run took {t_deg:?} against a {budget:?} budget"
        );
        // ...while the unbudgeted scan takes at least 5× the budget, so
        // the deadline is doing real work, not slack.
        assert!(
            t_full >= budget * 5,
            "unbudgeted run {t_full:?} is not ≥5× the {budget:?} budget"
        );
        break;
    }
}
