//! Stress tests for the concurrent shared-store [`LaqyService`].
//!
//! Many client threads hammer one service with overlapping exploratory
//! ranges, then the shared store is checked for the invariants the
//! concurrency design must preserve:
//!
//! - no duplicate sample descriptors (competing absorbs/merges must not
//!   materialize the same coverage twice);
//! - the byte budget is respected under concurrent insertion;
//! - every estimate stays within its CLT error bound of the exact answer
//!   (a wrong merge or a double-counted Δ would blow the bound);
//! - final store coverage matches a single-threaded oracle replay of the
//!   same query multiset;
//! - two clients concurrently missing on the same uncovered interval
//!   perform the Δ-sampling scan exactly once (the in-flight dedup).

use std::collections::{HashMap, HashSet};
use std::sync::Barrier;
use std::time::Duration;

use laqy::{
    save_store, ApproxResult, Interval, IntervalSet, LaqyService, LaqySession, ReuseClass,
    SampleStore, SessionConfig,
};
use laqy_engine::{Catalog, QueryResult, Value};
use laqy_workload::{generate, q1, SsbConfig};

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 10;

fn catalog() -> Catalog {
    generate(&SsbConfig {
        scale_factor: 0.005, // 30k fact rows
        seed: 0xC0C0,
    })
}

fn config(budget: Option<usize>) -> SessionConfig {
    SessionConfig {
        threads: 1, // client threads are the parallelism under test
        seed: 0x5EED,
        store_budget_bytes: budget,
        ..Default::default()
    }
}

/// Deterministic, heavily overlapping range for client `t`, query `j`.
fn range_for(n: i64, t: usize, j: usize) -> Interval {
    let lo = ((t * 3 + j * 5) % 8) as i64 * n / 10;
    let hi = (lo + n / 4 + ((t + j) % 3) as i64 * n / 10).min(n - 1);
    Interval::new(lo, hi)
}

/// Every estimate must sit within a generous multiple of its 95% CI of
/// the exact value. 6σ-ish: over thousands of checks a correct estimator
/// never trips this, while double-counted merge tuples do.
fn assert_within_clt_bound(range: Interval, result: &ApproxResult, exact: &QueryResult) {
    for g in &result.groups {
        let est = &g.values[0];
        if est.support == 0 || !est.ci_half_width.is_finite() || est.ci_half_width <= 0.0 {
            continue;
        }
        let Some(truth) = exact.row_by_key(&[Value::Int(g.key[0])]) else {
            continue;
        };
        let err = (est.value - truth.values[0]).abs();
        assert!(
            err <= 6.0 * est.ci_half_width + 1e-6,
            "estimate for group {:?} on range {range:?} off by {err}, \
             CI half-width {} (reuse {:?})",
            g.key,
            est.ci_half_width,
            result.stats.reuse,
        );
    }
}

/// Run the standard overlapping workload from `THREADS` clients against
/// one service; returns every (range, result) pair.
fn hammer(service: &LaqyService, n: i64, k: usize) -> Vec<(Interval, ApproxResult)> {
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let service = service.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    (0..QUERIES_PER_THREAD)
                        .map(|j| {
                            let range = range_for(n, t, j);
                            let result = service.run(&q1(range, k)).expect("query");
                            (range, result)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    })
}

/// Union of stored `lo_intkey` coverage across all samples in the store.
fn stored_coverage(service: &LaqyService) -> IntervalSet {
    let store = service.store();
    let mut union = IntervalSet::empty();
    for (_, d) in store.descriptors() {
        union = union.union(d.predicates.get("lo_intkey").expect("q1 range column"));
    }
    union
}

#[test]
fn stress_overlapping_clients_preserve_store_invariants() {
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let service = LaqyService::with_config(cat.clone(), config(None));
    let k = 24;

    let outcomes = hammer(&service, n, k);
    assert_eq!(outcomes.len(), THREADS * QUERIES_PER_THREAD);
    let stats = service.stats();
    assert_eq!(stats.queries, (THREADS * QUERIES_PER_THREAD) as u64);

    // Exact oracle per distinct range.
    let mut exact: HashMap<(i64, i64), QueryResult> = HashMap::new();
    for (range, _) in &outcomes {
        exact
            .entry((range.lo, range.hi))
            .or_insert_with(|| service.run_exact(&q1(*range, k)).expect("exact oracle").0);
    }
    for (range, result) in &outcomes {
        assert!(result.stats.reuse.is_some());
        assert!(!result.groups.is_empty(), "no estimates for {range:?}");
        assert_within_clt_bound(*range, result, &exact[&(range.lo, range.hi)]);
    }

    // No duplicate descriptors: identical coverage stored twice means two
    // competing writers both won.
    let store = service.store();
    let mut seen = HashSet::new();
    for (_, d) in store.descriptors() {
        let signature = format!("{}|{:?}", d.fingerprint(), d.predicates);
        assert!(seen.insert(signature), "duplicate stored descriptor: {d:?}");
    }
    drop(store);

    // Single-threaded oracle replay of the same multiset ends with the
    // same coverage: the union of all query ranges, independent of
    // interleaving.
    let mut replay = LaqySession::with_config(cat, config(None));
    let mut requested = IntervalSet::empty();
    for t in 0..THREADS {
        for j in 0..QUERIES_PER_THREAD {
            let range = range_for(n, t, j);
            replay.run(&q1(range, k)).expect("replay query");
            requested = requested.union(&IntervalSet::of(range));
        }
    }
    let replay_coverage = {
        let store = replay.store();
        let mut union = IntervalSet::empty();
        for (_, d) in store.descriptors() {
            union = union.union(d.predicates.get("lo_intkey").unwrap());
        }
        union
    };
    let concurrent_coverage = stored_coverage(&service);
    assert_eq!(concurrent_coverage, replay_coverage);
    assert_eq!(concurrent_coverage, requested);
}

#[test]
fn byte_budget_holds_under_concurrent_insertion() {
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let k = 24;

    // Size the budget off one materialized sample so roughly three fit.
    let probe = LaqyService::with_config(cat.clone(), config(None));
    probe.run(&q1(range_for(n, 0, 0), k)).unwrap();
    let one = probe.store().total_bytes();
    assert!(one > 0);
    let budget = one * 3;

    let service = LaqyService::with_config(cat, config(Some(budget)));
    let outcomes = hammer(&service, n, k);
    for (range, result) in &outcomes {
        assert!(!result.groups.is_empty(), "no estimates for {range:?}");
    }

    let store = service.store();
    assert!(
        store.total_bytes() <= budget || store.len() <= 1,
        "budget {budget} exceeded: {} bytes across {} samples",
        store.total_bytes(),
        store.len()
    );
    let mut seen = HashSet::new();
    for (_, d) in store.descriptors() {
        let signature = format!("{}|{:?}", d.fingerprint(), d.predicates);
        assert!(seen.insert(signature), "duplicate stored descriptor: {d:?}");
    }
}

#[test]
fn persistent_pool_preserves_exactly_once_delta_scans() {
    // Same in-flight dedup invariant as
    // `identical_partial_misses_scan_the_delta_exactly_once`, but with
    // intra-query parallelism enabled so every Δ-scan runs on the
    // persistent worker pool. The pool must neither double-run a scan
    // nor spawn fresh workers per service: repeated service
    // construction reuses the one process-wide pool.
    use laqy_engine::parallel::{pool_size, pool_workers_spawned, DEFAULT_MORSEL_ROWS};

    // Needs a fact table spanning several morsels, else every fold takes
    // the serial fast path and the pool is never exercised.
    let cat = generate(&SsbConfig {
        scale_factor: 0.02, // ~120k fact rows ≈ 2 morsels
        seed: 0xC0C1,
    });
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    assert!(
        n as usize > DEFAULT_MORSEL_ROWS,
        "catalog too small to reach the worker pool"
    );
    let k = 24;
    let pooled_config = || SessionConfig {
        threads: 2,
        ..config(None)
    };

    for round in 0..3 {
        let service = LaqyService::with_config(cat.clone(), pooled_config());
        service.run(&q1(Interval::new(0, n / 2), k)).unwrap();

        service.set_sampling_hold(Some(Duration::from_millis(300)));
        let target = q1(Interval::new(0, 3 * n / 4), k);
        let before = service.stats();
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let service = service.clone();
                let (barrier, target) = (&barrier, &target);
                scope.spawn(move || {
                    barrier.wait();
                    service.run(target).expect("query");
                });
            }
        });
        service.set_sampling_hold(None);

        let after = service.stats();
        assert_eq!(
            after.delta_scans - before.delta_scans,
            1,
            "round {round}: Δ-scan must run exactly once on the pool"
        );
        assert_eq!(
            after.merges_deduped - before.merges_deduped,
            1,
            "round {round}: second client must dedup against the in-flight scan"
        );
        assert_eq!(
            stored_coverage(&service),
            IntervalSet::of(Interval::new(0, 3 * n / 4)),
            "round {round}: coverage stored exactly once"
        );
    }

    // Three services (plus everything else this test binary ran) used
    // parallelism, yet the process holds exactly one pool's worth of
    // workers: construction never leaks threads.
    let size = pool_size();
    assert_eq!(
        pool_workers_spawned(),
        size,
        "repeated service construction must reuse the persistent pool"
    );
}

#[test]
fn identical_partial_misses_scan_the_delta_exactly_once() {
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let service = LaqyService::with_config(cat, config(None));
    let k = 24;

    // Materialize coverage of the first half.
    service.run(&q1(Interval::new(0, n / 2), k)).unwrap();
    assert_eq!(service.stats().online_runs, 1);

    // Both clients miss on the same uncovered interval (n/2, 3n/4]. The
    // sampling hold keeps the first client inside the Δ scan long enough
    // that the second must hit the in-flight registry.
    service.set_sampling_hold(Some(Duration::from_millis(300)));
    let target = q1(Interval::new(0, 3 * n / 4), k);
    let before = service.stats();
    let barrier = Barrier::new(2);
    let reuse: Vec<ReuseClass> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let service = service.clone();
                let (barrier, target) = (&barrier, &target);
                scope.spawn(move || {
                    barrier.wait();
                    service.run(target).expect("query").stats.reuse.unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    service.set_sampling_hold(None);

    let after = service.stats();
    assert_eq!(
        after.delta_scans - before.delta_scans,
        1,
        "the uncovered interval must be Δ-scanned exactly once"
    );
    assert_eq!(
        after.merges_deduped - before.merges_deduped,
        1,
        "the second client must piggyback on the in-flight merge"
    );
    assert_eq!(after.partial_merges - before.partial_merges, 1);
    // The piggybacking client re-plans against the now-extended coverage.
    assert_eq!(after.full_hits - before.full_hits, 1);
    let mut reuse = reuse;
    reuse.sort_by_key(|r| r.label());
    assert_eq!(reuse, vec![ReuseClass::Full, ReuseClass::Partial]);

    // Coverage is the union, stored once.
    assert_eq!(
        stored_coverage(&service),
        IntervalSet::of(Interval::new(0, 3 * n / 4))
    );
    assert_eq!(service.store().len(), 1);
}

/// Materialize a deliberately fragmented Q1-family snapshot: two disjoint
/// stored samples covering `[0, 2n/5]` and `[n/2, 9n/10]`. Each fragment
/// comes from a scratch service and is re-inserted raw, so absorption
/// cannot consolidate them into one wide sample.
fn fragmented_snapshot(cat: &Catalog, n: i64, k: usize) -> Vec<u8> {
    let mut store = SampleStore::new();
    for range in [
        Interval::new(0, 2 * n / 5),
        Interval::new(n / 2, 9 * n / 10),
    ] {
        let scratch = LaqyService::with_config(cat.clone(), config(None));
        scratch.run(&q1(range, k)).expect("fragment query");
        let guard = scratch.store();
        let (_, stored) = guard.iter().next().expect("fragment materialized");
        store.insert_raw(
            stored.descriptor.clone(),
            stored.schema.clone(),
            stored.sample.clone(),
            stored.watermark,
        );
    }
    save_store(&store)
}

#[test]
fn concurrent_coverage_misses_scan_each_fragment_exactly_once() {
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let k = 24;
    let service = LaqyService::with_config(cat.clone(), config(None));
    service
        .import_samples(&fragmented_snapshot(&cat, n, k))
        .expect("snapshot imports");
    assert_eq!(service.store().len(), 2, "store must start fragmented");

    // Both clients plan the same CoverageReuse: the two stored fragments
    // plus one residual Δ-fragment (the gaps share the single varying
    // column, so they collapse into one multi-interval scan). The sampling
    // hold keeps the owner inside that scan long enough that the second
    // client must hit the per-fragment in-flight registry.
    service.set_sampling_hold(Some(Duration::from_millis(300)));
    let target = q1(Interval::new(0, n - 1), k);
    let before = service.stats();
    let barrier = Barrier::new(2);
    let reuse: Vec<ReuseClass> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let service = service.clone();
                let (barrier, target) = (&barrier, &target);
                scope.spawn(move || {
                    barrier.wait();
                    service.run(target).expect("query").stats.reuse.unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    service.set_sampling_hold(None);

    let after = service.stats();
    assert_eq!(
        after.delta_scans - before.delta_scans,
        1,
        "the residual fragment must be Δ-scanned exactly once"
    );
    assert_eq!(after.fragments_scanned - before.fragments_scanned, 1);
    assert_eq!(
        after.fragments_deduped - before.fragments_deduped,
        1,
        "the waiter must dedup against the in-flight fragment scan"
    );
    assert_eq!(
        after.merges_deduped - before.merges_deduped,
        1,
        "the waiting client piggybacks on the in-flight merge once"
    );
    assert_eq!(
        after.fragments_reused - before.fragments_reused,
        2,
        "the winning merge must reuse both stored fragments"
    );
    assert_eq!(after.partial_merges - before.partial_merges, 1);
    // The piggybacking client re-plans against the consolidated coverage.
    assert_eq!(after.full_hits - before.full_hits, 1);
    let mut reuse = reuse;
    reuse.sort_by_key(|r| r.label());
    assert_eq!(reuse, vec![ReuseClass::Full, ReuseClass::Partial]);

    // Consolidation reproduces the single-sample end state: full coverage
    // stored once.
    assert_eq!(
        stored_coverage(&service),
        IntervalSet::of(Interval::new(0, n - 1))
    );
    assert_eq!(service.store().len(), 1, "fragments consolidated away");
}
