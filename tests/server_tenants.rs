//! Per-tenant isolation under load: 8 concurrent wire clients split
//! across 2 tenants — 7 hammering a deliberately tiny admission gate
//! ("noisy"), 1 pacing itself on its own tenant ("quiet").
//!
//! The isolation contract under test:
//!
//! - the noisy tenant sheds (its gate is sized to overflow), and every
//!   shed is a typed `Overloaded`, never a hang or a torn frame;
//! - the quiet tenant rides through *untouched*: zero sheds, zero
//!   errors, every query answered — a neighbor's overload is invisible;
//! - a noisy-tenant ingest never changes the quiet tenant's data.

use std::time::Duration;

use laqy_server::protocol::{Request, Response};
use laqy_server::{Client, Server, ServerConfig};
use laqy_workload::ssb::SsbConfig;

const IO_TIMEOUT: Duration = Duration::from_secs(10);
const NOISY_CLIENTS: usize = 7;
const OPS_PER_CLIENT: usize = 30;

fn start_contended() -> Server {
    let catalog = laqy_workload::generate(&SsbConfig::tiny());
    Server::start(
        catalog,
        ServerConfig {
            // One permit and a one-deep queue: seven closed-loop
            // clients on one tenant must overflow it.
            tenant_permits: 1,
            tenant_queue: 1,
            admission_max_wait: Duration::from_millis(25),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server binds")
}

fn query(tenant: &str, lo: i64, hi: i64) -> Request {
    Request::Query {
        tenant: tenant.to_string(),
        sql: laqy_workload::q1_sql(lo, hi),
        k: 64,
        timeout_ms: 0,
    }
}

#[derive(Default)]
struct Outcomes {
    answers: u64,
    sheds: u64,
    errors: u64,
    io_errors: u64,
}

fn run_client(addr: std::net::SocketAddr, tenant: &str, seed: usize) -> Outcomes {
    let mut out = Outcomes::default();
    let mut client = Client::connect(addr, IO_TIMEOUT).expect("connect");
    for i in 0..OPS_PER_CLIENT {
        let lo = ((seed * 7 + i * 13) % 50) as i64 * 100;
        let hi = lo + 499;
        match client.request(&query(tenant, lo, hi)) {
            Ok(Response::Answer(_)) => out.answers += 1,
            Ok(Response::Overloaded { .. }) => out.sheds += 1,
            Ok(Response::Error { .. }) => out.errors += 1,
            Ok(other) => panic!("unexpected response {other:?}"),
            Err(_) => {
                out.io_errors += 1;
                client = Client::connect(addr, IO_TIMEOUT).expect("reconnect");
            }
        }
    }
    out
}

#[test]
fn noisy_tenant_sheds_quiet_tenant_rides_through() {
    let server = start_contended();
    let addr = server.addr();

    let (noisy, quiet) = std::thread::scope(|scope| {
        let noisy_handles: Vec<_> = (0..NOISY_CLIENTS)
            .map(|c| scope.spawn(move || run_client(addr, "noisy", c)))
            .collect();
        let quiet_handle = scope.spawn(move || run_client(addr, "quiet", 99));
        let mut noisy = Outcomes::default();
        for h in noisy_handles {
            let o = h.join().expect("noisy client finished");
            noisy.answers += o.answers;
            noisy.sheds += o.sheds;
            noisy.errors += o.errors;
            noisy.io_errors += o.io_errors;
        }
        (noisy, quiet_handle.join().expect("quiet client finished"))
    });

    // Every operation resolved to a typed outcome (no hangs: the
    // clients all returned, and nothing hit an I/O timeout).
    let noisy_total = noisy.answers + noisy.sheds + noisy.errors;
    assert_eq!(noisy_total, (NOISY_CLIENTS * OPS_PER_CLIENT) as u64);
    assert_eq!(noisy.io_errors, 0, "no connection-level failures");

    // The overloaded tenant actually shed, and still made progress.
    assert!(noisy.sheds > 0, "7 clients on a 1+1 gate must shed");
    assert!(noisy.answers > 0, "shedding is not starvation");
    assert_eq!(noisy.errors, 0, "overload is Overloaded, not Error");

    // The quiet tenant never observed its neighbor's overload.
    assert_eq!(quiet.answers, OPS_PER_CLIENT as u64, "every query answered");
    assert_eq!(quiet.sheds, 0, "a neighbor's full queue is invisible");
    assert_eq!(quiet.errors, 0);
    assert_eq!(quiet.io_errors, 0);

    // Server-side counters tell the same story.
    let noisy_stats = server
        .registry()
        .get_or_create("noisy")
        .expect("tenant")
        .counters
        .snapshot();
    assert_eq!(noisy_stats.shed, noisy.sheds);
    let quiet_stats = server
        .registry()
        .get_or_create("quiet")
        .expect("tenant")
        .counters
        .snapshot();
    assert_eq!(quiet_stats.shed, 0);
    assert_eq!(quiet_stats.answers, OPS_PER_CLIENT as u64);

    server.shutdown();
}

#[test]
fn noisy_ingest_is_invisible_to_the_quiet_tenant() {
    let server = start_contended();
    let mut client = Client::connect(server.addr(), IO_TIMEOUT).expect("connect");

    // Touch both tenants, then ingest into noisy only.
    for tenant in ["noisy", "quiet"] {
        let resp = client.request(&query(tenant, 0, 999)).expect("query");
        assert!(matches!(resp, Response::Answer(_)), "{resp:?}");
    }
    let base_rows = SsbConfig::tiny().lineorder_rows();
    let ack = client
        .request(&Request::Ingest {
            tenant: "noisy".to_string(),
            table: "lineorder".to_string(),
            columns: laqy_workload::lineorder_batch(&SsbConfig::tiny(), base_rows, 128),
        })
        .expect("ingest");
    assert!(matches!(ack, Response::IngestAck { .. }), "{ack:?}");

    let rows = |tenant: &str| {
        server
            .registry()
            .get_or_create(tenant)
            .expect("tenant")
            .service
            .catalog()
            .table("lineorder")
            .expect("table")
            .num_rows()
    };
    assert_eq!(rows("noisy"), base_rows + 128, "ingest landed in noisy");
    assert_eq!(rows("quiet"), base_rows, "quiet tenant is untouched");

    server.shutdown();
}
