//! Cross-crate integration tests: the full LAQy flow over generated SSB
//! data, checking reuse classification, estimate accuracy against exact
//! answers, and the statistical equivalence of merged samples.

use laqy::{ApproxQuery, Interval, LaqySession, ReuseClass, SessionConfig};
use laqy_engine::{AggSpec, Catalog, ColRef, Predicate, QueryPlan, Value};
use laqy_workload::{generate, q1, q2, strat, SsbConfig};

fn catalog() -> Catalog {
    generate(&SsbConfig {
        scale_factor: 0.005, // 30k fact rows
        seed: 0xE2E,
    })
}

fn session(cat: &Catalog, seed: u64) -> LaqySession {
    LaqySession::with_config(
        cat.clone(),
        SessionConfig {
            threads: 2,
            seed,
            ..Default::default()
        },
    )
}

fn n_rows(cat: &Catalog) -> i64 {
    cat.table("lineorder").unwrap().num_rows() as i64
}

#[test]
fn reuse_classes_follow_algorithm_one() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = session(&cat, 1);

    // Cold store: online.
    let r = s.run(&q1(Interval::new(0, n / 2), 64)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Online));

    // Extending the range: partial (delta) reuse.
    let r = s.run(&q1(Interval::new(0, 3 * n / 4), 64)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Partial));
    assert!(r.stats.effective_selectivity > 0.0 && r.stats.effective_selectivity < 1.0);

    // Zooming back inside the covered range: full reuse, no scan.
    let r = s.run(&q1(Interval::new(n / 8, n / 4), 64)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
    assert_eq!(r.stats.scanned_rows, 0);
    assert_eq!(r.stats.effective_selectivity, 0.0);

    // A disjoint region: online again (store may extend coverage later).
    // Coverage after the queries above is [0, 3n/4).
    let r = s.run(&q1(Interval::new(7 * n / 8, n - 1), 64)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Online));
}

#[test]
fn estimates_track_exact_answers_q1() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = session(&cat, 2);
    let query = q1(Interval::new(0, (0.6 * n as f64) as i64), 512);

    let approx = s.run(&query).unwrap();
    let (exact, _) = s.run_exact(&query).unwrap();

    assert_eq!(
        approx.groups.len(),
        exact.rows.len(),
        "group sets must match"
    );
    let (mut total_est, mut total_exact) = (0.0, 0.0);
    for g in &approx.groups {
        let truth = exact
            .row_by_key(&[Value::Int(g.key[0])])
            .expect("group present in exact result");
        total_est += g.values[0].value;
        total_exact += truth.values[0];
    }
    let rel = (total_est - total_exact).abs() / total_exact;
    assert!(rel < 0.05, "aggregate relative error {rel} too high");
}

#[test]
fn merged_sample_estimates_match_fresh_online_estimates() {
    // The paper's core claim: partial reuse must not degrade accuracy.
    let cat = catalog();
    let n = n_rows(&cat);
    let target = q1(Interval::new(0, (0.7 * n as f64) as i64), 256);

    // Exact ground truth.
    let (exact, _) = session(&cat, 0).run_exact(&target).unwrap();
    let truth_total: f64 = exact.rows.iter().map(|r| r.values[0]).sum();

    let mut err_online = 0.0;
    let mut err_merged = 0.0;
    let trials = 10;
    for t in 0..trials {
        // Fresh online.
        let mut s = session(&cat, 100 + t);
        let r = s.run(&target).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Online));
        let total: f64 = r.groups.iter().map(|g| g.values[0].value).sum();
        err_online += (total - truth_total).abs() / truth_total;

        // Warm up with a prefix range, forcing delta + merge.
        let mut s = session(&cat, 200 + t);
        s.run(&q1(Interval::new(0, (0.4 * n as f64) as i64), 256))
            .unwrap();
        let r = s.run(&target).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Partial));
        let total: f64 = r.groups.iter().map(|g| g.values[0].value).sum();
        err_merged += (total - truth_total).abs() / truth_total;
    }
    let (avg_online, avg_merged) = (err_online / trials as f64, err_merged / trials as f64);
    assert!(avg_online < 0.05, "online error {avg_online}");
    assert!(avg_merged < 0.05, "merged error {avg_merged}");
    // Merged accuracy must be in the same ballpark as fresh sampling.
    assert!(
        avg_merged < avg_online * 3.0 + 0.01,
        "merging degraded accuracy: online {avg_online}, merged {avg_merged}"
    );
}

#[test]
fn q2_join_pipeline_matches_exact_groups() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = session(&cat, 3);
    let query = q2(Interval::new(0, n - 1), 512);

    let approx = s.run(&query).unwrap();
    let (exact, _) = s.run_exact(&query).unwrap();
    // Full range + large k ⇒ every joined group appears.
    assert_eq!(approx.groups.len(), exact.rows.len());

    // Spot-check totals.
    let total_est: f64 = approx.groups.iter().map(|g| g.values[0].value).sum();
    let total_exact: f64 = exact.rows.iter().map(|r| r.values[0]).sum();
    let rel = (total_est - total_exact).abs() / total_exact;
    assert!(rel < 0.1, "Q2 aggregate relative error {rel}");
}

#[test]
fn full_reuse_after_join_heavy_query_skips_scan() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = session(&cat, 4);
    s.run(&q2(Interval::new(0, n / 2), 64)).unwrap();
    let r = s.run(&q2(Interval::new(n / 8, n / 4), 64)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
    assert_eq!(r.stats.scanned_rows, 0);
}

#[test]
fn different_templates_do_not_share_samples() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = session(&cat, 5);
    s.run(&q1(Interval::new(0, n - 1), 64)).unwrap();
    // Q2 has a different sampler input (join subtree) — no reuse.
    let r = s.run(&q2(Interval::new(0, n / 2), 64)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Online));
    // Different k also prevents reuse.
    let r = s.run(&q1(Interval::new(0, n / 2), 128)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Online));
}

#[test]
fn strat_template_produces_table1_strata() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = session(&cat, 6);
    for (cols, expected) in [(1usize, 50usize), (2, 450), (3, 4950)] {
        let r = s
            .run(&strat(cols, "lo_intkey", Interval::new(0, n - 1), 8))
            .unwrap();
        // 30k rows cover all 450 2-col combos, and most 3-col combos.
        if cols < 3 {
            assert_eq!(r.groups.len(), expected);
        } else {
            assert!(r.groups.len() > expected * 9 / 10);
        }
    }
}

#[test]
fn online_oblivious_baseline_never_reuses() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = session(&cat, 7);
    for _ in 0..3 {
        let r = s
            .run_online_oblivious(&q1(Interval::new(0, n / 2), 64))
            .unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Online));
    }
    assert_eq!(s.store().len(), 0, "oblivious runs must not store samples");
}

#[test]
fn repeated_identical_query_is_free_after_first() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = session(&cat, 8);
    let query = q1(Interval::new(n / 4, n / 2), 64);
    let first = s.run(&query).unwrap();
    assert_eq!(first.stats.reuse, Some(ReuseClass::Online));
    let second = s.run(&query).unwrap();
    assert_eq!(second.stats.reuse, Some(ReuseClass::Full));
    assert_eq!(second.stats.scanned_rows, 0);
}

#[test]
fn zero_width_range_is_handled() {
    let cat = catalog();
    let mut s = session(&cat, 9);
    let r = s.run(&q1(Interval::new(5, 5), 16)).unwrap();
    // One matching row lands in exactly one stratum.
    let total: f64 = r
        .groups
        .iter()
        .map(|g| g.values[1].value) // COUNT
        .sum();
    assert_eq!(total, 1.0);
}

#[test]
fn k_larger_than_input_keeps_population_and_is_exact() {
    let cat = catalog();
    let mut s = session(&cat, 10);
    let query = q1(Interval::new(0, 499), 100_000);
    let approx = s.run(&query).unwrap();
    let (exact, _) = s.run_exact(&query).unwrap();
    for g in &approx.groups {
        let truth = exact.row_by_key(&[Value::Int(g.key[0])]).unwrap();
        assert!(
            (g.values[0].value - truth.values[0]).abs() < 1e-6,
            "population sample must be exact"
        );
        assert_eq!(g.values[0].ci_half_width, 0.0);
    }
}

#[test]
fn store_budget_eviction_degrades_to_online_not_wrong_answers() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = LaqySession::with_config(
        cat.clone(),
        SessionConfig {
            threads: 2,
            seed: 11,
            store_budget_bytes: Some(1), // evict everything immediately
            ..Default::default()
        },
    );
    let query = q1(Interval::new(0, n / 2), 64);
    let r1 = s.run(&query).unwrap();
    assert_eq!(r1.stats.reuse, Some(ReuseClass::Online));
    // With a 1-byte budget at most one sample survives; answers stay valid.
    let r2 = s.run(&query).unwrap();
    assert!(r2.groups.len() == r1.groups.len());
}

#[test]
fn custom_plan_with_fixed_predicate_is_part_of_identity() {
    let cat = catalog();
    let n = n_rows(&cat);
    let make = |quantity_cap: i64| ApproxQuery {
        plan: QueryPlan {
            fact: "lineorder".into(),
            predicate: Predicate::between("lo_quantity", 1, quantity_cap),
            joins: vec![],
            group_by: vec![ColRef::fact("lo_discount")],
            aggs: vec![AggSpec::sum("lo_revenue")],
        },
        range_column: "lo_intkey".into(),
        range: Interval::new(0, n / 2),
        k: 32,
    };
    let mut s = session(&cat, 12);
    s.run(&make(25)).unwrap();
    // Same range but different fixed predicate ⇒ different sampler input
    // ⇒ no reuse.
    let r = s.run(&make(40)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Online));
    // Identical fixed predicate ⇒ full reuse.
    let r = s.run(&make(25)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
}

#[test]
fn full_ssb_benchmark_approximates_exact_results() {
    // Run all thirteen SSB queries (Q1.1–Q4.3) approximately — wrapping
    // each plan as an ApproxQuery over the full lo_intkey domain with a
    // generous k — and compare against exact execution.
    let cat = catalog();
    let n = n_rows(&cat);
    let mut session = session(&cat, 77);
    for (name, plan) in laqy_workload::all_queries() {
        let query = ApproxQuery {
            plan,
            range_column: "lo_intkey".into(),
            range: Interval::new(0, n - 1),
            k: 4096,
        };
        let approx = session
            .run(&query)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let (exact, _) = session
            .run_exact(&query)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            approx.groups.len(),
            exact.rows.len(),
            "{name}: group cardinality"
        );
        let est_total: f64 = approx.groups.iter().map(|g| g.values[0].value).sum();
        let exact_total: f64 = exact.rows.iter().map(|r| r.values[0]).sum();
        if exact_total > 0.0 {
            let rel = (est_total - exact_total).abs() / exact_total;
            assert!(rel < 0.1, "{name}: relative error {rel}");
        }
    }
}
