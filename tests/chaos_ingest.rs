//! Crash-safety regression suite for the streaming-ingest WAL path,
//! driven by the `laqy-faults` registry (`--cfg laqy_faults` builds
//! only).
//!
//! The core invariant: killing an ingest at *every* fault point in the
//! log sequence (`rotate → write → sync`, plus the replay read at
//! recovery) must land recovery on one consistent `(snapshot
//! generation, WAL position)` point — the recovered table watermark is
//! a whole number of batches, no stored sample references rows past it,
//! and a pure-reuse query's exact COUNT equals the watermark. A torn
//! frame may only ever lose the batch being appended, never an
//! acknowledged one.
#![cfg(laqy_faults)]

use std::path::PathBuf;

use laqy::{
    replay_wal, ApproxQuery, Interval, LaqyService, ReuseClass, SessionConfig, WalAppender,
    WalRecord,
};
use laqy_engine::{AggSpec, Catalog, ColRef, Column, Predicate, QueryPlan, Table};
use laqy_faults::{FaultKind, FaultPlan};
use laqy_sync::Mutex;

/// The fault plan is process-global: every chaos test serializes on
/// this lock so one schedule never bleeds into another test.
static CHAOS_LOCK: Mutex<()> = Mutex::named("chaos.ingest.lock", ());

const BASE_ROWS: usize = 2_000;
const BATCH_ROWS: usize = 250;
const MAX_BATCHES: usize = 4;

/// `key` is the clustered row id, `g` a small group column, `v` the
/// summed measure — appended batches continue the `key` sequence.
fn stream_columns(from: usize, rows: usize) -> Vec<(String, Column)> {
    let range = from as i64..(from + rows) as i64;
    vec![
        ("key".into(), Column::Int64(range.clone().collect())),
        (
            "g".into(),
            Column::Int64(range.clone().map(|i| i % 4).collect()),
        ),
        (
            "v".into(),
            Column::Int64(range.map(|i| (i * 7) % 100).collect()),
        ),
    ]
}

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register(Table::new("stream", stream_columns(0, BASE_ROWS)).unwrap());
    cat
}

/// A query whose range covers every row the sweep can ever append, so
/// the warmed sample's predicate admits the whole stream and its COUNT
/// (exact — stratum weights are true row counts) equals the watermark.
fn query() -> ApproxQuery {
    ApproxQuery {
        plan: QueryPlan {
            fact: "stream".into(),
            predicate: Predicate::True,
            joins: vec![],
            group_by: vec![ColRef::fact("g")],
            aggs: vec![AggSpec::sum("v"), AggSpec::count()],
        },
        range_column: "key".into(),
        range: Interval::new(0, (BASE_ROWS + MAX_BATCHES * BATCH_ROWS) as i64 - 1),
        k: 32,
    }
}

fn service(seed: u64) -> LaqyService {
    LaqyService::with_config(
        catalog(),
        SessionConfig {
            threads: 1,
            seed,
            ..Default::default()
        },
    )
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("laqy-chaos-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Recovery oracle shared by every seed: the watermark is a whole
/// number of batches within the attempted window, the store never
/// references rows past it, and a pure-reuse COUNT equals it exactly.
fn assert_consistent(recovered: &LaqyService, min_batches: usize, max_batches: usize) -> usize {
    let watermark = recovered.catalog().table("stream").unwrap().row_watermark() as usize;
    assert!(
        watermark >= BASE_ROWS
            && (watermark - BASE_ROWS) % BATCH_ROWS == 0
            && (BASE_ROWS + min_batches * BATCH_ROWS..=BASE_ROWS + max_batches * BATCH_ROWS)
                .contains(&watermark),
        "recovered watermark {watermark} is not a consistent batch boundary"
    );
    let store = recovered.store();
    for (_, stored) in store.iter() {
        assert!(
            stored.watermark as usize <= watermark,
            "stored sample references rows past the recovered watermark: {} > {watermark}",
            stored.watermark
        );
    }
    let r = recovered.run(&query()).unwrap();
    assert_eq!(
        r.stats.reuse,
        Some(ReuseClass::Full),
        "absorbed sample answers"
    );
    let count: f64 = r.groups.iter().map(|g| g.values[1].value).sum();
    assert_eq!(count, watermark as f64, "exact COUNT equals the watermark");
    watermark
}

#[test]
fn killing_ingest_at_every_wal_fault_point_recovers_consistently() {
    let _guard = CHAOS_LOCK.lock();
    for seed in 0..32u64 {
        laqy_faults::clear();
        let dir = scratch_dir(&format!("sweep-{seed}"));
        let wal_dir = dir.join("wal");
        let snap_dir = dir.join("snap");

        let live = service(0x5EED ^ seed);
        live.enable_wal(&wal_dir).unwrap();
        live.run(&query()).unwrap();
        live.save_snapshot(&snap_dir).unwrap();

        // Four fault kinds, each swept over where in the batch stream the
        // kill lands (`nth` counts fault-point events after install, so
        // the checkpoint frame above is never the victim).
        let kind = seed % 4;
        let nth = 1 + (seed / 4) % MAX_BATCHES as u64;
        let (point, torn_expected) = match kind {
            0 => ("wal.append.write", true),
            1 => ("wal.append.sync", false),
            // Kind 2 kills the replay read at recovery instead of an
            // ingest; kind 3 kills the checkpoint append of a second
            // snapshot after the batches landed.
            2 => ("wal.replay.read", false),
            _ => ("wal.append.write", true),
        };
        if kind <= 1 {
            laqy_faults::install(FaultPlan::new(seed).fail_nth(point, FaultKind::Io, nth));
        }

        let mut acked = 0usize;
        for b in 0..MAX_BATCHES.min(if kind >= 2 { nth as usize } else { MAX_BATCHES }) {
            match live.ingest(
                "stream",
                stream_columns(BASE_ROWS + b * BATCH_ROWS, BATCH_ROWS),
            ) {
                Ok(_) => acked += 1,
                Err(e) => {
                    assert!(
                        e.to_string().contains("injected I/O fault")
                            && e.to_string().contains("wal disabled"),
                        "{point}: unexpected ingest error {e}"
                    );
                    break;
                }
            }
        }
        if kind == 3 {
            // The snapshot itself lands; the checkpoint frame tears and
            // the WAL is disabled rather than appended past.
            laqy_faults::install(FaultPlan::new(seed).fail_nth(point, FaultKind::Io, 1));
            let err = live.save_snapshot(&snap_dir).expect_err("checkpoint torn");
            assert!(err.to_string().contains("injected I/O fault"), "{err}");
        }
        laqy_faults::clear();
        drop(live); // the "crash"

        let recovered = service(0xFEED ^ seed);
        if kind == 2 {
            // The kill lands on recovery's own replay read: recovery
            // fails loudly, then a clean retry succeeds.
            laqy_faults::install(FaultPlan::new(seed).fail_nth(point, FaultKind::Io, 1));
            let err = recovered
                .recover_with_wal(&snap_dir, &wal_dir)
                .expect_err("replay read killed");
            assert!(err.to_string().contains("injected I/O fault"), "{err}");
            laqy_faults::clear();
        }
        let report = recovered.recover_with_wal(&snap_dir, &wal_dir).unwrap();

        // An acked batch is never lost; a sync-killed frame may replay
        // one batch past the acked point (the frame reached the file).
        let watermark = assert_consistent(&recovered, acked, acked + 1);
        if kind == 0 {
            assert_eq!(watermark, BASE_ROWS + acked * BATCH_ROWS, "torn frame lost");
        }
        assert_eq!(
            report.wal_torn_tail,
            torn_expected && (kind != 0 || acked < MAX_BATCHES),
            "seed {seed} ({point}, nth {nth}): torn-tail report"
        );

        // The truncated WAL stays usable: further ingest is durable and
        // survives a second recovery.
        let w = recovered
            .ingest("stream", stream_columns(watermark, BATCH_ROWS))
            .unwrap();
        assert_eq!(w as usize, watermark + BATCH_ROWS);
        let again = service(0xF00D ^ seed);
        again.recover_with_wal(&snap_dir, &wal_dir).unwrap();
        assert_eq!(
            again.catalog().table("stream").unwrap().row_watermark(),
            w,
            "seed {seed}: post-recovery ingest must be durable"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn snapshot_of_unlogged_rows_is_dropped_back_to_the_replayed_watermark() {
    // A killed append disables the WAL; rows published after that are
    // never durable. A snapshot cut from that state holds samples whose
    // watermark outruns anything replay can rebuild — recovery must drop
    // them rather than serve estimates over rows that no longer exist.
    let _guard = CHAOS_LOCK.lock();
    laqy_faults::clear();
    let dir = scratch_dir("unlogged");
    let wal_dir = dir.join("wal");
    let snap_dir = dir.join("snap");

    let live = service(0xAB5);
    live.enable_wal(&wal_dir).unwrap();
    live.run(&query()).unwrap();
    live.ingest("stream", stream_columns(BASE_ROWS, BATCH_ROWS))
        .unwrap();
    live.ingest("stream", stream_columns(BASE_ROWS + BATCH_ROWS, BATCH_ROWS))
        .unwrap();

    // Batch 3 tears the log (WAL disabled); batch 4 publishes unlogged.
    laqy_faults::install(FaultPlan::new(7).fail_nth("wal.append.write", FaultKind::Io, 1));
    assert!(live
        .ingest(
            "stream",
            stream_columns(BASE_ROWS + 2 * BATCH_ROWS, BATCH_ROWS)
        )
        .is_err());
    laqy_faults::clear();
    live.ingest(
        "stream",
        stream_columns(BASE_ROWS + 2 * BATCH_ROWS, BATCH_ROWS),
    )
    .unwrap();
    let unlogged = live.catalog().table("stream").unwrap().row_watermark();
    assert_eq!(unlogged as usize, BASE_ROWS + 3 * BATCH_ROWS);
    live.save_snapshot(&snap_dir).unwrap();
    {
        let store = live.store();
        let (_, s) = store.iter().next().unwrap();
        assert_eq!(s.watermark, unlogged, "snapshot samples outrun the log");
    }
    drop(live);

    let recovered = service(0xAB6);
    let report = recovered.recover_with_wal(&snap_dir, &wal_dir).unwrap();
    assert!(report.wal_torn_tail);
    // Replay rebuilds only the two logged batches...
    let watermark = recovered.catalog().table("stream").unwrap().row_watermark();
    assert_eq!(watermark as usize, BASE_ROWS + 2 * BATCH_ROWS);
    // ...and the outrunning sample is gone, not served stale.
    for (_, s) in recovered.store().iter() {
        assert!(
            s.watermark <= watermark,
            "sample past the replayed watermark survived recovery"
        );
    }
    // The next query re-samples the recovered table and still answers
    // with the exact row count.
    let r = recovered.run(&query()).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Online));
    let count: f64 = r.groups.iter().map(|g| g.values[1].value).sum();
    assert_eq!(count, watermark as f64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killing_segment_rotation_leaves_the_previous_segment_intact() {
    // Rotation crash-safety, driven at the appender directly (reaching
    // the 16 MiB threshold through the service would need megarow
    // batches): a kill at `wal.rotate.create` loses only the record
    // being appended, and a retry rotates cleanly.
    let _guard = CHAOS_LOCK.lock();
    laqy_faults::clear();
    let dir = scratch_dir("rotate");

    // ~9 MiB per record: the second append must rotate first.
    let big = |from: i64| WalRecord::Batch {
        table: "stream".into(),
        base_rows: from as u64,
        columns: vec![("key".into(), Column::Int64(vec![from; 1_200_000]))],
    };
    let mut wal = WalAppender::open(&dir).unwrap();
    wal.append(&big(0)).unwrap();
    laqy_faults::install(FaultPlan::new(11).fail_nth("wal.rotate.create", FaultKind::Io, 1));
    let err = wal.append(&big(1)).expect_err("rotation killed");
    assert!(err.to_string().contains("injected I/O fault"), "{err}");
    laqy_faults::clear();

    // The first segment is untouched and replays cleanly to one record.
    let (records, report) = replay_wal(&dir).unwrap();
    assert_eq!(records.len(), 1);
    assert!(
        !report.torn_tail,
        "rotation dies before any byte is written"
    );

    // Re-opening at the measured end and retrying rotates for real.
    let mut wal = WalAppender::open_at(&dir, report.end).unwrap();
    let pos = wal.append(&big(1)).unwrap();
    assert!(
        pos.segment > report.end.segment,
        "retry opened the next segment"
    );
    let (records, report) = replay_wal(&dir).unwrap();
    assert_eq!(records.len(), 2);
    assert!(!report.torn_tail);
    let _ = std::fs::remove_dir_all(&dir);
}
