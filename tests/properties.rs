//! Property-based tests over the core invariants: interval algebra laws
//! (the soundness basis of Δ-predicate computation), reservoir/merge state
//! invariants, and estimator exactness on population samples.

use laqy::{Interval, IntervalSet, Predicates, SampleSchema, SampleTuple, SlotKind};
use laqy_engine::{AggSpec, GroupKey};
use laqy_sampling::{merge_reservoirs, Lehmer64, Reservoir, StratifiedSampler};
use proptest::prelude::*;

/// Strategy: an arbitrary closed interval within a tame domain.
fn interval() -> impl Strategy<Value = Interval> {
    (-1000i64..1000, 0i64..500).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

/// Strategy: an interval set of up to 5 arbitrary intervals (normalized).
fn interval_set() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec(interval(), 0..5).prop_map(IntervalSet::from_intervals)
}

proptest! {
    #[test]
    fn normalization_is_canonical(set in interval_set()) {
        // Parts are sorted, disjoint, and non-adjacent.
        let parts = set.intervals();
        for w in parts.windows(2) {
            prop_assert!(w[0].hi + 1 < w[1].lo, "parts must be separated: {w:?}");
        }
        // Re-normalizing is a fixpoint.
        let again = IntervalSet::from_intervals(parts.to_vec());
        prop_assert_eq!(set.clone(), again);
    }

    #[test]
    fn measure_is_additive_over_difference(a in interval_set(), b in interval_set()) {
        // |A| = |A \ B| + |A ∩ B|
        let diff = a.difference(&b);
        let inter = a.intersect(&b);
        prop_assert_eq!(a.measure(), diff.measure() + inter.measure());
    }

    #[test]
    fn delta_laws_hold(query in interval_set(), stored in interval_set()) {
        // Δ = query \ stored never overlaps the stored coverage, and
        // Δ ∪ (query ∩ stored) reconstructs the query exactly — the two
        // properties that make merging unbiased (no double sampling, no
        // gaps).
        let delta = query.difference(&stored);
        prop_assert!(!delta.overlaps(&stored));
        prop_assert_eq!(delta.union(&query.intersect(&stored)), query);
    }

    #[test]
    fn subsumes_iff_difference_empty(a in interval_set(), b in interval_set()) {
        prop_assert_eq!(a.subsumes(&b), b.difference(&a).is_empty());
    }

    #[test]
    fn union_is_commutative_and_idempotent(a in interval_set(), b in interval_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn contains_agrees_with_membership_scan(set in interval_set(), v in -1200i64..1200) {
        let by_scan = set.intervals().iter().any(|iv| iv.contains(v));
        prop_assert_eq!(set.contains(v), by_scan);
    }

    #[test]
    fn intersection_is_lower_bound(a in interval_set(), b in interval_set()) {
        let i = a.intersect(&b);
        prop_assert!(a.subsumes(&i));
        prop_assert!(b.subsumes(&i));
        prop_assert!(i.measure() <= a.measure().min(b.measure()));
    }
}

proptest! {
    #[test]
    fn reservoir_len_and_weight_invariants(
        k in 1usize..50,
        n in 0usize..500,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Lehmer64::new(seed);
        let mut r = Reservoir::new(k);
        for i in 0..n {
            r.offer(i as i64, &mut rng);
        }
        prop_assert_eq!(r.weight(), n as u64);
        prop_assert_eq!(r.len(), k.min(n));
        // Retained items are distinct stream elements.
        let mut items = r.items().to_vec();
        items.sort_unstable();
        items.dedup();
        prop_assert_eq!(items.len(), k.min(n));
    }

    #[test]
    fn merge_weight_is_sum_and_len_bounded(
        k1 in 1usize..30,
        k2 in 1usize..30,
        n1 in 0usize..300,
        n2 in 0usize..300,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Lehmer64::new(seed);
        let mut a = Reservoir::new(k1);
        for i in 0..n1 {
            a.offer(i as i64, &mut rng);
        }
        let mut b = Reservoir::new(k2);
        for i in 0..n2 {
            b.offer(1_000_000 + i as i64, &mut rng);
        }
        let m = merge_reservoirs(Some(&a), Some(&b), &mut rng);
        prop_assert_eq!(m.weight(), (n1 + n2) as u64);
        prop_assert!(m.len() <= m.capacity());
        prop_assert!(m.len() as u64 <= m.weight());
        // Every merged item comes from one of the inputs, no duplicates.
        let mut items = m.items().to_vec();
        items.sort_unstable();
        let before = items.len();
        items.dedup();
        prop_assert_eq!(items.len(), before);
        for &x in &items {
            prop_assert!(a.items().contains(&x) || b.items().contains(&x));
        }
    }

    #[test]
    fn merge_of_populations_is_lossless(
        n1 in 0usize..20,
        n2 in 0usize..20,
        seed in 0u64..100_000,
    ) {
        // Both inputs below capacity: the merge must retain everything.
        let k = 64;
        let mut rng = Lehmer64::new(seed);
        let mut a = Reservoir::new(k);
        for i in 0..n1 {
            a.offer(i as i64, &mut rng);
        }
        let mut b = Reservoir::new(k);
        for i in 0..n2 {
            b.offer(100 + i as i64, &mut rng);
        }
        let m = merge_reservoirs(Some(&a), Some(&b), &mut rng);
        prop_assert_eq!(m.len(), n1 + n2);
    }

    #[test]
    fn stratified_sampler_conserves_weight(
        strata in 1i64..20,
        n in 0usize..500,
        k in 1usize..20,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Lehmer64::new(seed);
        let mut s: StratifiedSampler<i64, i64> = StratifiedSampler::new(k);
        for i in 0..n {
            s.offer(i as i64 % strata, i as i64, &mut rng);
        }
        prop_assert_eq!(s.total_weight(), n as u64);
        prop_assert!(s.num_strata() as i64 <= strata);
        for (_, items, weight) in s.iter() {
            prop_assert_eq!(items.len(), (weight as usize).min(k));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn estimator_is_exact_on_population_samples(
        groups in 1i64..6,
        per in 1i64..40,
        vals in prop::collection::vec(0i64..1000, 1..240),
    ) {
        // Build a "sample" that retains the whole population; SUM/COUNT/AVG
        // estimates must then equal the exact values with zero CI.
        let schema = SampleSchema::new(vec![("v".into(), SlotKind::Int)]);
        let mut rng = Lehmer64::new(1);
        let mut s: StratifiedSampler<GroupKey, SampleTuple> =
            StratifiedSampler::new((per as usize).max(vals.len()) + 1);
        let mut exact: std::collections::HashMap<i64, (f64, u64)> = Default::default();
        for (i, &v) in vals.iter().enumerate() {
            let g = i as i64 % groups;
            s.offer(GroupKey::new(&[g]), SampleTuple::from_slice(&[v]), &mut rng);
            let e = exact.entry(g).or_insert((0.0, 0));
            e.0 += v as f64;
            e.1 += 1;
        }
        let ests = laqy::estimate(
            &s,
            &schema,
            &[AggSpec::sum("v"), AggSpec::count(), AggSpec::avg("v")],
            &laqy::EstimateOptions::default(),
        ).unwrap();
        for g in &ests {
            let (sum, count) = exact[&g.key[0]];
            prop_assert!((g.values[0].value - sum).abs() < 1e-9);
            prop_assert_eq!(g.values[0].ci_half_width, 0.0);
            prop_assert!((g.values[1].value - count as f64).abs() < 1e-9);
            prop_assert!((g.values[2].value - sum / count as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn tightening_on_population_equals_filtered_exact(
        cut in 0i64..1000,
        vals in prop::collection::vec(0i64..1000, 1..200),
    ) {
        let schema = SampleSchema::new(vec![("v".into(), SlotKind::Int)]);
        let mut rng = Lehmer64::new(2);
        let mut s: StratifiedSampler<GroupKey, SampleTuple> =
            StratifiedSampler::new(vals.len() + 1);
        for &v in &vals {
            s.offer(GroupKey::new(&[0]), SampleTuple::from_slice(&[v]), &mut rng);
        }
        let tighten = Predicates::on("v", IntervalSet::of(Interval::new(0, cut)));
        let opts = laqy::EstimateOptions {
            tighten: Some(&tighten),
            ..Default::default()
        };
        let ests = laqy::estimate(&s, &schema, &[AggSpec::count()], &opts).unwrap();
        let expected = vals.iter().filter(|&&v| v <= cut).count() as f64;
        prop_assert!((ests[0].values[0].value - expected).abs() < 1e-9);
    }

    #[test]
    fn delta_against_decomposition_is_sound(
        q_lo in 0i64..500, q_w in 0i64..300,
        s_lo in 0i64..500, s_w in 0i64..300,
    ) {
        // For arbitrary 1-D query/sample ranges, the descriptor-level delta
        // must satisfy the same laws as the raw interval difference.
        let q = Predicates::on("x", IntervalSet::of(Interval::new(q_lo, q_lo + q_w)));
        let s = Predicates::on("x", IntervalSet::of(Interval::new(s_lo, s_lo + s_w)));
        let (delta, varying) = q.delta_against(&s).expect("1-D deltas always decompose");
        prop_assert_eq!(&varying, "x");
        let dset = delta.get("x").cloned().unwrap_or_else(IntervalSet::empty);
        let qset = q.get("x").unwrap();
        let sset = s.get("x").unwrap();
        prop_assert_eq!(&dset, &qset.difference(sset));
    }
}
