//! Stress tests for the descriptor-hash-sharded sample store.
//!
//! The PR-1 concurrent-service battery (see `concurrent_service.rs`)
//! exercised one shared store behind one lock. This suite re-runs those
//! invariants with the workload deliberately spread across *shards*:
//! several q1 families (same plan, different reservoir capacity `k`)
//! whose descriptor fingerprints route to different home shards, hammered
//! by 8 client threads at once. On top of the original invariants —
//! CLT-bounded estimates, no duplicate descriptors, oracle-replay
//! coverage equality, exactly-once Δ-scans — it checks the sharding
//! contract itself:
//!
//! - routing is deterministic and predicate-independent (all samples of
//!   one family co-locate on one shard, across store instances);
//! - the *global* byte budget holds under concurrent insertion into
//!   different shards (or every shard is down to its one-sample floor);
//! - families on distinct shards dedup their in-flight scans
//!   independently and never contend on each other's locks;
//! - two clients coverage-planning over fragmented families on distinct
//!   shards — with fragment claims spread across registry shards —
//!   neither deadlock (canonical lock order) nor double-claim a
//!   residual fragment.

use std::collections::{HashMap, HashSet};
use std::sync::Barrier;
use std::time::Duration;

use laqy::{
    save_store, ApproxResult, Interval, IntervalSet, LaqyService, LaqySession, ReuseClass,
    SampleStore, SessionConfig, ShardedStore, STORE_SHARDS,
};
use laqy_engine::{Catalog, QueryResult, Value};
use laqy_workload::{generate, q1, SsbConfig};

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 10;

fn catalog() -> Catalog {
    generate(&SsbConfig {
        scale_factor: 0.005, // 30k fact rows
        seed: 0xC0C0,
    })
}

fn config(budget: Option<usize>) -> SessionConfig {
    SessionConfig {
        threads: 1, // client threads are the parallelism under test
        seed: 0x5EED,
        store_budget_bytes: budget,
        ..Default::default()
    }
}

/// Deterministic, heavily overlapping range for client `t`, query `j`.
fn range_for(n: i64, t: usize, j: usize) -> Interval {
    let lo = ((t * 3 + j * 5) % 8) as i64 * n / 10;
    let hi = (lo + n / 4 + ((t + j) % 3) as i64 * n / 10).min(n - 1);
    Interval::new(lo, hi)
}

/// Home shard of the q1 family with reservoir capacity `k`, resolved by
/// materializing one sample in a scratch service and routing its stored
/// descriptor through a probe store with the full shard count.
fn family_shard(cat: &Catalog, n: i64, k: usize) -> usize {
    let probe = ShardedStore::new(STORE_SHARDS, None);
    let scratch = LaqyService::with_config(cat.clone(), config(None));
    scratch.run(&q1(Interval::new(0, n / 10), k)).unwrap();
    let store = scratch.store();
    let (_, d) = store.descriptors().next().expect("sample materialized");
    probe.shard_for(d)
}

/// `count` q1 reservoir capacities whose families land on pairwise
/// distinct home shards — so the workload provably crosses shards.
fn shard_distinct_ks(cat: &Catalog, n: i64, count: usize) -> Vec<usize> {
    let mut ks = Vec::new();
    let mut shards = HashSet::new();
    for k in (16..16 + 8 * STORE_SHARDS).step_by(8) {
        if shards.insert(family_shard(cat, n, k)) {
            ks.push(k);
            if ks.len() == count {
                return ks;
            }
        }
    }
    panic!("could not find {count} shard-distinct k values");
}

/// Every estimate must sit within a generous multiple of its 95% CI of
/// the exact value (6σ-ish; double-counted merges blow this).
fn assert_within_clt_bound(range: Interval, result: &ApproxResult, exact: &QueryResult) {
    for g in &result.groups {
        let est = &g.values[0];
        if est.support == 0 || !est.ci_half_width.is_finite() || est.ci_half_width <= 0.0 {
            continue;
        }
        let Some(truth) = exact.row_by_key(&[Value::Int(g.key[0])]) else {
            continue;
        };
        let err = (est.value - truth.values[0]).abs();
        assert!(
            err <= 6.0 * est.ci_half_width + 1e-6,
            "estimate for group {:?} on range {range:?} off by {err}, \
             CI half-width {} (reuse {:?})",
            g.key,
            est.ci_half_width,
            result.stats.reuse,
        );
    }
}

/// Union of stored `lo_intkey` coverage for one k-family.
fn family_coverage(store: &SampleStore, k: usize) -> IntervalSet {
    let mut union = IntervalSet::empty();
    for (_, d) in store.descriptors() {
        if d.k == k {
            union = union.union(d.predicates.get("lo_intkey").expect("q1 range column"));
        }
    }
    union
}

/// Hammer one service from `THREADS` clients, thread `t` querying the
/// family `ks[t % ks.len()]`; returns every (k, range, result).
fn hammer(service: &LaqyService, n: i64, ks: &[usize]) -> Vec<(usize, Interval, ApproxResult)> {
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let service = service.clone();
                let barrier = &barrier;
                let k = ks[t % ks.len()];
                scope.spawn(move || {
                    barrier.wait();
                    (0..QUERIES_PER_THREAD)
                        .map(|j| {
                            let range = range_for(n, t, j);
                            let result = service.run(&q1(range, k)).expect("query");
                            (k, range, result)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    })
}

#[test]
fn routing_is_deterministic_and_predicate_independent() {
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let k = 24;

    // Two samples of the same family with *different* predicates must
    // share a home shard (the fingerprint excludes predicates), on any
    // store instance with the same shard count. Materialize them in
    // separate services so coverage planning cannot consolidate them.
    let mut descriptors = Vec::new();
    for range in [Interval::new(0, n / 10), Interval::new(n / 2, 7 * n / 10)] {
        let scratch = LaqyService::with_config(cat.clone(), config(None));
        scratch.run(&q1(range, k)).unwrap();
        let store = scratch.store();
        let (_, d) = store.descriptors().next().expect("sample materialized");
        descriptors.push(d.clone());
    }
    assert_ne!(
        descriptors[0].predicates, descriptors[1].predicates,
        "the two samples must differ in predicate coverage"
    );

    let a = ShardedStore::new(STORE_SHARDS, None);
    let b = ShardedStore::new(STORE_SHARDS, None);
    let home = a.shard_for(&descriptors[0]);
    for d in &descriptors {
        assert_eq!(a.shard_for(d), home, "family split across shards: {d:?}");
        assert_eq!(a.shard_for(d), b.shard_for(d), "routing not deterministic");
    }

    // A single-shard store (the bench baseline) routes everything to 0.
    let single = ShardedStore::new(1, None);
    for d in &descriptors {
        assert_eq!(single.shard_for(d), 0);
    }
}

#[test]
fn sharded_stress_preserves_store_invariants_per_family() {
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let ks = shard_distinct_ks(&cat, n, 4);
    let service = LaqyService::with_config(cat.clone(), config(None));

    let outcomes = hammer(&service, n, &ks);
    assert_eq!(outcomes.len(), THREADS * QUERIES_PER_THREAD);
    assert_eq!(
        service.stats().queries,
        (THREADS * QUERIES_PER_THREAD) as u64
    );

    // Exact oracle per distinct range (truth is k-independent).
    let mut exact: HashMap<(i64, i64), QueryResult> = HashMap::new();
    for (k, range, _) in &outcomes {
        exact
            .entry((range.lo, range.hi))
            .or_insert_with(|| service.run_exact(&q1(*range, *k)).expect("exact oracle").0);
    }
    for (_, range, result) in &outcomes {
        assert!(result.stats.reuse.is_some());
        assert!(!result.groups.is_empty(), "no estimates for {range:?}");
        assert_within_clt_bound(*range, result, &exact[&(range.lo, range.hi)]);
    }

    // No duplicate descriptors anywhere in the sharded store: competing
    // absorbs within a shard must still serialize, and families must not
    // leak copies onto foreign shards.
    let store = service.store();
    let mut seen = HashSet::new();
    for (_, d) in store.descriptors() {
        let signature = format!("{}|{:?}", d.fingerprint(), d.predicates);
        assert!(seen.insert(signature), "duplicate stored descriptor: {d:?}");
    }

    // Per-family coverage matches a single-threaded oracle replay of the
    // same query multiset: sharding must not lose or cross-wire coverage.
    let mut replay = LaqySession::with_config(cat, config(None));
    let mut requested: HashMap<usize, IntervalSet> = HashMap::new();
    for t in 0..THREADS {
        let k = ks[t % ks.len()];
        for j in 0..QUERIES_PER_THREAD {
            let range = range_for(n, t, j);
            replay.run(&q1(range, k)).expect("replay query");
            let entry = requested.entry(k).or_insert_with(IntervalSet::empty);
            *entry = entry.union(&IntervalSet::of(range));
        }
    }
    let replay_store = replay.store();
    for &k in &ks {
        assert_eq!(
            family_coverage(&store, k),
            family_coverage(&replay_store, k),
            "family k={k} coverage diverges from oracle replay"
        );
        assert_eq!(
            family_coverage(&store, k),
            requested[&k],
            "family k={k} coverage is not the union of its requests"
        );
    }
}

#[test]
fn global_byte_budget_holds_across_shards() {
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let ks = shard_distinct_ks(&cat, n, 4);

    // Size the budget off one materialized sample so roughly three fit —
    // while four families insert into four different shards.
    let probe = LaqyService::with_config(cat.clone(), config(None));
    probe.run(&q1(range_for(n, 0, 0), ks[0])).unwrap();
    let one = probe.store().total_bytes();
    assert!(one > 0);
    let budget = one * 3;

    let service = LaqyService::with_config(cat, config(Some(budget)));
    let outcomes = hammer(&service, n, &ks);
    for (_, range, result) in &outcomes {
        assert!(!result.groups.is_empty(), "no estimates for {range:?}");
    }

    // The budget is global across shards. Eviction floors at one sample
    // *per shard*, so either the total fits or every occupied shard is
    // down to its floor.
    let store = service.store();
    if store.total_bytes() > budget {
        let router = ShardedStore::new(STORE_SHARDS, None);
        let mut per_shard: HashMap<usize, usize> = HashMap::new();
        for (_, d) in store.descriptors() {
            *per_shard.entry(router.shard_for(d)).or_default() += 1;
        }
        for (shard, count) in per_shard {
            assert!(
                count <= 1,
                "budget {budget} exceeded ({} bytes) with shard {shard} above \
                 its one-sample eviction floor ({count} samples)",
                store.total_bytes()
            );
        }
    }
    let mut seen = HashSet::new();
    for (_, d) in store.descriptors() {
        let signature = format!("{}|{:?}", d.fingerprint(), d.predicates);
        assert!(seen.insert(signature), "duplicate stored descriptor: {d:?}");
    }
}

#[test]
fn families_on_distinct_shards_dedup_independently() {
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let ks = shard_distinct_ks(&cat, n, 2);
    let service = LaqyService::with_config(cat, config(None));

    // Warm both families over the first half.
    for &k in &ks {
        service.run(&q1(Interval::new(0, n / 2), k)).unwrap();
    }
    assert_eq!(service.stats().online_runs, 2);

    // Four clients — two per family — miss on the same uncovered interval
    // at once. Each family's Δ must run exactly once, deduped on its own
    // shard's registry, with no cross-family interference.
    service.set_sampling_hold(Some(Duration::from_millis(300)));
    let before = service.stats();
    let barrier = Barrier::new(4);
    let reuse: Vec<(usize, ReuseClass)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let service = service.clone();
                let barrier = &barrier;
                let k = ks[i % 2];
                scope.spawn(move || {
                    barrier.wait();
                    let target = q1(Interval::new(0, 3 * n / 4), k);
                    (k, service.run(&target).expect("query").stats.reuse.unwrap())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    service.set_sampling_hold(None);

    let after = service.stats();
    assert_eq!(
        after.delta_scans - before.delta_scans,
        2,
        "each family's uncovered interval must be Δ-scanned exactly once"
    );
    assert_eq!(
        after.merges_deduped - before.merges_deduped,
        2,
        "each family's second client must piggyback on the in-flight scan"
    );
    assert_eq!(after.partial_merges - before.partial_merges, 2);
    assert_eq!(after.full_hits - before.full_hits, 2);
    for &k in &ks {
        let mut family: Vec<_> = reuse
            .iter()
            .filter(|(rk, _)| *rk == k)
            .map(|(_, r)| *r)
            .collect();
        family.sort_by_key(|r| r.label());
        assert_eq!(family, vec![ReuseClass::Full, ReuseClass::Partial]);
    }

    let store = service.store();
    assert_eq!(store.len(), 2, "one consolidated sample per family");
    for &k in &ks {
        assert_eq!(
            family_coverage(&store, k),
            IntervalSet::of(Interval::new(0, 3 * n / 4))
        );
    }
}

/// One snapshot holding two deliberately fragmented families: for each
/// `k`, two disjoint stored samples covering `[0, 2n/5]` and
/// `[n/2, 9n/10]`, built in scratch services and re-inserted raw so
/// absorption cannot consolidate them.
fn fragmented_families_snapshot(cat: &Catalog, n: i64, ks: &[usize]) -> Vec<u8> {
    let mut store = SampleStore::new();
    for &k in ks {
        for range in [
            Interval::new(0, 2 * n / 5),
            Interval::new(n / 2, 9 * n / 10),
        ] {
            let scratch = LaqyService::with_config(cat.clone(), config(None));
            scratch.run(&q1(range, k)).expect("fragment query");
            let guard = scratch.store();
            let (_, stored) = guard.iter().next().expect("fragment materialized");
            store.insert_raw(
                stored.descriptor.clone(),
                stored.schema.clone(),
                stored.sample.clone(),
                stored.watermark,
            );
        }
    }
    save_store(&store)
}

#[test]
fn cross_shard_coverage_planning_race_neither_deadlocks_nor_double_claims() {
    // The regression the canonical lock order exists for: two clients per
    // family, two families on distinct home shards, all four planning
    // coverage at once over fragmented stores. Fragment claims hash
    // across registry shards, absorbs take different store shards — a
    // cyclic acquisition order would deadlock here, and a broken
    // per-fragment registry would scan a residual fragment twice.
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let ks = shard_distinct_ks(&cat, n, 2);
    let service = LaqyService::with_config(cat.clone(), config(None));
    service
        .import_samples(&fragmented_families_snapshot(&cat, n, &ks))
        .expect("snapshot imports");
    assert_eq!(service.store().len(), 4, "two fragments per family");

    service.set_sampling_hold(Some(Duration::from_millis(300)));
    let before = service.stats();
    let barrier = Barrier::new(4);
    let reuse: Vec<(usize, ReuseClass)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let service = service.clone();
                let barrier = &barrier;
                let k = ks[i % 2];
                scope.spawn(move || {
                    barrier.wait();
                    let target = q1(Interval::new(0, n - 1), k);
                    (k, service.run(&target).expect("query").stats.reuse.unwrap())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    service.set_sampling_hold(None);

    let after = service.stats();
    // Exactly-once per family: each family has one residual fragment (its
    // gaps share the one varying column), scanned by the winning client.
    assert_eq!(
        after.delta_scans - before.delta_scans,
        2,
        "each family's residual must be Δ-scanned exactly once"
    );
    assert_eq!(after.fragments_scanned - before.fragments_scanned, 2);
    assert_eq!(
        after.fragments_deduped - before.fragments_deduped,
        2,
        "each family's waiter must dedup against the in-flight fragment"
    );
    assert_eq!(
        after.fragments_reused - before.fragments_reused,
        4,
        "each winning merge must reuse both of its family's fragments"
    );
    assert_eq!(after.partial_merges - before.partial_merges, 2);
    assert_eq!(after.full_hits - before.full_hits, 2);
    for &k in &ks {
        let mut family: Vec<_> = reuse
            .iter()
            .filter(|(rk, _)| *rk == k)
            .map(|(_, r)| *r)
            .collect();
        family.sort_by_key(|r| r.label());
        assert_eq!(family, vec![ReuseClass::Full, ReuseClass::Partial]);
    }

    // Each family consolidated to one full-coverage sample on its shard.
    let store = service.store();
    assert_eq!(store.len(), 2, "fragments consolidated away");
    for &k in &ks {
        assert_eq!(
            family_coverage(&store, k),
            IntervalSet::of(Interval::new(0, n - 1))
        );
    }
}
