//! Integration tests for the support policies (§5.2), oversampling, the
//! conservative fallback, and the reuse-mode ablation switch.

use laqy::{Interval, LaqySession, ReuseClass, ReuseMode, SessionConfig, SupportPolicy};
use laqy_engine::Catalog;
use laqy_workload::{generate, q1, SsbConfig};

fn catalog() -> Catalog {
    generate(&SsbConfig {
        scale_factor: 0.005,
        seed: 0x90C,
    })
}

fn n_rows(cat: &Catalog) -> i64 {
    cat.table("lineorder").unwrap().num_rows() as i64
}

#[test]
fn full_match_only_mode_never_reports_partial() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = LaqySession::with_config(
        cat.clone(),
        SessionConfig {
            threads: 2,
            seed: 1,
            reuse_mode: ReuseMode::FullMatchOnly,
            ..Default::default()
        },
    );
    s.run(&q1(Interval::new(0, n / 2), 64)).unwrap();
    // Overlapping-but-not-subsumed: lazy mode would go partial; this must
    // fall back to full online sampling.
    let r = s.run(&q1(Interval::new(0, 3 * n / 4), 64)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Online));
    // Fully subsumed queries still hit the cache.
    let r = s.run(&q1(Interval::new(0, n / 4), 64)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
}

#[test]
fn lazy_mode_beats_full_match_only_on_overlapping_sequences() {
    let cat = catalog();
    let n = n_rows(&cat);
    // A growing sequence where every step extends the previous range.
    let steps: Vec<Interval> = (1..=8).map(|i| Interval::new(0, n * i / 8 - 1)).collect();
    let run = |mode: ReuseMode| -> (u64, u64) {
        let mut s = LaqySession::with_config(
            cat.clone(),
            SessionConfig {
                threads: 2,
                seed: 2,
                reuse_mode: mode,
                ..Default::default()
            },
        );
        let mut scanned = 0;
        let mut sampled = 0;
        for &iv in &steps {
            let r = s.run(&q1(iv, 64)).unwrap();
            scanned += r.stats.scanned_rows;
            sampled += r.stats.sampled_input_rows;
        }
        (scanned, sampled)
    };
    let (_, lazy_sampled) = run(ReuseMode::Lazy);
    let (_, strict_sampled) = run(ReuseMode::FullMatchOnly);
    // Lazy processes each region once (≤ n rows reach the sampler);
    // all-or-none re-samples every extension from scratch.
    assert!(lazy_sampled as i64 <= n);
    assert!(
        strict_sampled > lazy_sampled * 2,
        "partial reuse should cut sampler input: lazy {lazy_sampled}, strict {strict_sampled}"
    );
}

#[test]
fn oversampling_alpha_scales_reservoirs() {
    let cat = catalog();
    let n = n_rows(&cat);
    let run_support = |alpha: f64| -> usize {
        let mut s = LaqySession::with_config(
            cat.clone(),
            SessionConfig {
                threads: 2,
                seed: 3,
                policy: SupportPolicy {
                    oversampling_alpha: alpha,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        // 50 strata over 30k rows: ~600 tuples per stratum, so k=8 vs
        // α·k=32 changes what is retained.
        let q = laqy_workload::strat(1, "lo_intkey", Interval::new(0, n - 1), 8);
        let r = s.run(&q).unwrap();
        // Total retained tuples across groups.
        r.groups.iter().map(|g| g.values[0].support).sum()
    };
    let base = run_support(1.0);
    let oversampled = run_support(4.0);
    assert!(
        oversampled > base * 2,
        "alpha=4 should retain more tuples: base {base}, oversampled {oversampled}"
    );
}

#[test]
fn conservative_policy_falls_back_to_online_on_thin_support() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = LaqySession::with_config(
        cat.clone(),
        SessionConfig {
            threads: 2,
            seed: 4,
            policy: SupportPolicy {
                min_rows_per_stratum: 1000, // unreachable with k=8
                conservative: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Seed coverage of the full domain.
    s.run(&q1(Interval::new(0, n - 1), 8)).unwrap();
    // A subsumed query would be Full reuse, but support can't meet the
    // policy, so the conservative path re-runs online.
    let r = s.run(&q1(Interval::new(0, n / 4), 8)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Online));

    // Without the conservative flag the same query is a full reuse with
    // the available (wider) bounds.
    let mut s = LaqySession::with_config(
        cat.clone(),
        SessionConfig {
            threads: 2,
            seed: 4,
            policy: SupportPolicy {
                min_rows_per_stratum: 1000,
                conservative: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    s.run(&q1(Interval::new(0, n - 1), 8)).unwrap();
    let r = s.run(&q1(Interval::new(0, n / 4), 8)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
    assert!(!r.support.fully_supported());
}

#[test]
fn support_report_flags_empty_strata_after_tightening() {
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = LaqySession::with_config(
        cat.clone(),
        SessionConfig {
            threads: 2,
            seed: 5,
            ..Default::default()
        },
    );
    // Cover the whole domain with small reservoirs.
    s.run(&q1(Interval::new(0, n - 1), 4)).unwrap();
    // Tighten to a sliver: most strata retain zero matching tuples.
    let r = s.run(&q1(Interval::new(0, n / 1000), 4)).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
    assert!(
        !r.support.empty.is_empty(),
        "sliver predicates should empty most strata"
    );
}

#[test]
fn per_stratum_fallback_validates_thin_strata_without_full_online() {
    // 50 strata (1-column QCS): the §5.2.3 per-stratum fallback applies,
    // so a subsumed query keeps its Full-reuse classification while the
    // under-supported strata are re-sampled online and validated.
    let cat = catalog();
    let n = n_rows(&cat);
    let mut s = LaqySession::with_config(
        cat.clone(),
        SessionConfig {
            threads: 2,
            seed: 6,
            policy: SupportPolicy {
                min_rows_per_stratum: 1000, // unreachable with k=8
                conservative: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let full = laqy_workload::strat(1, "lo_intkey", Interval::new(0, n - 1), 8);
    s.run(&full).unwrap();
    let narrow = laqy_workload::strat(1, "lo_intkey", Interval::new(0, n / 2), 8);
    let r = s.run(&narrow).unwrap();
    assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
    assert!(
        r.support.fully_supported(),
        "online probe should validate all strata"
    );
    // The probe scanned data (unlike a plain full reuse).
    assert!(r.stats.scanned_rows > 0);
    // Estimates remain sane: total count across strata ≈ n/2.
    let total: f64 = r.groups.iter().map(|g| g.values[1].value).sum();
    let expected = (n / 2 + 1) as f64;
    assert!(
        (total - expected).abs() / expected < 0.3,
        "total count {total} vs expected {expected}"
    );
}
