//! Statistical validation of the paper's central guarantee: lazy sampling
//! accelerates AQP **without loss of approximation guarantees**. These
//! tests measure estimator bias and CI coverage over repeated seeds, for
//! fresh online samples and for merged (partial-reuse) samples alike.

use laqy::{
    save_store, ApproxQuery, Interval, LaqyService, LaqySession, ReuseClass, SampleStore,
    SessionConfig,
};
use laqy_engine::{AggSpec, Catalog, ColRef, Column, Predicate, QueryPlan, Table, Value};
use laqy_workload::{generate, q1, SsbConfig};

fn catalog() -> Catalog {
    generate(&SsbConfig {
        scale_factor: 0.003, // 18k fact rows
        seed: 0x57A7,
    })
}

fn session(cat: &Catalog, seed: u64) -> LaqySession {
    LaqySession::with_config(
        cat.clone(),
        SessionConfig {
            threads: 1,
            seed,
            ..Default::default()
        },
    )
}

/// Aggregate SUM(lo_revenue) over all lo_orderdate groups, exactly.
fn exact_total(cat: &Catalog, query: &laqy::ApproxQuery) -> f64 {
    let (exact, _) = session(cat, 0).run_exact(query).unwrap();
    exact.rows.iter().map(|r| r.values[0]).sum()
}

#[test]
fn merged_sample_total_is_unbiased_across_seeds() {
    // Mean of the merged-sample estimate over many seeds must sit close to
    // the exact total — bias would indicate the merge distorts inclusion
    // probabilities.
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let target = q1(Interval::new(0, (0.7 * n as f64) as i64), 12);
    let truth = exact_total(&cat, &target);

    let trials = 30;
    let mut sum_est = 0.0;
    for t in 0..trials {
        let mut s = session(&cat, 5_000 + t);
        // Warm coverage of the first 40% so the target query merges.
        s.run(&q1(Interval::new(0, (0.4 * n as f64) as i64), 12))
            .unwrap();
        let r = s.run(&target).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Partial));
        sum_est += r.groups.iter().map(|g| g.values[0].value).sum::<f64>();
    }
    let mean = sum_est / trials as f64;
    let bias = (mean - truth).abs() / truth;
    assert!(
        bias < 0.02,
        "merged-sample mean estimate {mean} vs exact {truth}: bias {bias}"
    );
}

#[test]
fn per_group_ci_coverage_is_near_nominal_for_merged_samples() {
    // 95% CIs should cover the exact per-group value at a rate near 95%
    // (small-m CLT intervals run a bit below nominal; 85% is a sturdy
    // floor that still catches broken variance accounting).
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let target = q1(Interval::new(0, (0.7 * n as f64) as i64), 16);
    let (exact, _) = session(&cat, 0).run_exact(&target).unwrap();

    let trials = 15;
    let (mut covered, mut total) = (0usize, 0usize);
    for t in 0..trials {
        let mut s = session(&cat, 9_000 + t);
        s.run(&q1(Interval::new(0, (0.4 * n as f64) as i64), 16))
            .unwrap();
        let r = s.run(&target).unwrap();
        for g in &r.groups {
            let Some(truth) = exact.row_by_key(&[Value::Int(g.key[0])]) else {
                continue;
            };
            let est = &g.values[0];
            if est.support == 0 || est.ci_half_width.is_nan() {
                continue;
            }
            total += 1;
            if (est.value - truth.values[0]).abs() <= est.ci_half_width {
                covered += 1;
            }
        }
    }
    let coverage = covered as f64 / total as f64;
    assert!(
        coverage > 0.85,
        "CI coverage {coverage:.3} too low ({covered}/{total})"
    );
}

#[test]
fn concurrent_merge_matches_full_resample_error_distribution() {
    // Regression for the concurrent path: a partial-reuse sample assembled
    // through `LaqyService` under client concurrency (warm coverage +
    // Δ-merge raced by two clients) must be statistically equivalent to a
    // fresh full resample at the same reservoir budget — same group count,
    // same sum-estimate error regime. A lost or double-merged Δ would skew
    // the error distribution even when every individual estimate stays
    // plausible.
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let k = 12;
    let warm = q1(Interval::new(0, (0.4 * n as f64) as i64), k);
    let target = q1(Interval::new(0, (0.7 * n as f64) as i64), k);
    let (exact, _) = session(&cat, 0).run_exact(&target).unwrap();
    let truth: f64 = exact.rows.iter().map(|r| r.values[0]).sum();
    let exact_groups = exact.rows.len();

    let trials = 20;
    let (mut merged_errs, mut resample_errs) = (Vec::new(), Vec::new());
    for t in 0..trials {
        // (a) Merged sample, produced by two concurrent clients racing the
        // same partially-covered query against one shared store.
        let service = LaqyService::with_config(
            cat.clone(),
            SessionConfig {
                threads: 1,
                seed: 40_000 + t,
                ..Default::default()
            },
        );
        service.run(&warm).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let service = service.clone();
                let target = &target;
                scope.spawn(move || service.run(target).unwrap());
            }
        });
        assert!(
            service.stats().partial_merges >= 1,
            "the target query must extend coverage via a Δ-merge"
        );
        // Estimate deterministically off the merged store content.
        let r = service.run(&target).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Full));
        assert_eq!(r.groups.len(), exact_groups, "merged sample lost a group");
        let est: f64 = r.groups.iter().map(|g| g.values[0].value).sum();
        merged_errs.push(((est - truth) / truth).abs());

        // (b) Full resample of the same range at the same seed budget.
        let mut s = session(&cat, 40_000 + t);
        let r = s.run(&target).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Online));
        assert_eq!(r.groups.len(), exact_groups, "resample lost a group");
        let est: f64 = r.groups.iter().map(|g| g.values[0].value).sum();
        resample_errs.push(((est - truth) / truth).abs());
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (merged, resample) = (mean(&merged_errs), mean(&resample_errs));
    assert!(
        merged < 0.05,
        "concurrent-merge mean error too high: {merged}"
    );
    assert!(resample < 0.05, "resample mean error too high: {resample}");
    // Same error regime: neither path systematically worse. The floor term
    // keeps the ratio meaningful when both errors are tiny.
    let floor = 0.002;
    assert!(
        merged <= 2.5 * resample.max(floor) && resample <= 2.5 * merged.max(floor),
        "error distributions diverge: merged {merged} vs resample {resample}"
    );
}

/// Slice a column to a storage-row range (dictionary columns share the
/// dictionary; only the codes are sliced).
fn slice_column(col: &Column, range: std::ops::Range<usize>) -> Column {
    match col {
        Column::Int32(v) => Column::Int32(v[range].to_vec()),
        Column::Int64(v) => Column::Int64(v[range].to_vec()),
        Column::Float64(v) => Column::Float64(v[range].to_vec()),
        Column::Dict { codes, dict } => Column::Dict {
            codes: codes[range].to_vec(),
            dict: dict.clone(),
        },
    }
}

/// The full SSB catalog with `lineorder` truncated to its first
/// `base_rows` storage rows (dimensions untouched), plus the held-back
/// tail as `batches` equal append batches in storage order.
#[allow(clippy::type_complexity)]
fn truncated_catalog(
    cat: &Catalog,
    base_rows: usize,
    batches: usize,
) -> (Catalog, Vec<Vec<(String, Column)>>) {
    let fact = cat.table("lineorder").unwrap();
    let n = fact.num_rows();
    let mut truncated = Catalog::new();
    for name in cat.table_names() {
        if name == "lineorder" {
            continue;
        }
        truncated.register((**cat.table(name).unwrap()).clone());
    }
    let slice_rows = |lo: usize, hi: usize| -> Vec<(String, Column)> {
        fact.columns()
            .map(|(name, col)| (name.to_string(), slice_column(col, lo..hi)))
            .collect()
    };
    truncated.register(Table::new("lineorder", slice_rows(0, base_rows)).unwrap());
    let stride = (n - base_rows).div_ceil(batches);
    let tail: Vec<_> = (0..batches)
        .map(|b| slice_rows(base_rows + b * stride, n.min(base_rows + (b + 1) * stride)))
        .collect();
    (truncated, tail)
}

#[test]
fn incremental_absorb_matches_from_scratch_sample_at_final_watermark() {
    // The streaming-ingest guarantee: a stored sample that absorbs an
    // append stream batch-by-batch (continuing Algorithm R past its
    // original watermark) must be statistically equivalent to a fresh
    // online sample drawn against the final table — same groups, unbiased
    // total, same error regime. A wrong inclusion probability for late
    // rows would bias the absorbed estimator even when each individual
    // answer looks plausible.
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows();
    let k = 12;
    // lo_intkey is a shuffled permutation of [0, n), so the full-domain
    // range covers every row regardless of when it arrives.
    let target = q1(Interval::new(0, n as i64 - 1), k);
    let (exact, _) = session(&cat, 0).run_exact(&target).unwrap();
    let truth: f64 = exact.rows.iter().map(|r| r.values[0]).sum();
    let exact_groups = exact.rows.len();
    let base_rows = (0.6 * n as f64) as usize;

    let trials = 20;
    let (mut absorbed_ests, mut scratch_ests) = (Vec::new(), Vec::new());
    for t in 0..trials {
        // (a) Incremental: sample the truncated table, then ingest the
        // held-back tail in four batches, absorbing each into the stored
        // sample; the final answer is pure reuse of the absorbed sample.
        let (truncated, tail) = truncated_catalog(&cat, base_rows, 4);
        let service = LaqyService::with_config(
            truncated,
            SessionConfig {
                threads: 1,
                seed: 80_000 + t,
                ..Default::default()
            },
        );
        let warm = service.run(&target).unwrap();
        assert_eq!(warm.stats.reuse, Some(ReuseClass::Online));
        for batch in tail {
            service.ingest("lineorder", batch).unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.ingest_batches, 4);
        assert_eq!(stats.ingest_rows, (n - base_rows) as u64);
        assert_eq!(
            stats.absorbed_rows,
            (n - base_rows) as u64,
            "every appended row lies inside the stored sample's predicate"
        );
        let r = service.run(&target).unwrap();
        assert_eq!(
            r.stats.reuse,
            Some(ReuseClass::Full),
            "absorption must carry the sample to the final watermark"
        );
        assert_eq!(r.groups.len(), exact_groups, "absorbed sample lost a group");
        absorbed_ests.push(r.groups.iter().map(|g| g.values[0].value).sum::<f64>());

        // (b) From-scratch online sample of the final table at a matched
        // seed budget.
        let mut s = session(&cat, 80_000 + t);
        let r = s.run(&target).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Online));
        assert_eq!(r.groups.len(), exact_groups, "scratch sample lost a group");
        scratch_ests.push(r.groups.iter().map(|g| g.values[0].value).sum::<f64>());
    }

    // Both estimators unbiased: across-seed mean within 2% of exact.
    for (label, ests) in [("absorbed", &absorbed_ests), ("scratch", &scratch_ests)] {
        let mean = ests.iter().sum::<f64>() / ests.len() as f64;
        let bias = (mean - truth).abs() / truth;
        assert!(
            bias < 0.02,
            "{label} mean estimate {mean} vs exact {truth}: bias {bias}"
        );
    }
    // Same error regime: absorbing must not inflate variance relative to
    // sampling the final table in one pass.
    let spread = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        (v.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (v.len() - 1) as f64).sqrt()
    };
    let (absorbed_sd, scratch_sd) = (spread(&absorbed_ests), spread(&scratch_ests));
    let floor = 0.002 * truth.abs();
    assert!(
        absorbed_sd <= 2.5 * scratch_sd.max(floor) && scratch_sd <= 2.5 * absorbed_sd.max(floor),
        "error distributions diverge: absorbed {absorbed_sd} vs scratch {scratch_sd}"
    );
}

/// Serialize a store holding `m` disjoint Q1-family fragments, each an
/// equal slice of `[0, covered_hi]` separated by uncovered gaps. Built
/// through scratch services and re-inserted raw so absorption cannot
/// consolidate adjacent fragments.
fn fragmented_snapshot(cat: &Catalog, m: usize, covered_hi: i64, k: usize, seed: u64) -> Vec<u8> {
    let mut store = SampleStore::new();
    let stride = covered_hi / m as i64;
    let width = (stride as f64 * 0.8).round() as i64;
    for i in 0..m {
        let lo = i as i64 * stride;
        let scratch = LaqyService::with_config(
            cat.clone(),
            SessionConfig {
                threads: 1,
                seed: seed + i as u64,
                ..Default::default()
            },
        );
        scratch
            .run(&q1(Interval::new(lo, lo + width - 1), k))
            .unwrap();
        let guard = scratch.store();
        let (_, stored) = guard.iter().next().unwrap();
        store.insert_raw(
            stored.descriptor.clone(),
            stored.schema.clone(),
            stored.sample.clone(),
            stored.watermark,
        );
    }
    save_store(&store)
}

#[test]
fn coverage_planned_merge_matches_full_resample_of_the_union() {
    // The tentpole guarantee: a lazy sample assembled by the coverage
    // planner from ≥3 disjoint stored fragments plus residual Δ-scans
    // must be statistically equivalent to a full online resample of the
    // whole query region — same groups, per-group reservoir cardinality
    // within the budget, and an unbiased total whose mean across seeds
    // lands inside a CLT interval.
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let k = 12;
    let target = q1(Interval::new(0, (0.9 * n as f64) as i64), k);
    let (exact, _) = session(&cat, 0).run_exact(&target).unwrap();
    let truth: f64 = exact.rows.iter().map(|r| r.values[0]).sum();
    let exact_groups = exact.rows.len();

    let trials = 20;
    let (mut planned_ests, mut resample_ests) = (Vec::new(), Vec::new());
    for t in 0..trials {
        // (a) Coverage-planned: 3 disjoint fragments merged k-way, plus
        // Δ-scans of the gaps and tail.
        let snapshot = fragmented_snapshot(&cat, 3, (0.75 * n as f64) as i64, k, 60_000 + 10 * t);
        let service = LaqyService::with_config(
            cat.clone(),
            SessionConfig {
                threads: 1,
                seed: 70_000 + t,
                ..Default::default()
            },
        );
        service.import_samples(&snapshot).unwrap();
        let r = service.run(&target).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Partial));
        assert_eq!(
            r.stats.fragments_reused, 3,
            "plan must merge all three stored fragments"
        );
        // All gaps share the one varying column, so the residual region
        // collapses into a single multi-interval fragment — scanned once.
        assert!(
            r.stats.fragments_scanned >= 1,
            "gaps between fragments must be Δ-scanned"
        );
        assert!(
            r.stats.effective_selectivity < 0.45,
            "coverage plan should scan only the residual, got {}",
            r.stats.effective_selectivity
        );
        assert_eq!(r.groups.len(), exact_groups, "planned merge lost a group");
        for g in &r.groups {
            let support = g.values[0].support;
            assert!(
                support >= 1 && support <= k,
                "per-group cardinality out of reservoir bounds: {support}"
            );
        }
        planned_ests.push(r.groups.iter().map(|g| g.values[0].value).sum::<f64>());

        // (b) Full online resample of the same union at a matched seed.
        let mut s = session(&cat, 70_000 + t);
        let r = s.run(&target).unwrap();
        assert_eq!(r.stats.reuse, Some(ReuseClass::Online));
        assert_eq!(r.groups.len(), exact_groups, "resample lost a group");
        resample_ests.push(r.groups.iter().map(|g| g.values[0].value).sum::<f64>());
    }

    // Mean-within-CI: the across-seed mean of each estimator must sit
    // inside a 3σ CLT interval around the exact total (σ estimated from
    // the trials themselves).
    for (label, ests) in [("planned", &planned_ests), ("resample", &resample_ests)] {
        let mean = ests.iter().sum::<f64>() / ests.len() as f64;
        let var = ests.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (ests.len() - 1) as f64;
        let se = (var / ests.len() as f64).sqrt();
        assert!(
            (mean - truth).abs() <= 3.0 * se.max(0.002 * truth.abs()),
            "{label} mean {mean} vs exact {truth} outside 3σ ({se})"
        );
    }
    // Same error regime: the planner's merge must not inflate variance
    // relative to a fresh resample of the union.
    let spread = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        (v.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (v.len() - 1) as f64).sqrt()
    };
    let (planned_sd, resample_sd) = (spread(&planned_ests), spread(&resample_ests));
    assert!(
        planned_sd <= 3.0 * resample_sd.max(0.002 * truth.abs()),
        "planned-merge spread {planned_sd} far exceeds resample spread {resample_sd}"
    );
}

#[test]
fn estimate_variance_shrinks_with_k() {
    // CI half-width should shrink roughly as 1/sqrt(k): quadrupling k
    // should roughly halve the interval.
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let mean_ci = |k: usize| -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for t in 0..5 {
            let mut s = session(&cat, 20_000 + t);
            let r = s.run(&q1(Interval::new(0, n - 1), k)).unwrap();
            for g in &r.groups {
                let est = &g.values[0];
                if est.support > 0 && est.ci_half_width.is_finite() && est.ci_half_width > 0.0 {
                    total += est.ci_half_width;
                    count += 1;
                }
            }
        }
        total / count as f64
    };
    let ci_small = mean_ci(4);
    let ci_large = mean_ci(16);
    let ratio = ci_small / ci_large;
    assert!(
        ratio > 1.4 && ratio < 3.0,
        "4x k should roughly halve CI width: ratio {ratio}"
    );
}

#[test]
fn lane_coverage_strictly_shrinks_ci_width_on_clustered_data() {
    // Hybrid estimation: when pre-aggregate lanes cover blocks exactly
    // (clustered data, group constant per block, predicate TakeAll), the
    // covered mass enters the answer with zero variance, so every group's
    // CI must be *strictly* narrower than the oblivious online sample's —
    // while the estimates themselves stay unbiased.
    let rows = 40_000i64;
    let block = 1_000usize;
    let run = rows / 4; // group constant over 10k-row runs = 10 blocks
    let mut cat = Catalog::new();
    cat.register(
        Table::with_zone_map_rows(
            "clustered",
            vec![
                ("key".into(), Column::Int64((0..rows).collect())),
                (
                    "grp".into(),
                    Column::Int64((0..rows).map(|i| i / run).collect()),
                ),
                (
                    "val".into(),
                    Column::Int64((0..rows).map(|i| (i * 37) % 1000).collect()),
                ),
            ],
            block,
        )
        .unwrap(),
    );
    // End the range off a block edge so a boundary block still gets
    // scanned and sampled (the hybrid path, not a degenerate all-exact
    // answer).
    let query = ApproxQuery {
        plan: QueryPlan {
            fact: "clustered".into(),
            predicate: Predicate::True,
            joins: vec![],
            group_by: vec![ColRef::fact("grp")],
            aggs: vec![AggSpec::sum("val"), AggSpec::count()],
        },
        range_column: "key".into(),
        range: Interval::new(0, rows - 5),
        k: 48,
    };
    let config = |seed| SessionConfig {
        threads: 1,
        seed,
        ..SessionConfig::default()
    };
    let (exact, _) = LaqySession::with_config(cat.clone(), config(0))
        .run_exact(&query)
        .unwrap();

    for seed in [11u64, 12, 13] {
        let mut hybrid_s = LaqySession::with_config(cat.clone(), config(seed));
        let hybrid = hybrid_s.run(&query).unwrap();
        let mut oblivious_s = LaqySession::with_config(cat.clone(), config(seed));
        let oblivious = oblivious_s.run_online_oblivious(&query).unwrap();
        assert_eq!(hybrid.stats.reuse, Some(ReuseClass::Online));
        assert_eq!(oblivious.stats.reuse, Some(ReuseClass::Online));

        // Lanes fired: most rows were answered exactly and never scanned.
        assert!(
            hybrid.stats.lane_covered_rows > 0,
            "clustered table must produce lane coverage"
        );
        assert!(hybrid.stats.lane_spans >= 1);
        assert!(
            hybrid.stats.scanned_rows < oblivious.stats.scanned_rows,
            "lane coverage must reduce scanned rows: {} vs {}",
            hybrid.stats.scanned_rows,
            oblivious.stats.scanned_rows
        );

        assert_eq!(hybrid.groups.len(), exact.rows.len());
        for g in &hybrid.groups {
            let truth = exact.row_by_key(&[Value::Int(g.key[0])]).unwrap();
            let ob = oblivious
                .groups
                .iter()
                .find(|o| o.key == g.key)
                .expect("oblivious run lost a group");
            assert!(
                ob.values[0].ci_half_width > 0.0,
                "oblivious SUM CI degenerate for group {:?}",
                g.key
            );
            for (slot, (h, o)) in g.values.iter().zip(&ob.values).enumerate() {
                // COUNT (slot 1) is exact in both paths (stratum weights
                // are true row counts), so only SUM carries sampling
                // variance to shrink.
                if o.ci_half_width > 0.0 {
                    assert!(
                        h.ci_half_width < o.ci_half_width,
                        "lane coverage must strictly shrink CI for group {:?} slot {slot}: {} vs {}",
                        g.key,
                        h.ci_half_width,
                        o.ci_half_width
                    );
                } else {
                    assert_eq!(
                        h.ci_half_width, 0.0,
                        "hybrid widened a degenerate CI for group {:?} slot {slot}",
                        g.key
                    );
                }
                // Blended estimates stay honest: within the (shrunken) CI
                // of the exact answer, with slack for the boundary sample.
                let truth_v = truth.values[slot];
                assert!(
                    (h.value - truth_v).abs() <= h.ci_half_width.max(0.02 * truth_v.abs()),
                    "hybrid estimate drifted from exact: {} vs {truth_v}",
                    h.value
                );
            }
        }
        // Fully lane-covered groups (0..2) are answered exactly: zero CI.
        let g0 = hybrid.groups.iter().find(|g| g.key[0] == 0).unwrap();
        assert_eq!(g0.values[0].ci_half_width, 0.0);
        assert_eq!(g0.values[1].ci_half_width, 0.0);
        let truth0 = exact.row_by_key(&[Value::Int(0)]).unwrap();
        assert_eq!(g0.values[0].value, truth0.values[0]);
        assert_eq!(g0.values[1].value, truth0.values[1]);
    }
}

#[test]
fn fused_aggregation_equals_filter_then_aggregate_on_ssb() {
    // The vectorized fused filter+aggregate path (chunk bitmasks feeding
    // the group-by directly) must return exactly what the classic
    // pipeline — row-at-a-time filter to a selection vector, then
    // aggregate over it — returns on SSB data. All SSB measures are
    // integer-valued, and both paths fold f64 accumulators in ascending
    // row order, so equality is bitwise, not approximate.
    use laqy_engine::ops::aggregate::bind_table_cols;
    use laqy_engine::ops::{group_by, reference, BoundCol, ExactAggFactory, Inputs};
    use laqy_engine::{execute_exact, AggInput, AggKind};

    let cat = catalog();
    let fact = cat.table("lineorder").unwrap();
    let n = fact.num_rows();

    // SSB Q1.1-style predicate plus a clustered range so zone maps
    // produce a mix of Skip / TakeAll / Scan verdicts.
    let pred = Predicate::between("lo_discount", 1, 3)
        .and(Predicate::between("lo_quantity", 1, 24))
        .and(Predicate::between("lo_intkey", 0, (n as i64 * 3) / 4));

    let specs = vec![
        AggSpec::sum("lo_revenue"),
        AggSpec::count(),
        AggSpec::sum_product("lo_extendedprice", "lo_discount"),
        AggSpec {
            kind: AggKind::Min,
            input: AggInput::Col("lo_revenue".into()),
        },
        AggSpec {
            kind: AggKind::Max,
            input: AggInput::Col("lo_revenue".into()),
        },
        AggSpec::avg("lo_revenue"),
    ];

    // Reference: per-row evaluator, selection vector, selection-bound
    // aggregation.
    let compiled = pred.compile(fact).unwrap();
    let sel = reference::eval_rows(&compiled, 0..n);
    assert!(!sel.is_empty(), "predicate should select some rows");
    let agg_inputs: Vec<_> = specs.iter().map(|s| s.input.clone()).collect();

    for keyless in [false, true] {
        let plan = QueryPlan {
            fact: "lineorder".into(),
            predicate: pred.clone(),
            joins: vec![],
            group_by: if keyless {
                vec![]
            } else {
                vec![ColRef::fact("lo_orderdate")]
            },
            aggs: specs.clone(),
        };
        let fused = execute_exact(&cat, &plan, 1).unwrap();

        let key_cols: Vec<BoundCol> = if keyless {
            vec![]
        } else {
            vec![BoundCol::new(
                fact.column("lo_orderdate").unwrap(),
                Some(&sel),
            )]
        };
        let inputs = Inputs::bind(&agg_inputs, bind_table_cols(fact, Some(&sel))).unwrap();
        let expected = group_by(&key_cols, &inputs, sel.len(), &ExactAggFactory::new(&specs));

        assert_eq!(fused.rows.len(), expected.len());
        let key_col = fact.column("lo_orderdate").unwrap();
        for (key, agg) in &expected.map {
            let decoded: Vec<Value> = key.parts().iter().map(|&p| key_col.decode_key(p)).collect();
            let row = fused.row_by_key(&decoded).unwrap();
            assert_eq!(row.values, agg.finalize(), "group {decoded:?}");
        }

        // Parallel morsels through the fused path agree with serial.
        let fused8 = execute_exact(&cat, &plan, 8).unwrap();
        assert_eq!(fused.rows.len(), fused8.rows.len());
        for row in &fused.rows {
            let other = fused8.row_by_key(&row.key).unwrap();
            assert_eq!(row.values, other.values);
        }
    }
}

#[test]
fn repeated_full_reuse_returns_identical_answers() {
    // Determinism: full reuse is a pure function of the stored sample.
    let cat = catalog();
    let n = cat.table("lineorder").unwrap().num_rows() as i64;
    let mut s = session(&cat, 31);
    let query = q1(Interval::new(0, n / 2), 32);
    s.run(&query).unwrap();
    let a = s.run(&query).unwrap();
    let b = s.run(&query).unwrap();
    assert_eq!(a.stats.reuse, Some(ReuseClass::Full));
    assert_eq!(a.groups, b.groups);
}
