//! Differential tests: the engine's vectorized operators against a naive
//! row-at-a-time reference interpreter, over randomized tables.

use laqy_engine::{
    execute_exact, AggSpec, Catalog, ColRef, Column, JoinSpec, Predicate, QueryPlan, Value,
};
use laqy_sampling::Lehmer64;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A small randomized fact table plus one dimension.
fn build_catalog(seed: u64, rows: usize, dim_rows: usize) -> Catalog {
    let mut rng = Lehmer64::new(seed);
    let mut cat = Catalog::new();
    let fact = laqy_engine::Table::new(
        "f",
        vec![
            ("id".into(), Column::Int64((0..rows as i64).collect())),
            (
                "g".into(),
                Column::Int32((0..rows).map(|_| rng.next_below(5) as i32).collect()),
            ),
            (
                "v".into(),
                Column::Int64((0..rows).map(|_| rng.next_below(100) as i64).collect()),
            ),
            (
                "w".into(),
                Column::Float64((0..rows).map(|_| rng.next_f64() * 10.0).collect()),
            ),
            (
                "fk".into(),
                Column::Int64(
                    (0..rows)
                        .map(|_| rng.next_below(dim_rows as u64 + 2) as i64)
                        .collect(),
                ),
            ),
        ],
    )
    .unwrap();
    cat.register(fact);
    let dim = laqy_engine::Table::new(
        "d",
        vec![
            ("key".into(), Column::Int64((0..dim_rows as i64).collect())),
            (
                "cat".into(),
                Column::Int32((0..dim_rows).map(|i| (i % 3) as i32).collect()),
            ),
        ],
    )
    .unwrap();
    cat.register(dim);
    cat
}

/// Reference evaluation: single-table filter + group-by SUM/COUNT.
fn reference_single(cat: &Catalog, lo: i64, hi: i64) -> BTreeMap<i64, (f64, f64)> {
    let f = cat.table("f").unwrap();
    let (id, g, v) = (
        f.column("id").unwrap(),
        f.column("g").unwrap(),
        f.column("v").unwrap(),
    );
    let mut out: BTreeMap<i64, (f64, f64)> = BTreeMap::new();
    for r in 0..f.num_rows() {
        let idv = id.i64_at(r);
        if idv >= lo && idv <= hi {
            let e = out.entry(g.i64_at(r)).or_insert((0.0, 0.0));
            e.0 += v.i64_at(r) as f64;
            e.1 += 1.0;
        }
    }
    out
}

/// Reference evaluation: join f.fk = d.key, group by d.cat, SUM(f.v).
fn reference_join(cat: &Catalog, lo: i64, hi: i64) -> BTreeMap<i64, f64> {
    let f = cat.table("f").unwrap();
    let d = cat.table("d").unwrap();
    let (id, v, fk) = (
        f.column("id").unwrap(),
        f.column("v").unwrap(),
        f.column("fk").unwrap(),
    );
    let dkey = d.column("key").unwrap();
    let dcat = d.column("cat").unwrap();
    let mut out: BTreeMap<i64, f64> = BTreeMap::new();
    for r in 0..f.num_rows() {
        let idv = id.i64_at(r);
        if idv < lo || idv > hi {
            continue;
        }
        let k = fk.i64_at(r);
        for dr in 0..d.num_rows() {
            if dkey.i64_at(dr) == k {
                *out.entry(dcat.i64_at(dr)).or_insert(0.0) += v.i64_at(r) as f64;
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn engine_group_by_matches_reference(
        seed in 0u64..10_000,
        rows in 1usize..400,
        lo in 0i64..200,
        w in 0i64..300,
        threads in 1usize..4,
    ) {
        let cat = build_catalog(seed, rows, 7);
        let hi = lo + w;
        let plan = QueryPlan {
            fact: "f".into(),
            predicate: Predicate::between("id", lo, hi),
            joins: vec![],
            group_by: vec![ColRef::fact("g")],
            aggs: vec![AggSpec::sum("v"), AggSpec::count()],
        };
        let result = execute_exact(&cat, &plan, threads).unwrap();
        let reference = reference_single(&cat, lo, hi);
        prop_assert_eq!(result.rows.len(), reference.len());
        for row in &result.rows {
            let key = row.key[0].as_i64().unwrap();
            let (sum, count) = reference[&key];
            prop_assert!((row.values[0] - sum).abs() < 1e-9);
            prop_assert!((row.values[1] - count).abs() < 1e-9);
        }
    }

    #[test]
    fn engine_join_matches_reference(
        seed in 0u64..10_000,
        rows in 1usize..300,
        dim_rows in 1usize..20,
        lo in 0i64..100,
        w in 0i64..300,
    ) {
        let cat = build_catalog(seed, rows, dim_rows);
        let hi = lo + w;
        let plan = QueryPlan {
            fact: "f".into(),
            predicate: Predicate::between("id", lo, hi),
            joins: vec![JoinSpec {
                dim_table: "d".into(),
                dim_key: "key".into(),
                fact_key: "fk".into(),
                predicate: Predicate::True,
            }],
            group_by: vec![ColRef::dim("d", "cat")],
            aggs: vec![AggSpec::sum("v")],
        };
        let result = execute_exact(&cat, &plan, 2).unwrap();
        let reference = reference_join(&cat, lo, hi);
        prop_assert_eq!(result.rows.len(), reference.len());
        for row in &result.rows {
            let key = row.key[0].as_i64().unwrap();
            prop_assert!((row.values[0] - reference[&key]).abs() < 1e-9);
        }
    }

    #[test]
    fn sum_product_matches_reference(
        seed in 0u64..10_000,
        rows in 1usize..200,
    ) {
        let cat = build_catalog(seed, rows, 5);
        let plan = QueryPlan {
            fact: "f".into(),
            predicate: Predicate::True,
            joins: vec![],
            group_by: vec![ColRef::fact("g")],
            aggs: vec![AggSpec::sum_product("v", "w")],
        };
        let result = execute_exact(&cat, &plan, 1).unwrap();
        // Reference.
        let f = cat.table("f").unwrap();
        let (g, v, w) = (
            f.column("g").unwrap(),
            f.column("v").unwrap(),
            f.column("w").unwrap(),
        );
        let mut expected: BTreeMap<i64, f64> = BTreeMap::new();
        for r in 0..f.num_rows() {
            *expected.entry(g.i64_at(r)).or_insert(0.0) +=
                v.i64_at(r) as f64 * w.f64_at(r);
        }
        for row in &result.rows {
            let key = row.key[0].as_i64().unwrap();
            prop_assert!((row.values[0] - expected[&key]).abs() < 1e-6);
        }
    }
}

#[test]
fn min_max_avg_agree_with_reference() {
    let cat = build_catalog(77, 500, 5);
    let plan = QueryPlan {
        fact: "f".into(),
        predicate: Predicate::True,
        joins: vec![],
        group_by: vec![ColRef::fact("g")],
        aggs: vec![
            AggSpec {
                kind: laqy_engine::AggKind::Min,
                input: laqy_engine::AggInput::Col("v".into()),
            },
            AggSpec {
                kind: laqy_engine::AggKind::Max,
                input: laqy_engine::AggInput::Col("v".into()),
            },
            AggSpec::avg("v"),
        ],
    };
    let result = execute_exact(&cat, &plan, 3).unwrap();
    let f = cat.table("f").unwrap();
    let (g, v) = (f.column("g").unwrap(), f.column("v").unwrap());
    for row in &result.rows {
        let key = row.key[0].as_i64().unwrap();
        let vals: Vec<f64> = (0..f.num_rows())
            .filter(|&r| g.i64_at(r) == key)
            .map(|r| v.i64_at(r) as f64)
            .collect();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let avg = vals.iter().sum::<f64>() / vals.len() as f64;
        assert_eq!(row.values[0], min);
        assert_eq!(row.values[1], max);
        assert!((row.values[2] - avg).abs() < 1e-9);
    }
}

#[test]
fn dict_group_keys_decode_in_results() {
    let mut cat = Catalog::new();
    cat.register(
        laqy_engine::Table::new(
            "f",
            vec![
                ("id".into(), Column::Int64((0..10).collect())),
                (
                    "tag".into(),
                    laqy_engine::dict_column((0..10).map(|i| if i < 4 { "a" } else { "b" })),
                ),
            ],
        )
        .unwrap(),
    );
    let plan = QueryPlan {
        fact: "f".into(),
        predicate: Predicate::True,
        joins: vec![],
        group_by: vec![ColRef::fact("tag")],
        aggs: vec![AggSpec::count()],
    };
    let result = execute_exact(&cat, &plan, 1).unwrap();
    let a = result.row_by_key(&[Value::Str("a".into())]).unwrap();
    assert_eq!(a.values[0], 4.0);
    let b = result.row_by_key(&[Value::Str("b".into())]).unwrap();
    assert_eq!(b.values[0], 6.0);
}
